#!/usr/bin/env python3
"""Quickstart: the complete reseeding flow on the genuine c17 benchmark.

Walks Figure 1 of the paper stage by stage with printouts:
ATPG -> Initial Reseeding Builder -> Detection Matrix -> Matrix Reducer
-> exact solver -> trimmed final reseeding, then verifies the solution
by fault simulation.

Run: ``python examples/quickstart.py``
"""

from repro import (
    AtpgEngine,
    FaultSimulator,
    InitialReseedingBuilder,
    load_circuit,
    make_tpg,
    trim_solution,
)
from repro.setcover import CoverMatrix, solve_cover


def main() -> None:
    # --- the unit under test -------------------------------------------
    circuit = load_circuit("c17")
    print(f"UUT: {circuit}")

    # --- stage 1: ATPG (TestGen stand-in) -------------------------------
    engine = AtpgEngine(circuit, seed=2001)
    atpg = engine.run()
    print(f"ATPG: {atpg.test_length} patterns cover {len(atpg.target_faults)} faults")

    # --- stage 2: Initial Reseeding Builder ------------------------------
    # The TPG is an adder-based accumulator already present in the "SoC".
    tpg = make_tpg("adder", circuit.n_inputs)
    builder = InitialReseedingBuilder(circuit, tpg, seed=2001, simulator=engine.simulator)
    initial = builder.build_from_atpg(atpg, evolution_length=8)
    matrix = initial.detection_matrix
    print(
        f"Detection Matrix: {matrix.shape[0]} triplets x {matrix.shape[1]} faults "
        f"(density {matrix.density():.2f})"
    )

    # --- stage 3: Matrix Reducer + exact solver --------------------------
    cover = solve_cover(CoverMatrix.from_bool_array(matrix.matrix))
    print(
        f"Set covering: {cover.stats.n_essential} necessary triplets, "
        f"core {cover.stats.reduced_shape[0]}x{cover.stats.reduced_shape[1]}, "
        f"solver adds {cover.stats.n_solver_selected} "
        f"-> |N| = {cover.n_selected}"
    )

    # --- stage 4: trimming ------------------------------------------------
    selected = [initial.triplets[row] for row in cover.selected]
    trimmed = trim_solution(circuit, tpg, selected, atpg.target_faults,
                            simulator=engine.simulator)
    print(f"Final reseeding: {trimmed.n_triplets} triplets, "
          f"global test length {trimmed.test_length}")
    for index, triplet in enumerate(trimmed.solution.triplets):
        print(f"  triplet {index}: {triplet}")

    # --- verification ------------------------------------------------------
    simulator = FaultSimulator(circuit)
    patterns = trimmed.solution.patterns(tpg)
    coverage = simulator.fault_coverage(patterns, atpg.target_faults)
    print(f"Verified fault coverage: {coverage:.1%}")
    assert coverage == 1.0


if __name__ == "__main__":
    main()
