#!/usr/bin/env python3
"""Exploring the reseedings / test-length trade-off (the Figure-2 knob).

A low triplet count minimises seed-ROM area but needs long evolutions;
short evolutions keep the test short but need more stored triplets.
This example sweeps the evolution length T for a circuit/TPG pair,
prints the frontier, renders it as an ASCII curve, and picks the
knee-point solution under a ROM budget.

Run: ``python examples/tradeoff_exploration.py [--circuit s1238]
[--tpg adder] [--rom-budget 400]``
"""

import argparse

from repro import explore_tradeoff, load_circuit
from repro.flow import PipelineConfig
from repro.utils.tables import AsciiTable, render_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s1238")
    parser.add_argument("--tpg", default="adder")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument(
        "--rom-budget",
        type=int,
        default=400,
        help="seed-ROM budget in bits for the recommendation",
    )
    args = parser.parse_args()

    circuit = load_circuit(args.circuit, scale=args.scale)
    print(f"UUT: {circuit}, TPG: {args.tpg}\n")
    lengths = [2, 4, 8, 16, 32, 64, 128, 256]
    points = explore_tradeoff(
        circuit, args.tpg, lengths, config=PipelineConfig(max_random_patterns=1024)
    )

    bits_per_triplet = 2 * circuit.n_inputs + 9  # delta + sigma + length field
    table = AsciiTable(
        ["T", "#triplets", "test length", "~seed ROM (bits)"],
        title="Trade-off frontier",
    )
    for point in points:
        table.add_row(
            [
                point.evolution_length,
                point.n_triplets,
                point.test_length,
                point.n_triplets * bits_per_triplet,
            ]
        )
    print(table.render())
    print()
    print(
        render_series(
            [float(p.test_length) for p in points],
            [float(p.n_triplets) for p in points],
            x_label="test length",
            y_label="#triplets",
        )
    )

    # knee-point recommendation: the shortest test within the ROM budget
    affordable = [
        p for p in points if p.n_triplets * bits_per_triplet <= args.rom_budget
    ]
    if affordable:
        pick = min(affordable, key=lambda p: p.test_length)
        print(
            f"\nwithin a {args.rom_budget}-bit ROM budget, pick T={pick.evolution_length}: "
            f"{pick.n_triplets} triplets, test length {pick.test_length}"
        )
    else:
        print(f"\nno sweep point fits a {args.rom_budget}-bit ROM budget")


if __name__ == "__main__":
    main()
