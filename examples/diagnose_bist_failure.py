#!/usr/bin/env python3
"""Diagnose a failing BIST session, three ways.

The mirror image of ``full_bist_session.py``: that example shows a
signature mismatch flagging a defective die; this one takes the next
step and asks *which fault* caused it.

1. inject a known stuck-at fault and capture the fail log (what an ATE
   sees: per-pattern responses, final MISR signature);
2. **effect-cause** diagnosis: critical-path trace back from the
   failing outputs, rank candidates by exact simulation;
3. **signature-only** diagnosis: pretend only the final signature is
   known, bisect the pattern sequence with O(log P) prefix-signature
   re-runs, diagnose just the localised window;
4. **dictionary** diagnosis: precompute the pass/fail dictionary once,
   then diagnose with a pure lookup.

Run: ``python examples/diagnose_bist_failure.py [--circuit c880] [--patterns 256]``
"""

import argparse

from repro import load_circuit
from repro.diagnosis import (
    FaultDictionary,
    SignatureBisector,
    SimulatedTester,
    choose_faults,
    diagnose_effect_cause,
    fault_representatives,
    make_fail_log,
    observed_fail_flags,
)
from repro.faults.collapse import collapse_faults
from repro.sim.batch import BatchFaultSimulator
from repro.sim.misr import Misr
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="c880")
    parser.add_argument("--patterns", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2001)
    args = parser.parse_args()

    uut = load_circuit(args.circuit)
    simulator = BatchFaultSimulator(uut)
    faults = collapse_faults(uut)
    rng = RngStream(args.seed, "example", uut.name)
    patterns = [BitVector.random(uut.n_inputs, rng) for _ in range(args.patterns)]
    print(f"UUT: {uut}; {len(faults)} collapsed faults, {len(patterns)} patterns")

    # 1. the defective die: one injected fault, drawn from the detectable set
    detected = simulator.detected(patterns, faults)
    detectable = [f for f, flag in zip(faults, detected) if flag]
    culprit = choose_faults(detectable, 1, rng.child("pick"))[0]
    fail_log = make_fail_log(uut, patterns, culprit, simulator.compiled)
    representative = fault_representatives(uut)[culprit]
    print(f"injected (hidden from the engines): {culprit}")

    # 2. effect-cause on the full fail log
    result = diagnose_effect_cause(
        uut, patterns, fail_log.responses, faults=faults,
        simulator=simulator, top_k=5,
    )
    print(f"\neffect-cause: {result.summary()}")
    print(f"  culprit ranked #{result.rank_of(representative)}")

    # 3. signature-only: bisect, then diagnose the window
    misr = Misr(uut.n_outputs)
    tester = SimulatedTester(fail_log, misr)
    bisector = SignatureBisector(uut, patterns, misr, simulator=simulator)
    sig_result = bisector.diagnose(tester, faults=faults, top_k=5)
    lo, hi = sig_result.window
    print(
        f"\nsignature-only: window [{lo}, {hi}) after "
        f"{sig_result.oracle_queries} prefix probes; re-simulated "
        f"{sig_result.patterns_resimulated}/{len(patterns)} patterns "
        f"({100 * sig_result.patterns_resimulated / len(patterns):.1f}%)"
    )
    print(f"  culprit ranked #{sig_result.rank_of(representative)}")

    # 4. dictionary: pay once, diagnose for free forever
    dictionary = FaultDictionary.build(uut, patterns, faults, simulator)
    golden = simulator.compiled.simulate_patterns(patterns)
    flags = observed_fail_flags(golden, fail_log.responses)
    dict_result = dictionary.diagnose(flags, top_k=5)
    print(
        f"\ndictionary: {dictionary.n_patterns}x{dictionary.n_faults} bits "
        f"packed into {dictionary.packed_bytes} bytes; lookup re-simulates "
        f"{dict_result.patterns_resimulated} patterns"
    )
    print(f"  culprit ranked #{dict_result.rank_of(representative)}")


if __name__ == "__main__":
    main()
