#!/usr/bin/env python3
"""Telemetry end to end: kernel counters to a Prometheus scrape.

``repro.obs`` is one opt-in surface for the whole stack.  This example
walks it bottom-up:

1. a local :class:`Session` with ``Telemetry.on()`` — after one
   diagnosis, the *library* registry already carries the packed
   fault-sim kernel counters (``repro_sim_words_simulated_total``, the
   plan-cache economics) and the flow-stage histograms, rendered as the
   same Prometheus text a scraper would see;
2. a ``repro serve`` worker booted with metrics enabled
   (``ServeConfig(metrics=True)`` — the ``--metrics`` flag) — after a
   burst of concurrent diagnosis traffic, ``GET /metrics`` exposes the
   request/latency/batcher/cache series, strict-parsed back into
   numbers with :func:`repro.obs.parse_prometheus_text` and
   cross-checked against ``GET /stats``.

Run: ``python examples/metrics_scrape.py [--circuit c17]
[--patterns 32] [--requests 6] [--clients 3]``
"""

import argparse
from concurrent.futures import ThreadPoolExecutor

from repro.diagnosis import make_fail_log
from repro.faults.collapse import collapse_faults
from repro.flow.session import Session
from repro.obs import Telemetry, parse_prometheus_text, render_prometheus
from repro.serve import (
    BackgroundServer,
    DiagnoseRequest,
    ServeClient,
    ServeConfig,
)
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream
from repro.utils.tables import AsciiTable


def print_series(title: str, parsed: dict[str, float], prefixes: tuple) -> None:
    table = AsciiTable(["series", "value"], title=title)
    for key in sorted(parsed):
        if key.startswith(prefixes) and "_bucket" not in key:
            value = parsed[key]
            table.add_row([key, int(value) if value == int(value) else value])
    print(table.render())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="c17")
    parser.add_argument("--patterns", type=int, default=32)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--clients", type=int, default=3)
    args = parser.parse_args()

    # -- 1. library-level telemetry: the kernels count, the scrape sees
    telemetry = Telemetry.on()
    session = Session.from_name(args.circuit, telemetry=telemetry)
    circuit = session.circuit
    faults = collapse_faults(circuit)
    rng = RngStream(2001, "metrics-example", circuit.name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(args.patterns)
    ]
    detected = session.simulator.detected(patterns, faults)
    injected = next(f for f, flag in zip(faults, detected) if flag)
    log = make_fail_log(circuit, patterns, injected, session.simulator.compiled)
    result = session.diagnose(log, method="effect_cause", top_k=3)
    print(
        f"local diagnosis on {circuit.name}: injected {injected} "
        f"ranked #{result.rank_of(result.candidates[0].fault)}"
    )
    local = parse_prometheus_text(render_prometheus(telemetry.metrics))
    print_series(
        "library registry after one diagnosis",
        local,
        ("repro_sim_", "repro_flow_stage_runs"),
    )

    # -- 2. the same registry family, served over HTTP by a worker
    config = ServeConfig(port=0, metrics=True, max_batch=args.clients)
    patterns_text = tuple(p.to_string() for p in patterns)
    responses_text = tuple(r.to_string() for r in log.responses)
    with BackgroundServer(config) as server:
        print(f"\nworker listening on http://{server.host}:{server.port}")

        def one_request(_index: int):
            with ServeClient(server.host, server.port) as client:
                return client.diagnose(
                    DiagnoseRequest(
                        circuit=args.circuit,
                        patterns=patterns_text,
                        responses=responses_text,
                        method="dictionary",
                    )
                )

        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            served = list(pool.map(one_request, range(args.requests)))

        with ServeClient(server.host, server.port) as client:
            stats = client.stats()
            exposition = client.metrics()

    parsed = parse_prometheus_text(exposition)
    print_series(
        "GET /metrics after the traffic burst",
        parsed,
        ("repro_serve_requests", "repro_serve_responses", "repro_serve_batch"),
    )

    # /stats and /metrics are two views of the same counters.
    scraped = parsed['repro_serve_requests_total{path="/diagnose"}']
    counted = stats["requests"]["/diagnose"]
    print(
        f"{len(served)} diagnoses served; /stats counts "
        f"{counted} /diagnose requests, /metrics scraped {scraped:.0f}"
    )
    assert scraped == counted == len(served)
    p_count = parsed['repro_serve_request_seconds_count{path="/diagnose"}']
    assert p_count == len(served), "latency histogram missed requests"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
