#!/usr/bin/env python3
"""SoC scenario: one accumulator tests several on-chip modules.

The paper's motivation is a System-on-Chip whose functional units form a
connected network: a single arithmetic module (here an adder-based
accumulator) can feed test patterns to many downstream blocks.  For each
UUT we compute a minimal reseeding and price the ROM needed to store the
triplets — the area-overhead currency of the paper's trade-off — then
compare against the naive alternative of storing the full ATPG test set.

Run: ``python examples/soc_accumulator_bist.py [--scale 0.25]``
"""

import argparse

from repro import PipelineConfig, ReseedingPipeline, load_circuit
from repro.utils.tables import AsciiTable

#: The on-chip modules our shared accumulator must test.
SOC_MODULES = ("c499", "s420", "s953", "s1238")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--evolution-length", type=int, default=32)
    args = parser.parse_args()

    table = AsciiTable(
        [
            "module",
            "PI",
            "faults",
            "#triplets",
            "test length",
            "triplet ROM (bits)",
            "ATPG ROM (bits)",
            "ROM saved",
        ],
        title="SoC BIST plan: adder accumulator as shared TPG",
    )
    total_triplet_bits = 0
    total_atpg_bits = 0
    for module in SOC_MODULES:
        circuit = load_circuit(module, scale=args.scale)
        config = PipelineConfig(evolution_length=args.evolution_length)
        result = ReseedingPipeline(circuit, "adder", config).run()
        triplet_bits = result.trimmed.solution.storage_bits()
        # the naive alternative: store every ATPG pattern verbatim
        atpg_bits = result.atpg.test_length * circuit.n_inputs
        total_triplet_bits += triplet_bits
        total_atpg_bits += atpg_bits
        table.add_row(
            [
                module,
                circuit.n_inputs,
                len(result.atpg.target_faults),
                result.n_triplets,
                result.test_length,
                triplet_bits,
                atpg_bits,
                f"{100 * (1 - triplet_bits / atpg_bits):.0f}%",
            ]
        )
    print(table.render())
    print(
        f"\ntotal seed ROM: {total_triplet_bits} bits vs "
        f"{total_atpg_bits} bits for stored ATPG patterns "
        f"({100 * (1 - total_triplet_bits / total_atpg_bits):.0f}% saved)"
    )


if __name__ == "__main__":
    main()
