#!/usr/bin/env python3
"""Classic LFSR reseeding through the set-covering lens.

Reseeding was invented for LFSRs (Hellebrand et al., ITC'92 / ICCAD'95 —
references [3][4] of the paper): a bank of feedback polynomials plus a
set of seeds replaces stored test patterns.  The set-covering
formulation is generator-agnostic, so the exact same flow that optimises
accumulator reseeding optimises multi-polynomial LFSR reseeding: sigma
simply selects the polynomial.

This example compares a plain single-polynomial LFSR with a
multi-polynomial one on the same UUT, showing how the richer seed space
reduces the number of stored seeds.

Run: ``python examples/lfsr_reseeding.py [--circuit s953] [--scale 0.25]``
"""

import argparse

from repro import PipelineConfig, ReseedingPipeline, load_circuit
from repro.tpg.lfsr import Lfsr, MultiPolynomialLfsr, default_polynomials
from repro.utils.tables import AsciiTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--polys", type=int, default=4, help="polynomial bank size")
    args = parser.parse_args()

    circuit = load_circuit(args.circuit, scale=args.scale)
    width = circuit.n_inputs
    print(f"UUT: {circuit}")
    bank = default_polynomials(width, count=args.polys)
    print(f"polynomial bank ({len(bank)} entries): {bank}\n")

    config = PipelineConfig(evolution_length=32)
    table = AsciiTable(
        ["generator", "#seeds (triplets)", "test length", "necessary", "from solver"],
        title=f"LFSR reseeding on {circuit.name}",
    )
    shared_atpg = None
    for tpg in (Lfsr(width), MultiPolynomialLfsr(width, bank)):
        result = ReseedingPipeline(
            circuit, tpg, config, atpg_result=shared_atpg
        ).run()
        shared_atpg = result.atpg
        table.add_row(
            [
                tpg.name,
                result.n_triplets,
                result.test_length,
                result.n_necessary,
                result.n_from_solver,
            ]
        )
    print(table.render())
    print(
        "\nsigma selects the feedback polynomial for each seed: the "
        "multi-polynomial generator explores several sequence families "
        "from the same seed pool, never worse and often cheaper than a "
        "single fixed polynomial as circuits grow."
    )


if __name__ == "__main__":
    main()
