#!/usr/bin/env python3
"""Classic LFSR reseeding through the set-covering lens.

Reseeding was invented for LFSRs (Hellebrand et al., ITC'92 / ICCAD'95 —
references [3][4] of the paper): a bank of feedback polynomials plus a
set of seeds replaces stored test patterns.  The set-covering
formulation is generator-agnostic, so the exact same flow that optimises
accumulator reseeding optimises multi-polynomial LFSR reseeding: sigma
simply selects the polynomial.

This example compares a plain single-polynomial LFSR with a
multi-polynomial one on the same UUT, showing how the richer seed space
reduces the number of stored seeds — then demonstrates the word-parallel
batch API: the final solution's seed bank expands through one
``evolve_batch`` call (patterns emitted directly in packed form), timed
against the scalar per-pattern loop.

Run: ``python examples/lfsr_reseeding.py [--circuit s953] [--scale 0.25]``
"""

import argparse
import time

from repro import PipelineConfig, ReseedingPipeline, load_circuit
from repro.tpg.lfsr import Lfsr, MultiPolynomialLfsr, default_polynomials
from repro.utils.tables import AsciiTable


def batch_throughput(tpg, triplets, repeats: int = 5, min_seeds: int = 256):
    """Expand a triplet bank both ways; return (packed, stats dict).

    Small solutions are tiled up to ``min_seeds`` so the measurement
    reflects a production-sized reseeding campaign (hundreds of
    candidate seeds per Detection Matrix build) rather than numpy's
    fixed per-call overhead.
    """
    bank = list(triplets)
    while len(bank) < min_seeds:
        bank.extend(triplets)
    deltas = [t.delta for t in bank]
    sigmas = [t.sigma for t in bank]
    length = max(t.length for t in bank)
    scalar_time = min(
        _timed(tpg.evolve_batch_scalar, deltas, sigmas, length)[1]
        for _ in range(repeats)
    )
    packed, batch_time = min(
        (_timed(tpg.evolve_batch, deltas, sigmas, length) for _ in range(repeats)),
        key=lambda pair: pair[1],
    )
    return packed, {
        "n_seeds": len(deltas),
        "length": length,
        "scalar_s": scalar_time,
        "batch_s": batch_time,
        "speedup": scalar_time / batch_time,
        "patterns_per_sec_per_seed": len(packed) / batch_time / len(deltas),
    }


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--polys", type=int, default=4, help="polynomial bank size")
    args = parser.parse_args()

    circuit = load_circuit(args.circuit, scale=args.scale)
    width = circuit.n_inputs
    print(f"UUT: {circuit}")
    bank = default_polynomials(width, count=args.polys)
    print(f"polynomial bank ({len(bank)} entries): {bank}\n")

    config = PipelineConfig(evolution_length=32)
    table = AsciiTable(
        ["generator", "#seeds (triplets)", "test length", "necessary", "from solver"],
        title=f"LFSR reseeding on {circuit.name}",
    )
    shared_atpg = None
    solutions = []
    for tpg in (Lfsr(width), MultiPolynomialLfsr(width, bank)):
        result = ReseedingPipeline(
            circuit, tpg, config, atpg_result=shared_atpg
        ).run()
        shared_atpg = result.atpg
        solutions.append((tpg, result))
        table.add_row(
            [
                tpg.name,
                result.n_triplets,
                result.test_length,
                result.n_necessary,
                result.n_from_solver,
            ]
        )
    print(table.render())
    print(
        "\nsigma selects the feedback polynomial for each seed: the "
        "multi-polynomial generator explores several sequence families "
        "from the same seed pool, never worse and often cheaper than a "
        "single fixed polynomial as circuits grow."
    )

    # -- the word-parallel batch path ------------------------------------
    # On silicon every reseed expands in hardware; in software the same
    # expansion is one evolve_batch call over the whole seed bank,
    # emitting PackedPatterns the fault simulator consumes directly.
    print("\nbatched seed-bank expansion (evolve_batch vs scalar loop):")
    for tpg, result in solutions:
        # The initial candidate pool = one seed per ATPG pattern, the
        # exact bank every Detection Matrix build expands.
        candidates = result.initial.triplets
        packed, stats = batch_throughput(tpg, candidates)
        print(
            f"  {tpg.name:8s} {stats['n_seeds']:4d} seeds x T={stats['length']:<3d}"
            f" -> {len(packed)} packed patterns | scalar {stats['scalar_s']*1e3:7.2f} ms,"
            f" batched {stats['batch_s']*1e3:6.2f} ms"
            f" ({stats['speedup']:5.1f}x, "
            f"{stats['patterns_per_sec_per_seed']:,.0f} patterns/s/seed)"
        )


if __name__ == "__main__":
    main()
