#!/usr/bin/env python3
"""A complete BIST session, end to end, at the hardware level.

This example assembles every piece of a self-test architecture and runs
an actual test session:

1. the TPG is a *gate-level* ripple-carry adder accumulator
   (`repro.tpg.hardware`) — real mission logic, not a behavioural stub;
2. the reseeding controller's contents (the triplets) come from the
   set-covering pipeline;
3. responses are compacted in an LFSR-based MISR and compared against
   the fault-free golden signature;
4. a stuck-at fault is injected into the UUT and the session re-run,
   showing the signature mismatch that flags the defective die.

Run: ``python examples/full_bist_session.py [--circuit s953] [--scale 0.2]``
"""

import argparse

from repro import PipelineConfig, ReseedingPipeline, load_circuit
from repro.sim.event import ReferenceSimulator
from repro.sim.misr import Misr
from repro.tpg.hardware import NetlistTpg, adder_accumulator_netlist


def run_session(circuit, patterns, misr, fault=None):
    """Apply the pattern sequence and return the MISR signature."""
    simulator = ReferenceSimulator(circuit)
    responses = [simulator.outputs(p, fault) for p in patterns]
    return misr.signature(responses)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    uut = load_circuit(args.circuit, scale=args.scale)
    print(f"UUT: {uut}")

    # 1. the TPG is synthesised hardware (and itself a circuit we could test)
    tpg_netlist = adder_accumulator_netlist(uut.n_inputs)
    tpg = NetlistTpg(tpg_netlist, uut.n_inputs)
    print(f"TPG: {tpg.name} ({tpg_netlist.n_gates} gates of mission logic)")

    # 2. seeds from the set-covering pipeline
    result = ReseedingPipeline(uut, tpg, PipelineConfig(evolution_length=32)).run()
    print(f"controller ROM: {result.n_triplets} triplets "
          f"({result.trimmed.solution.storage_bits()} bits), "
          f"test length {result.test_length}")

    # 3. golden signature
    patterns = result.trimmed.solution.patterns(tpg)
    misr = Misr(uut.n_outputs)
    golden = run_session(uut, patterns, misr)
    print(f"golden signature: {golden.to_string()}")

    # 4. inject each target fault class representative until one shows
    #    the mismatch mechanics (the first is enough for the demo)
    fault = result.atpg.target_faults[0]
    faulty = run_session(uut, patterns, misr, fault=fault)
    print(f"with {fault}: signature {faulty.to_string()} "
          f"-> {'FAIL detected' if faulty != golden else 'ALIASED (rare)'}")

    # full sweep: how many target faults does the signature catch?
    caught = 0
    for target in result.atpg.target_faults:
        if run_session(uut, patterns, misr, fault=target) != golden:
            caught += 1
    total = len(result.atpg.target_faults)
    print(f"signature-level coverage: {caught}/{total} "
          f"({100 * caught / total:.1f}%) — losses are MISR aliasing, "
          f"expected ~2^-{misr.width} per fault")


if __name__ == "__main__":
    main()
