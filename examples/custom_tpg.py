#!/usr/bin/env python3
"""Plugging a custom functional unit in as the TPG.

The paper stresses that the set-covering formulation "is not restricted
to any specific modules M1 but it can work with any type of functions".
This example demonstrates exactly that: we define a multiply-accumulate
(MAC) unit — a module no reseeding tool was customised for — subclassing
:class:`TestPatternGenerator`, and run the unmodified pipeline with it,
side by side with the paper's three accumulators and an LFSR.

Custom generators inherit a correct ``evolve_batch`` for free (the
scalar fallback), and opting into the word-parallel fast path is one
``_evolve_batch_values`` override — the MAC's is three lines.  The
closing section measures both against the scalar loop and prints
per-seed throughput.

Run: ``python examples/custom_tpg.py [--circuit s953] [--scale 0.25]``
"""

import argparse
import time

import numpy as np

from repro import PipelineConfig, ReseedingPipeline, TestPatternGenerator, load_circuit
from repro.tpg import make_tpg
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream
from repro.utils.tables import AsciiTable


class MacUnit(TestPatternGenerator):
    """A multiply-accumulate unit: ``S <- (S * sigma + sigma) mod 2^n``.

    Exactly the kind of DSP block an SoC already contains.  Nothing in
    the covering flow knows about its update rule — only ``next_state``
    is required; ``_evolve_batch_values`` additionally vectorizes the
    walk over a whole seed bank (uint64 wraps mod 2^64, and masking to
    ``width`` bits reduces that mod 2^width).
    """

    @property
    def name(self) -> str:
        return "mac"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        return state * sigma + sigma

    def _evolve_batch_values(self, deltas, sigmas, length):
        out = np.empty((deltas.shape[0], length), dtype=np.uint64)
        mask = np.uint64((1 << self.width) - 1)
        state = deltas.copy()
        for clock in range(length):
            out[:, clock] = state
            if clock + 1 < length:
                state = (state * sigmas + sigmas) & mask
        return out

    def suggest_sigma(self, rng) -> BitVector:
        # odd multiplicand: keeps the affine map a bijection mod 2^n
        return BitVector.random(self.width, rng).set_bit(0, 1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s953")
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    circuit = load_circuit(args.circuit, scale=args.scale)
    print(f"UUT: {circuit}\n")
    config = PipelineConfig(evolution_length=32)

    table = AsciiTable(
        ["TPG", "#triplets", "test length", "necessary", "from solver"],
        title=f"Reseeding solutions for {circuit.name} across generators",
    )
    generators: list[TestPatternGenerator] = [
        make_tpg("adder", circuit.n_inputs),
        make_tpg("multiplier", circuit.n_inputs),
        make_tpg("subtracter", circuit.n_inputs),
        make_tpg("mp-lfsr", circuit.n_inputs),
        MacUnit(circuit.n_inputs),  # the custom unit, same API
    ]
    shared_atpg = None
    for tpg in generators:
        pipeline = ReseedingPipeline(
            circuit, tpg, config, atpg_result=shared_atpg
        )
        result = pipeline.run()
        shared_atpg = result.atpg  # ATPG runs once, all TPGs reuse it
        table.add_row(
            [
                tpg.name,
                result.n_triplets,
                result.test_length,
                result.n_necessary,
                result.n_from_solver,
            ]
        )
    print(table.render())
    print(
        "\nThe MAC row required zero solver/flow changes: any module with a "
        "next_state() is a valid TPG."
    )

    # -- batched evolution throughput ------------------------------------
    # Every generator above — including the custom MAC — exposes the same
    # evolve_batch API the reseeding flow drives: a whole candidate-seed
    # bank expands in one call, straight into packed form.
    n_seeds, length = 256, 64
    rng = RngStream(2001, "custom-tpg-bench", circuit.name)
    print(
        f"\nevolve_batch throughput ({n_seeds} seeds x T={length}, "
        "best of 3, vs the scalar per-pattern loop):"
    )
    for tpg in generators:
        deltas = [BitVector.random(tpg.width, rng) for _ in range(n_seeds)]
        sigmas = [tpg.suggest_sigma(rng) for _ in range(n_seeds)]
        scalar = min(
            _timed(tpg.evolve_batch_scalar, deltas, sigmas, length)
            for _ in range(3)
        )
        batched = min(
            _timed(tpg.evolve_batch, deltas, sigmas, length) for _ in range(3)
        )
        print(
            f"  {tpg.name:10s} scalar {scalar*1e3:7.2f} ms | batched"
            f" {batched*1e3:6.2f} ms | {scalar/batched:5.1f}x |"
            f" {n_seeds*length/batched/n_seeds:,.0f} patterns/s/seed"
        )


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


if __name__ == "__main__":
    main()
