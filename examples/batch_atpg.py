#!/usr/bin/env python3
"""Fault-parallel deterministic ATPG on the compiled circuit plan.

The deterministic top-off is the last serial hot path of the flow: the
random phase covers the easy faults in bulk, then every random-resistant
fault historically took a recursive PODEM search with an event-driven
three-valued resimulation per decision.  ``BatchPodem`` runs that search
fault-parallel — a batch of target faults become uint64 bit-plane
*lanes* (value + care plane per machine), one levelized sweep implies
every lane at once, and covered lanes retire mid-batch through fault
dropping.

This example drives both engines over the same collapsed fault list,
checks they agree fault for fault (statuses, cubes, backtrack counts —
the batch engine is bit-identical to the recursive oracle by
construction), then runs the full :class:`AtpgEngine` both ways and
prints the measured (re-simulated, never assumed) coverage.

Run: ``python examples/batch_atpg.py [--circuit s1238] [--scale 0.5]``
"""

import argparse
import time

from repro import load_circuit
from repro.atpg import AtpgEngine, BatchPodem, Podem
from repro.faults.collapse import collapse_faults
from repro.utils.tables import AsciiTable


def compare_generators(circuit, faults, backtrack_limit: int = 250):
    """Run both test generators over ``faults``; return timing stats."""
    recursive = Podem(circuit, backtrack_limit=backtrack_limit)
    start = time.perf_counter()
    oracle_results = {f: recursive.generate(f) for f in faults}
    recursive_s = time.perf_counter() - start

    batch = BatchPodem(circuit, backtrack_limit=backtrack_limit)
    start = time.perf_counter()
    batch_results = dict(batch.stream(faults))
    batch_s = time.perf_counter() - start

    mismatches = sum(
        1
        for fault in faults
        if (
            oracle_results[fault].status,
            oracle_results[fault].cube,
            oracle_results[fault].backtracks,
        )
        != (
            batch_results[fault].status,
            batch_results[fault].cube,
            batch_results[fault].backtracks,
        )
    )
    return {
        "n_faults": len(faults),
        "recursive_s": recursive_s,
        "batch_s": batch_s,
        "speedup": recursive_s / batch_s if batch_s else float("inf"),
        "sweeps": batch.sweeps,
        "mismatches": mismatches,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s1238")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    circuit = load_circuit(args.circuit, scale=args.scale)
    faults = collapse_faults(circuit)
    print(
        f"{circuit.name}: {circuit.n_inputs} inputs, "
        f"{len(faults)} collapsed faults"
    )

    stats = compare_generators(circuit, faults)
    table = AsciiTable(
        ["engine", "seconds", "faults/s"],
        title="Deterministic test generation, full collapsed universe",
    )
    table.add_row(
        [
            "recursive PODEM",
            f"{stats['recursive_s']:.2f}",
            f"{stats['n_faults'] / stats['recursive_s']:.0f}",
        ]
    )
    table.add_row(
        [
            "batch PODEM",
            f"{stats['batch_s']:.2f}",
            f"{stats['n_faults'] / stats['batch_s']:.0f}",
        ]
    )
    print(table.render())
    print(
        f"speedup {stats['speedup']:.2f}x over {stats['sweeps']} sweeps; "
        f"results diverge on {stats['mismatches']} faults (must be 0 — "
        f"the batch engine is bit-identical to the oracle)"
    )
    if stats["mismatches"]:
        raise SystemExit("engines diverged")

    for engine in ("batch", "recursive"):
        start = time.perf_counter()
        result = AtpgEngine(
            circuit, max_random_patterns=512, engine=engine
        ).run(faults)
        seconds = time.perf_counter() - start
        print(
            f"AtpgEngine(engine={engine!r}): {result.summary()} "
            f"[measured coverage {result.measured_coverage:.4f}, "
            f"{seconds:.2f}s]"
        )


if __name__ == "__main__":
    main()
