#!/usr/bin/env python3
"""Driving ``repro serve``: BIST diagnosis as batched HTTP traffic.

A tester farm applies one BIST program to thousands of dies; each
failing die yields a fail log that needs a diagnosis.  ``repro serve``
turns the flow layer into that service: an asyncio HTTP worker that
*micro-batches* concurrent ``POST /diagnose`` requests — logs applying
the same pattern sequence are fused into one vectorised
fault-dictionary lookup pass — and answers each request with a payload
byte-identical to a local ``Session.diagnose()``.

This example hosts a worker in-process (:class:`BackgroundServer` —
exactly the server ``python -m repro serve`` runs in the foreground),
then plays the tester farm:

1. synthesise fail logs for several distinct injected faults;
2. upload the shared pattern sequence once, keep the content-addressed
   ``patterns_ref`` the server hands back;
3. fire all the fail logs concurrently from worker threads, each
   shipping only its observed responses plus the ref;
4. verify every served diagnosis ranks its injected fault first and is
   identical to the local library answer, and print the latency
   distribution plus the server's ``/stats`` counters — where the
   batcher's occupancy shows the requests were fused, not serialised.

Run: ``python examples/serve_client.py [--circuit c499] [--patterns 64]
[--requests 24] [--clients 8]``
"""

import argparse
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

from repro.diagnosis import fault_representatives, make_fail_log
from repro.faults.collapse import collapse_faults
from repro.flow.serialize import diagnosis_result_to_dict, to_json
from repro.flow.session import Session
from repro.serve import (
    BackgroundServer,
    DiagnoseRequest,
    ServeClient,
    ServeConfig,
)
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream
from repro.utils.tables import AsciiTable


def synthesize_traffic(circuit_name, n_patterns, n_requests, seed=2001):
    """One shared pattern sequence + one fail log per injected fault."""
    session = Session.from_name(circuit_name)
    circuit = session.circuit
    faults = collapse_faults(circuit)
    rng = RngStream(seed, "serve-example", circuit.name)
    patterns = [
        BitVector.random(circuit.n_inputs, rng) for _ in range(n_patterns)
    ]
    detected = session.simulator.detected(patterns, faults)
    detectable = [f for f, flag in zip(faults, detected) if flag]
    injected = [detectable[i % len(detectable)] for i in range(n_requests)]
    logs = [
        make_fail_log(circuit, patterns, fault, session.simulator.compiled)
        for fault in injected
    ]
    return session, patterns, injected, logs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="c499")
    parser.add_argument("--patterns", type=int, default=64)
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--batch-window-ms", type=float, default=25.0)
    args = parser.parse_args()

    print(
        f"synthesising {args.requests} fail logs on {args.circuit} "
        f"({args.patterns} patterns)..."
    )
    session, patterns, injected, logs = synthesize_traffic(
        args.circuit, args.patterns, args.requests
    )
    patterns_text = tuple(p.to_string() for p in patterns)
    representatives = fault_representatives(session.circuit)

    config = ServeConfig(
        port=0,
        batch_window_ms=args.batch_window_ms,
        max_batch=max(args.clients, 2),
    )
    with BackgroundServer(config) as server:
        print(f"worker listening on http://{server.host}:{server.port}")
        with ServeClient(server.host, server.port) as warmup:
            # Upload the shared BIST program once; every later request
            # ships only its observed responses + this content ref.
            first = warmup.diagnose(
                DiagnoseRequest(
                    circuit=args.circuit,
                    patterns=patterns_text,
                    responses=tuple(r.to_string() for r in logs[0].responses),
                    method="dictionary",
                )
            )
            ref = first.patterns_ref
            print(f"pattern set registered: patterns_ref={ref[:16]}...")

        def one_request(log):
            with ServeClient(server.host, server.port) as client:
                start = time.perf_counter()
                response = client.diagnose(
                    DiagnoseRequest(
                        circuit=args.circuit,
                        patterns_ref=ref,
                        responses=tuple(r.to_string() for r in log.responses),
                        method="dictionary",
                    )
                )
                return response, (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            served = list(pool.map(one_request, logs))
        wall_s = time.perf_counter() - start

        with ServeClient(server.host, server.port) as client:
            stats = client.stats()

    # -- verify: served == local library answers, injected fault on top
    mismatches = 0
    top_ranked = 0
    for (response, _), log, fault in zip(served, logs, injected):
        local = session.diagnose(log, method="dictionary", top_k=10)
        if to_json(response.result) != to_json(diagnosis_result_to_dict(local)):
            mismatches += 1
        rank = local.rank_of(representatives.get(fault, fault))
        if rank == 1:
            top_ranked += 1

    latencies = sorted(ms for _, ms in served)
    table = AsciiTable(
        ["metric", "value"], title="serve traffic summary"
    )
    table.add_row(["requests", len(served)])
    table.add_row(["wall time", f"{wall_s:.3f} s"])
    table.add_row(["throughput", f"{len(served) / wall_s:.1f} logs/s"])
    table.add_row(["p50 latency", f"{statistics.median(latencies):.1f} ms"])
    table.add_row(
        ["p99 latency", f"{latencies[int(0.99 * (len(latencies) - 1))]:.1f} ms"]
    )
    table.add_row(
        ["max batch occupancy", stats["batcher"]["max_occupancy"]]
    )
    table.add_row(
        ["avg batch occupancy", stats["batcher"]["avg_occupancy"]]
    )
    table.add_row(["byte-identical to local", len(served) - mismatches])
    table.add_row(["injected fault ranked #1", top_ranked])
    print(table.render())

    fused = stats["batcher"]["max_occupancy"]
    print(
        f"{len(served)} concurrent requests served in "
        f"{stats['batcher']['batches']} compute passes "
        f"(largest fused batch: {fused})"
    )
    assert mismatches == 0, "served payloads diverged from Session.diagnose"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
