"""Unified telemetry: counters, histograms, and span tracing.

One opt-in surface for every layer of the reproduction — the packed
fault-sim and PODEM kernels, the flow session and artifact cache, the
``repro serve`` micro-batcher and request loop:

* :class:`~repro.obs.metrics.MetricsRegistry` — process-local,
  thread-safe named counters / gauges / fixed-bucket histograms,
  rendered as Prometheus text at ``GET /metrics``;
* :class:`~repro.obs.trace.Tracer` — a monotonic-clock span tree per
  run (``repro run --trace out.json`` → ``repro trace out.json``);
* :class:`Telemetry` — the pair of them, defaulting to shared no-op
  singletons so un-instrumented code paths cost nothing.

Enable per session (``Session(telemetry=Telemetry.on())``) or per
worker (``repro serve --metrics``); see ``docs/observability.md`` for
the metric-name glossary and trace-document schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
    Sample,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    metrics_snapshot,
    parse_prometheus_text,
    profile_table,
    render_prometheus,
    trace_document,
    validate_trace_document,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer, stage_hook

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Sample",
    "Span",
    "Telemetry",
    "Tracer",
    "metrics_snapshot",
    "parse_prometheus_text",
    "profile_table",
    "render_prometheus",
    "stage_hook",
    "trace_document",
    "validate_trace_document",
]


@dataclass
class Telemetry:
    """A metrics registry and a tracer, carried together through the
    stack.  ``Telemetry.off()`` (the default everywhere) is a shared
    no-op pair; ``Telemetry.on()`` enables metrics, and
    ``Telemetry.on(trace=True)`` additionally collects a span tree —
    long-running workers keep tracing off so span trees cannot grow
    without bound."""

    metrics: MetricsRegistry | NullMetricsRegistry = field(default=NULL_REGISTRY)
    tracer: Tracer | NullTracer = field(default=NULL_TRACER)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled

    @classmethod
    def off(cls) -> "Telemetry":
        """The shared disabled pair (also the module default)."""
        return NULL_TELEMETRY

    @classmethod
    def on(cls, trace: bool = False) -> "Telemetry":
        """A fresh live registry, plus a live tracer when ``trace``."""
        return cls(MetricsRegistry(), Tracer() if trace else NULL_TRACER)


#: Shared disabled telemetry — safe to pass anywhere, costs nothing.
NULL_TELEMETRY = Telemetry()
