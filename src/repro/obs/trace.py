"""Span tracing: a monotonic-clock tree of timed spans per run.

A :class:`Tracer` owns one run-scoped ``trace_id`` and a thread-local
span stack; ``with tracer.span("sim.detection_matrix", circuit="s1238")``
opens a child of whatever span is active on the current thread, times
it on ``time.perf_counter``, and files it under its parent on exit.
Completed roots accumulate on the tracer for export
(:func:`repro.obs.export.trace_document`) or rendering
(:func:`repro.obs.export.profile_table`).

Two deliberate asymmetries with the metrics side:

* :class:`NullTracer` spans still *measure*.  The serve worker needs a
  request's elapsed seconds for its response body whether or not
  telemetry is on, so ``span()`` always yields an object with a live
  :meth:`Span.elapsed6`; the null variant just never records a tree.
* The :func:`stage_hook` bridge adapts the existing ``StageEvent``
  progress stream onto spans (and stage metrics) without the flow layer
  importing anything new: ``start`` opens a span, ``done``/``skipped``
  closes it, and done-events that never had a start (session-level
  cache hits, pre-seeded ATPG timings) synthesize a completed span of
  the reported duration.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Callable

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "stage_hook",
]


class Span:
    """One timed node in the trace tree.

    ``start`` is seconds since the tracer's epoch (so a document's spans
    share one origin); ``seconds`` is the measured duration.  Both come
    from ``time.perf_counter`` — wall-clock never enters the tree.
    """

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_t0", "_tracer")

    def __init__(self, name: str, attrs: dict | None, tracer: "Tracer | None"):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._tracer = tracer
        self._t0 = time.perf_counter()
        self.start = (self._t0 - tracer.epoch) if tracer is not None else 0.0
        self.seconds = 0.0
        self.children: list[Span] = []

    def elapsed6(self) -> float:
        """Live elapsed seconds, rounded to 6 d.p. — the single duration
        capture the serve worker stamps into response bodies."""
        return round(time.perf_counter() - self._t0, 6)

    def set(self, **attrs) -> None:
        """Attach attributes to an open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._t0
        if self._tracer is not None:
            self._tracer._pop(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, seconds={self.seconds:.6f}, children={len(self.children)})"


class Tracer:
    """Collects spans into per-thread trees under one ``trace_id``."""

    enabled = True

    def __init__(self) -> None:
        self.trace_id = uuid.uuid4().hex[:16]
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str, **attrs) -> Span:
        """Open a child span of the current thread's active span."""
        return Span(name, attrs, self)

    def record(self, name: str, seconds: float, **attrs) -> Span:
        """File an already-measured interval as a completed span ending
        now — the bridge uses this for events that report a duration
        without ever emitting a ``start``."""
        span = Span(name, attrs, tracer=None)
        span.start = max(0.0, (time.perf_counter() - self.epoch) - seconds)
        span.seconds = seconds
        self._attach(span)
        return span

    # -- stack plumbing -------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not span:  # tolerate missed exits
            stack.pop()
        if stack:
            stack.pop()
        self._attach(span)

    def _attach(self, span: Span) -> None:
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)


class NullTracer:
    """Disabled tracer: spans still time themselves (callers rely on
    ``elapsed6`` for response bodies) but no tree is ever kept."""

    enabled = False
    trace_id = ""
    roots: list[Span] = []

    def span(self, name: str, **attrs) -> Span:
        return Span(name, None, tracer=None)

    def record(self, name: str, seconds: float, **attrs) -> None:
        return None

    def current(self) -> None:
        return None


#: Shared disabled tracer — the default ``tracer`` everywhere.
NULL_TRACER = NullTracer()

#: Buckets for per-stage duration histograms (seconds): flow stages span
#: sub-millisecond skips up to minutes-long evolution runs.
STAGE_SECONDS_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


def stage_hook(telemetry, inner: Callable | None = None) -> Callable:
    """Bridge a ``StageEvent`` progress stream onto spans and metrics.

    Returns a hook suitable for ``Session(progress=...)`` /
    ``StageContext.progress``.  For every event it

    * forwards to ``inner`` (the caller's original hook) last, so
      existing progress consumers keep working unchanged;
    * on ``status == "start"`` opens a span ``flow.<stage>``;
    * on ``done`` / ``skipped`` closes the matching open span, or —
      when no start was seen (session-level ``atpg``/``dictionary``
      events, ``cache-hit`` notifications) — records a completed span
      of ``event.seconds``;
    * observes ``repro_flow_stage_seconds{stage=}`` and increments
      ``repro_flow_stage_runs_total{stage=,status=}`` for every
      terminal event.

    Events are duck-typed (``stage`` / ``status`` / ``seconds`` /
    ``attrs``) so this module never imports the flow layer.
    """
    metrics = telemetry.metrics
    tracer = telemetry.tracer
    open_spans: dict[str, Span] = {}

    def hook(event) -> None:
        status = event.status
        attrs = getattr(event, "attrs", None) or {}
        if status == "start":
            if tracer.enabled:
                span = tracer.span(f"flow.{event.stage}")
                span.__enter__()
                open_spans[event.stage] = span
        else:
            span = open_spans.pop(event.stage, None)
            if span is not None:
                span.set(status=status, **attrs)
                span.__exit__(None, None, None)
            elif tracer.enabled:
                tracer.record(f"flow.{event.stage}", event.seconds,
                              status=status, **attrs)
            if metrics.enabled:
                metrics.histogram(
                    "repro_flow_stage_seconds",
                    buckets=STAGE_SECONDS_BUCKETS,
                    help="Flow stage wall time by stage name.",
                    stage=event.stage,
                ).observe(event.seconds)
                metrics.counter(
                    "repro_flow_stage_runs_total",
                    help="Flow stage completions by terminal status.",
                    stage=event.stage, status=status,
                ).inc()
        if inner is not None:
            inner(event)

    return hook
