"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The registry is the single mutable surface of the telemetry subsystem.
Design constraints, in order:

* **Zero cost when disabled.**  The default registry everywhere is
  :data:`NULL_REGISTRY`; its instruments are shared no-op singletons, so
  an un-opted-in code path pays one attribute lookup and a no-op call —
  or, for the packed kernels, nothing at all (they keep plain ``int``
  counters and export them through scrape-time *collectors*).
* **Lock-light when enabled.**  Each instrument owns one
  ``threading.Lock`` taken for a single add — CPython's ``+=`` on an
  attribute is not atomic, and the serve worker increments from both
  the asyncio loop and the compute executor thread.
* **No allocation on the hot path.**  ``Counter.inc`` / ``Gauge.set`` /
  ``Histogram.observe`` touch pre-built slots only; bucket search is a
  ``bisect`` over a pre-sorted tuple.

Prometheus semantics are preserved exactly: histogram buckets are
cumulative ``le`` (less-or-equal) upper bounds, a value landing exactly
on a boundary counts in that bucket, anything above the largest bound
lands in ``+Inf``.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullMetricsRegistry",
    "Sample",
]

#: Default upper bounds for latency histograms, in seconds.  Spans the
#: serve worker's observed range (sub-millisecond /healthz up to
#: multi-second cold /diagnose) so p50/p99 are derivable from buckets.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exported time-series value.

    ``kind`` is ``counter`` or ``gauge``; histograms export their
    structured state through :meth:`Histogram.snapshot` instead.
    Collectors yield ``Sample`` rows; the registry sums counter samples
    that share ``(name, labels)`` — that is how per-session kernel
    counters aggregate into one process-wide series.
    """

    name: str
    kind: str
    labels: LabelSet
    value: float
    help: str = ""


class Counter:
    """Monotonically increasing counter. Rendered with a ``_total`` name."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: LabelSet = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, open connections)."""

    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: LabelSet = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are strictly increasing upper bounds; an implicit
    ``+Inf`` bucket is always appended.  ``observe(v)`` counts ``v``
    in the first bucket whose bound is ``>= v`` (boundary values land
    *in* their bucket, matching ``le``'s less-or-equal contract).
    """

    __slots__ = ("name", "help", "labels", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        labels: LabelSet = (),
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase: {buckets}")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: int | float) -> None:
        idx = bisect_left(self.buckets, value)  # first bound >= value
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """Structured state: per-bucket counts (non-cumulative), sum, count."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        snap = self.snapshot()
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(snap["buckets"], snap["counts"]):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + snap["counts"][-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile from bucket bounds (upper-bound
        interpolation, the same estimate ``histogram_quantile`` gives a
        Prometheus server).  Returns 0.0 for an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        snap = self.snapshot()
        total = snap["count"]
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        lower = 0.0
        for bound, n in zip(snap["buckets"], snap["counts"]):
            if running + n >= rank and n > 0:
                within = (rank - running) / n
                return lower + (bound - lower) * within
            running += n
            lower = bound
        return snap["buckets"][-1]  # rank fell in +Inf: clamp to max bound


class _NullCounter:
    __slots__ = ()
    name = "null"
    help = ""
    labels: LabelSet = ()
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    help = ""
    labels: LabelSet = ()
    value = 0

    def set(self, value: int | float) -> None:
        pass

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    help = ""
    labels: LabelSet = ()
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    count = 0
    sum = 0.0

    def observe(self, value: int | float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"buckets": list(self.buckets), "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0, "count": 0}

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create store of named instruments plus scrape-time collectors.

    Instruments are keyed by ``(name, sorted labels)``; asking twice for
    the same key returns the same object, so call sites never cache
    instruments unless they are on a hot path.  ``register_collector``
    accepts a **bound method** returning ``Sample`` rows; the registry
    holds it via ``weakref.WeakMethod`` so a collector dies with its
    owner (a ``Session``'s simulator, say) instead of pinning it.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, str, LabelSet], object] = {}
        self._collectors: list[object] = []  # WeakMethod | callable

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        key = ("histogram", name, _labelset(labels))
        with self._lock:
            found = self._instruments.get(key)
            if found is None:
                found = Histogram(name, buckets=buckets, help=help, labels=key[2])
                self._instruments[key] = found
            return found  # type: ignore[return-value]

    def _get(self, kind: str, cls: type, name: str, help: str, labels: dict) -> object:
        key = (kind, name, _labelset(labels))
        with self._lock:
            found = self._instruments.get(key)
            if found is None:
                found = cls(name, help=help, labels=key[2])
                self._instruments[key] = found
            return found

    def register_collector(self, collector) -> None:
        """Register a callable returning an iterable of :class:`Sample`.

        Bound methods are held weakly (the idiom for long-lived kernel
        objects); plain functions/closures are held strongly.
        """
        ref: object
        if hasattr(collector, "__self__"):
            ref = weakref.WeakMethod(collector)
        else:
            ref = collector
        with self._lock:
            self._collectors.append(ref)

    def collect(self) -> tuple[list[Sample], list[Histogram]]:
        """All live scalar samples (instruments + collectors, counters
        summed across duplicate ``(name, labels)``) and all histograms."""
        scalars: dict[tuple[str, str, LabelSet], Sample] = {}
        histograms: list[Histogram] = []
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        for inst in instruments:
            if isinstance(inst, Histogram):
                histograms.append(inst)
            elif isinstance(inst, Counter):
                self._merge(scalars, Sample(inst.name, "counter", inst.labels,
                                            inst.value, inst.help))
            elif isinstance(inst, Gauge):
                self._merge(scalars, Sample(inst.name, "gauge", inst.labels,
                                            inst.value, inst.help))
        dead: list[object] = []
        for ref in collectors:
            fn = ref() if isinstance(ref, weakref.WeakMethod) else ref
            if fn is None:
                dead.append(ref)
                continue
            for sample in fn():
                self._merge(scalars, sample)
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors if r not in dead]
        ordered = sorted(scalars.values(), key=lambda s: (s.name, s.labels))
        histograms.sort(key=lambda h: (h.name, h.labels))
        return ordered, histograms

    @staticmethod
    def _merge(scalars: dict, sample: Sample) -> None:
        key = (sample.kind, sample.name, sample.labels)
        found = scalars.get(key)
        if found is None:
            scalars[key] = sample
        elif sample.kind == "counter":
            scalars[key] = Sample(sample.name, sample.kind, sample.labels,
                                  found.value + sample.value,
                                  found.help or sample.help)
        else:  # duplicate gauge: last registration wins
            scalars[key] = sample

    def scalar_value(self, name: str, **labels: str) -> float:
        """Summed value of a counter/gauge series (collectors included)."""
        want = _labelset(labels)
        total = 0.0
        seen = False
        for sample in self.collect()[0]:
            if sample.name == name and sample.labels == want:
                total += sample.value
                seen = True
        if not seen:
            raise KeyError(f"no series {name} with labels {dict(want)}")
        return total


class NullMetricsRegistry:
    """Disabled registry: every instrument is a shared no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
                  help: str = "", **labels: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def register_collector(self, collector) -> None:
        pass

    def collect(self) -> tuple[list[Sample], list[Histogram]]:
        return [], []


#: Shared disabled registry — the default ``metrics`` everywhere.
NULL_REGISTRY = NullMetricsRegistry()
