"""Exporters: Prometheus text format, trace documents, profile tables.

Three consumers, one module:

* the serve worker renders its registry with :func:`render_prometheus`
  for ``GET /metrics`` (text format 0.0.4 — ``# HELP`` / ``# TYPE``
  comments, ``_total`` counters, cumulative ``_bucket{le=...}``
  histogram series);
* tests and ``tools/serve_smoke.py`` re-read that output with
  :func:`parse_prometheus_text`, which *fails loudly* on any line a
  Prometheus scraper would reject;
* the CLI's ``--trace`` flag writes :func:`trace_document` (a
  schema-versioned JSON kind, validated with the same
  ``check_schema`` the artifact cache uses) and ``repro trace``
  renders it back as a self-profile table.
"""

from __future__ import annotations

import re
from typing import Any

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "metrics_snapshot",
    "parse_prometheus_text",
    "profile_table",
    "render_prometheus",
    "trace_document",
    "validate_trace_document",
]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry) -> str:
    """The registry as Prometheus text exposition format 0.0.4.

    Counters are suffixed ``_total``; histograms emit cumulative
    ``_bucket{le=...}`` series (terminated by ``le="+Inf"``) plus
    ``_sum`` and ``_count``.  Series of one metric are grouped under a
    single ``# HELP`` / ``# TYPE`` header, as the format requires.
    """
    scalars, histograms = registry.collect()
    lines: list[str] = []
    seen_headers: set[str] = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for sample in scalars:
        if sample.kind == "counter":
            name = sample.name if sample.name.endswith("_total") else f"{sample.name}_total"
            header(name, "counter", sample.help)
            lines.append(f"{name}{_label_str(sample.labels)} {_fmt(sample.value)}")
        else:
            header(sample.name, "gauge", sample.help)
            lines.append(f"{sample.name}{_label_str(sample.labels)} {_fmt(sample.value)}")
    for hist in histograms:
        header(hist.name, "histogram", hist.help)
        for bound, cumulative in hist.cumulative():
            le = ("le", _fmt(float(bound)))
            lines.append(
                f"{hist.name}_bucket{_label_str(hist.labels, (le,))} {cumulative}"
            )
        lines.append(f"{hist.name}_sum{_label_str(hist.labels)} {_fmt(hist.sum)}")
        lines.append(f"{hist.name}_count{_label_str(hist.labels)} {hist.count}")
    return "\n".join(lines) + "\n"


_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{"name{labels}": value}``.

    Label strings are preserved exactly as rendered, so a key built with
    the same label order round-trips.  Raises :class:`ValueError` on any
    line a scraper would reject (bad series syntax, malformed label
    pairs, non-numeric values) — ``tools/serve_smoke.py`` leans on this
    to fail CI when ``GET /metrics`` regresses.
    """
    series: dict[str, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 2)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            continue
        match = _SERIES_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparseable series {raw!r}")
        labels = match.group("labels")
        label_str = ""
        if labels is not None:
            consumed = _LABEL_RE.findall(labels)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != labels.rstrip(","):
                raise ValueError(f"line {lineno}: malformed labels {labels!r}")
            label_str = "{" + rebuilt + "}"
        try:
            value = _parse_value(match.group("value"))
        except ValueError as error:
            raise ValueError(
                f"line {lineno}: bad value {match.group('value')!r}"
            ) from error
        series[match.group("name") + label_str] = value
    return series


def metrics_snapshot(registry) -> dict[str, Any]:
    """The registry as a schema-versioned JSON document (kind
    ``metrics_snapshot``) — the ``serve_stats``-style machine-readable
    sibling of the Prometheus rendering."""
    from repro.flow.serialize import SCHEMA_VERSION

    scalars, histograms = registry.collect()
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    for sample in scalars:
        target = counters if sample.kind == "counter" else gauges
        target[sample.name + _label_str(sample.labels)] = sample.value
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "metrics_snapshot",
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            hist.name + _label_str(hist.labels): hist.snapshot()
            for hist in histograms
        },
    }


# --------------------------------------------------------------------------
# Trace documents
# --------------------------------------------------------------------------


def trace_document(tracer) -> dict[str, Any]:
    """A tracer's finished span trees as a schema-versioned JSON
    document (kind ``trace``), validated by the same ``check_schema``
    contract as every other artefact."""
    from repro.flow.serialize import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "trace",
        "trace_id": tracer.trace_id,
        "spans": [span.to_dict() for span in tracer.roots],
    }


def validate_trace_document(data: dict[str, Any]) -> dict[str, Any]:
    """Schema-check a loaded trace document and return it."""
    from repro.flow.serialize import check_schema

    check_schema(data, "trace")
    if not isinstance(data.get("spans"), list):
        raise ValueError("trace document has no spans list")
    return data


def _walk(span: dict, depth: int, rows: list, total: float) -> None:
    seconds = float(span.get("seconds", 0.0))
    share = (seconds / total) if total > 0 else 0.0
    child_sum = sum(float(c.get("seconds", 0.0)) for c in span.get("children", ()))
    self_seconds = max(0.0, seconds - child_sum)
    attrs = span.get("attrs") or {}
    detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    rows.append((
        "  " * depth + span["name"],
        f"{seconds:.4f}",
        f"{self_seconds:.4f}",
        f"{100 * share:.1f}%",
        detail[:48],
    ))
    for child in span.get("children", ()):
        _walk(child, depth + 1, rows, total)


def profile_table(document: dict[str, Any]) -> str:
    """Render a trace document as an indented self-profile table
    (total seconds, self seconds, share of root wall time)."""
    from repro.utils.tables import AsciiTable

    spans = document.get("spans", [])
    total = sum(float(s.get("seconds", 0.0)) for s in spans)
    table = AsciiTable(
        ["span", "total_s", "self_s", "share", "attrs"],
        title=f"trace {document.get('trace_id', '?')}",
    )
    rows: list[tuple[str, str, str, str, str]] = []
    for span in spans:
        _walk(span, 0, rows, total)
    for row in rows:
        table.add_row(list(row))
    return table.render()
