"""Batched parallel-pattern fault simulation (PPSFP over fault batches).

The legacy engine (:class:`repro.sim.fault.SerialFaultSimulator`) walks
one fault cone at a time, paying one Python-level gate evaluation per
cone node *per fault*.  This engine simulates a whole **batch** of
faults at once:

* faulty node values are stacked along a fault axis — every node touched
  by the batch owns a ``(batch, n_words)`` ``uint64`` array, so one
  numpy call propagates 64 patterns for *all* faults in the batch;
* the batch shares one **cone-union schedule**: the union of the faults'
  output cones is levelized and grouped by (gate type, arity) once per
  distinct fault batch (:class:`_BatchPlan`), then reused for every
  pattern set simulated against that batch (e.g. every Detection Matrix
  row);
* fault injection is done by *forcing* rows: a stem fault freezes its
  net's row at the stuck value, a branch fault freezes the reading
  gate's row at the gate function with the faulty pin stuck.  Forced
  rows are re-asserted after their level evaluates, so a site that lies
  inside another fault's cone is still simulated correctly for the other
  rows of the batch.

**Fault dropping**: the any-pattern queries (:meth:`detected`,
:meth:`first_detection_index`, :meth:`fault_coverage`) scan the pattern
set in word-aligned windows and remove faults from the active set as
soon as a window detects them, so easy faults never pay for the full
pattern set.

:meth:`detection_matrix_rows` streams Detection Matrix rows (one row
per pattern set) over a fixed fault batching, and
:func:`parallel_detection_rows` fans rows out over a process pool for
an opt-in ``workers=N`` construction path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuit.gates import GateType, eval_gate_words, reduce_gate_words
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.logic import CompiledCircuit, tail_mask
from repro.utils.bitvec import BitVector, pack_patterns

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default number of faults simulated per batch.
DEFAULT_BATCH_SIZE = 32

#: Fault-dropping window, in 64-pattern words (8 words = 512 patterns).
DROP_WINDOW_WORDS = 8

#: Cached cone-union schedules per simulator (LRU).  Callers that batch
#: a stable fault list (Detection Matrix rows) hit the same few plans
#: forever; fault dropping generates one-shot survivor tuples, which
#: must not accumulate for the simulator's lifetime.
PLAN_CACHE_SIZE = 256


class _BatchPlan:
    """The compiled cone-union schedule for one tuple of faults.

    Built once per distinct fault batch and cached by the simulator; the
    expensive structural work (cone unions, level grouping, buffer
    layout) is paid here so :meth:`detect_words` is pure numpy.
    """

    __slots__ = (
        "n_faults",
        "n_buf",
        "boundary_pos",
        "boundary_ids",
        "level_groups",
        "forcings",
        "out_pos",
        "out_ids",
    )

    def __init__(
        self,
        compiled: CompiledCircuit,
        faults: Sequence[Fault],
        cone_of,
    ) -> None:
        self.n_faults = len(faults)
        # Per-fault injection spec: (site node id, stuck value, branch gate
        # spec or None).  Branch forced values depend on the fault-free
        # values, so only the structure is precomputed.
        specs: list[tuple[int, int, tuple[GateType, tuple[int, ...], int] | None]] = []
        union: set[int] = set()
        for fault in faults:
            site = fault.site
            if site.is_branch:
                gate_id = compiled.index[site.gate]
                branch = (
                    compiled.gate_types[gate_id],
                    compiled.gate_fanins[gate_id],
                    int(site.pin),
                )
                node = gate_id
            else:
                branch = None
                node = compiled.index[site.net]
            specs.append((node, fault.value, branch))
            union.update(cone_of(node))
        site_nodes = {node for node, _, _ in specs}
        # Buffer membership: every evaluated node, every site, and every
        # fanin an evaluated gate reads (so gathers hit one buffer).
        buf_set = set(union) | site_nodes
        for node_id in union:
            buf_set.update(compiled.gate_fanins[node_id])
        buf_ids = sorted(buf_set)
        pos = {node_id: i for i, node_id in enumerate(buf_ids)}
        self.n_buf = len(buf_ids)
        boundary = [node_id for node_id in buf_ids if node_id not in union]
        self.boundary_pos = np.array([pos[n] for n in boundary], dtype=np.int64)
        self.boundary_ids = np.array(boundary, dtype=np.int64)
        # Forcings: (buffer row, fault row, stuck, branch spec, level,
        # evaluated) — `evaluated` marks sites inside the union, whose
        # rows must be re-forced after their level evaluates.
        levels = compiled.node_levels
        self.forcings = [
            (
                pos[node],
                row,
                stuck,
                branch,
                int(levels[node]),
                node in union,
            )
            for row, (node, stuck, branch) in enumerate(specs)
        ]
        # Cone-union schedule: union nodes grouped by (level, type, arity),
        # with fanin ids rewritten to buffer positions.
        grouped: dict[
            tuple[int, GateType, int], tuple[list[int], list[list[int]]]
        ] = {}
        for node_id in union:
            gtype = compiled.gate_types[node_id]
            fanins = compiled.gate_fanins[node_id]
            key = (int(levels[node_id]), gtype, len(fanins))
            outs, fins = grouped.setdefault(key, ([], []))
            outs.append(pos[node_id])
            fins.append([pos[f] for f in fanins])
        by_level: dict[int, list[tuple[GateType, np.ndarray, np.ndarray]]] = {}
        for level, gtype, arity in sorted(grouped, key=lambda k: k[0]):
            outs, fins = grouped[(level, gtype, arity)]
            by_level.setdefault(level, []).append(
                (
                    gtype,
                    np.array(outs, dtype=np.int64),
                    np.array(fins, dtype=np.int64),
                )
            )
        self.level_groups = sorted(by_level.items())
        # Observation points: only POs inside the union (or forced as a
        # site) can diverge from the fault-free values.
        observable = union | site_nodes
        out_ids = [int(o) for o in compiled.output_ids if int(o) in observable]
        self.out_pos = np.array([pos[o] for o in out_ids], dtype=np.int64)
        self.out_ids = np.array(out_ids, dtype=np.int64)

    def _forced_words(self, good: np.ndarray) -> list[tuple[int, int, np.ndarray, int, bool]]:
        """Materialise forced rows for one good-value array:
        (buffer row, fault row, words, level, evaluated)."""
        n_words = good.shape[1]
        forced: list[tuple[int, int, np.ndarray, int, bool]] = []
        for buf_row, fault_row, stuck, branch, level, evaluated in self.forcings:
            stuck_words = (
                np.full(n_words, _ALL_ONES, dtype=np.uint64)
                if stuck
                else np.zeros(n_words, dtype=np.uint64)
            )
            if branch is None:
                words = stuck_words
            else:
                gtype, fanins, pin = branch
                words = eval_gate_words(
                    gtype,
                    [
                        stuck_words if j == pin else good[fanin_id]
                        for j, fanin_id in enumerate(fanins)
                    ],
                )
            forced.append((buf_row, fault_row, words, level, evaluated))
        return forced

    def detect_words(self, good: np.ndarray) -> np.ndarray:
        """Per-fault detection words against ``good`` values.

        ``good`` has shape ``(n_nodes, n_words)``; the result has shape
        ``(n_faults, n_words)`` with a bit set where some primary output
        differs from the fault-free value (tail bits unmasked).
        """
        n_words = good.shape[1]
        if not self.out_pos.size:
            return np.zeros((self.n_faults, n_words), dtype=np.uint64)
        buf = np.empty((self.n_buf, self.n_faults, n_words), dtype=np.uint64)
        if self.boundary_pos.size:
            buf[self.boundary_pos] = good[self.boundary_ids][:, None, :]
        forced = self._forced_words(good)
        for buf_row, fault_row, words, _level, _evaluated in forced:
            buf[buf_row, fault_row] = words
        for level, groups in self.level_groups:
            for gtype, out_pos, fanin_pos in groups:
                # Gather shape: (group size, arity, batch, n_words).
                buf[out_pos] = reduce_gate_words(gtype, buf[fanin_pos], axis=1)
            for buf_row, fault_row, words, force_level, evaluated in forced:
                if evaluated and force_level == level:
                    buf[buf_row, fault_row] = words
        diff = buf[self.out_pos] ^ good[self.out_ids][:, None, :]
        return np.bitwise_or.reduce(diff, axis=0)


class BatchFaultSimulator:
    """Batched stuck-at fault simulator bound to one circuit.

    The compiled circuit, per-node cones and per-batch schedules are all
    cached, so repeated calls (one per Detection Matrix row, one per GA
    fitness evaluation, ...) only pay for numpy work.
    """

    def __init__(
        self,
        circuit: Circuit,
        batch_size: int = DEFAULT_BATCH_SIZE,
        drop_window_words: int = DROP_WINDOW_WORDS,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if drop_window_words < 1:
            raise ValueError(
                f"drop_window_words must be >= 1, got {drop_window_words}"
            )
        self.compiled = CompiledCircuit(circuit)
        self.circuit = circuit
        self.batch_size = batch_size
        self.drop_window_words = drop_window_words
        self._cone_cache: dict[int, list[int]] = {}
        self._plan_cache: OrderedDict[tuple[Fault, ...], _BatchPlan] = OrderedDict()
        self._good_buf: np.ndarray | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def detection_matrix(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> np.ndarray:
        """Boolean matrix ``(n_patterns, n_faults)``: entry ``[p, f]`` is
        True iff pattern ``p`` detects fault ``f``."""
        result = np.zeros((len(patterns), len(faults)), dtype=bool)
        if not patterns or not faults:
            return result
        good = self._good_values(patterns)
        column = 0
        for batch in self._batches(faults):
            detect = self._plan(batch).detect_words(good)
            bits = np.unpackbits(
                np.ascontiguousarray(detect).view(np.uint8).reshape(len(batch), -1),
                axis=1,
                bitorder="little",
            )
            result[:, column : column + len(batch)] = (
                bits[:, : len(patterns)].astype(bool).T
            )
            column += len(batch)
        return result

    def detected(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> list[bool]:
        """Per-fault flag: does *any* pattern detect the fault?

        Scans patterns window by window with fault dropping: a fault
        detected in an early window leaves the active set and never
        simulates the rest of the pattern set.
        """
        flags = [False] * len(faults)
        for fault_index, _ in self._scan_detections(patterns, faults):
            flags[fault_index] = True
        return flags

    def first_detection_index(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> list[int | None]:
        """For each fault, the index of the first detecting pattern
        (``None`` if undetected).  Used for test-set trimming."""
        indices: list[int | None] = [None] * len(faults)
        for fault_index, position in self._scan_detections(patterns, faults):
            indices[fault_index] = position
        return indices

    def fault_coverage(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> float:
        """Fraction of ``faults`` detected by ``patterns`` (0..1)."""
        if not faults:
            return 1.0
        flags = self.detected(patterns, faults)
        return sum(flags) / len(faults)

    def detection_matrix_rows(
        self,
        pattern_sets: Iterable[Sequence[BitVector]],
        faults: Sequence[Fault],
    ) -> Iterator[np.ndarray]:
        """Stream Detection Matrix rows: one boolean ``(n_faults,)`` row
        per pattern set, ``row[f]`` True iff some pattern detects fault
        ``f``.

        The fault batching is fixed up front, so every row reuses the
        same cached cone-union schedules; each row's fault-free values
        are simulated exactly once.
        """
        faults = list(faults)
        batches = list(self._batches(faults))
        plans = [self._plan(batch) for batch in batches]
        for patterns in pattern_sets:
            row = np.zeros(len(faults), dtype=bool)
            if patterns and faults:
                good = self._good_values(patterns)
                mask = tail_mask(len(patterns))
                column = 0
                for batch, plan in zip(batches, plans):
                    detect = plan.detect_words(good)
                    row[column : column + len(batch)] = np.any(
                        detect & mask, axis=1
                    )
                    column += len(batch)
            yield row

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _good_values(self, patterns: Sequence[BitVector]) -> np.ndarray:
        input_words = pack_patterns(list(patterns), self.compiled.n_inputs)
        n_words = input_words.shape[1]
        if self._good_buf is None or self._good_buf.shape[1] != n_words:
            self._good_buf = np.empty(
                (self.compiled.n_nodes, n_words), dtype=np.uint64
            )
        return self.compiled.simulate_words(input_words, out=self._good_buf)

    def _batches(self, faults: Sequence[Fault]) -> Iterator[tuple[Fault, ...]]:
        for start in range(0, len(faults), self.batch_size):
            yield tuple(faults[start : start + self.batch_size])

    def _cone(self, node_id: int) -> list[int]:
        cone = self._cone_cache.get(node_id)
        if cone is None:
            cone = self.compiled.output_cone_ids(node_id)
            self._cone_cache[node_id] = cone
        return cone

    def _plan(self, faults: tuple[Fault, ...]) -> _BatchPlan:
        plan = self._plan_cache.get(faults)
        if plan is None:
            plan = _BatchPlan(self.compiled, faults, cone_of=self._cone)
            self._plan_cache[faults] = plan
            while len(self._plan_cache) > PLAN_CACHE_SIZE:
                self._plan_cache.popitem(last=False)
        else:
            self._plan_cache.move_to_end(faults)
        return plan

    def _scan_detections(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(fault index, first detecting pattern index)`` pairs,
        scanning word windows in order with fault dropping."""
        if not patterns or not faults:
            return
        good = self._good_values(patterns)
        n_words = good.shape[1]
        mask = tail_mask(len(patterns))
        active = list(range(len(faults)))
        for word_start in range(0, n_words, self.drop_window_words):
            if not active:
                return
            word_end = min(word_start + self.drop_window_words, n_words)
            window = np.ascontiguousarray(good[:, word_start:word_end])
            window_mask = mask[word_start:word_end]
            survivors: list[int] = []
            for start in range(0, len(active), self.batch_size):
                batch_indices = active[start : start + self.batch_size]
                batch = tuple(faults[i] for i in batch_indices)
                detect = self._plan(batch).detect_words(window) & window_mask
                hits = detect.any(axis=1)
                for row, fault_index in enumerate(batch_indices):
                    if not hits[row]:
                        survivors.append(fault_index)
                        continue
                    words = detect[row]
                    word_offset = int(np.flatnonzero(words)[0])
                    word = int(words[word_offset])
                    yield fault_index, (
                        (word_start + word_offset) * 64
                        + (word & -word).bit_length()
                        - 1
                    )
            active = survivors


# ----------------------------------------------------------------------
# opt-in multiprocessing path (row-parallel Detection Matrix rows)
# ----------------------------------------------------------------------

_worker_simulator: BatchFaultSimulator | None = None
_worker_faults: list[Fault] = []


def _init_worker(circuit: Circuit, faults: list[Fault], batch_size: int) -> None:
    global _worker_simulator, _worker_faults
    _worker_simulator = BatchFaultSimulator(circuit, batch_size=batch_size)
    _worker_faults = faults


def _worker_rows(job: tuple[int, list[list[int]], int]) -> tuple[int, np.ndarray]:
    start, pattern_values, width = job
    assert _worker_simulator is not None, "worker pool not initialised"
    pattern_sets = [
        [BitVector(value, width) for value in values] for values in pattern_values
    ]
    rows = list(
        _worker_simulator.detection_matrix_rows(pattern_sets, _worker_faults)
    )
    stacked = (
        np.array(rows, dtype=bool)
        if rows
        else np.zeros((0, len(_worker_faults)), dtype=bool)
    )
    return start, stacked


def parallel_detection_rows(
    circuit: Circuit,
    pattern_sets: Sequence[Sequence[BitVector]],
    faults: Sequence[Fault],
    workers: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> np.ndarray:
    """Build ``(n_rows, n_faults)`` any-pattern detection rows with a
    process pool: rows are independent, so they shard cleanly.

    Each worker compiles the circuit once (pool initializer) and streams
    its row chunk through :meth:`BatchFaultSimulator.detection_matrix_rows`.
    Patterns cross the process boundary as plain integers to keep pickling
    cheap.  Row order (and every entry) is identical to the serial path.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    n_rows = len(pattern_sets)
    matrix = np.zeros((n_rows, len(faults)), dtype=bool)
    if n_rows == 0 or not faults:
        return matrix
    if workers == 1:
        simulator = BatchFaultSimulator(circuit, batch_size=batch_size)
        for row, values in enumerate(
            simulator.detection_matrix_rows(pattern_sets, faults)
        ):
            matrix[row] = values
        return matrix
    from concurrent.futures import ProcessPoolExecutor

    width = circuit.n_inputs
    chunk = max(1, -(-n_rows // (workers * 4)))
    jobs: list[tuple[int, list[list[int]], int]] = []
    for start in range(0, n_rows, chunk):
        values = [
            [pattern.value for pattern in patterns]
            for patterns in pattern_sets[start : start + chunk]
        ]
        jobs.append((start, values, width))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(circuit, list(faults), batch_size),
    ) as pool:
        for start, rows in pool.map(_worker_rows, jobs):
            matrix[start : start + rows.shape[0]] = rows
    return matrix
