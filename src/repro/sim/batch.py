"""Batched parallel-pattern fault simulation (PPSFP over fault batches).

The legacy engine (:class:`repro.sim.fault.SerialFaultSimulator`) walks
one fault cone at a time, paying one Python-level gate evaluation per
cone node *per fault*.  This engine simulates a whole **batch** of
faults at once:

* faulty node values are stacked along a fault axis — every node touched
  by the batch owns a ``(batch, n_words)`` ``uint64`` array, so one
  numpy call propagates 64 patterns for *all* faults in the batch;
* the batch shares one **cone-union schedule**: the union of the faults'
  output cones is levelized and grouped by (gate type, arity) once per
  distinct fault batch (:class:`_BatchPlan`), then reused for every
  pattern set simulated against that batch (e.g. every Detection Matrix
  row);
* fault injection is done by *forcing* rows: a stem fault freezes its
  net's row at the stuck value, a branch fault freezes the reading
  gate's row at the gate function with the faulty pin stuck.  Forced
  rows are re-asserted after their level evaluates, so a site that lies
  inside another fault's cone is still simulated correctly for the other
  rows of the batch.

**Fault dropping**: the any-pattern queries (:meth:`detected`,
:meth:`first_detection_index`, :meth:`fault_coverage`) scan the pattern
set in word-aligned windows and remove faults from the active set as
soon as a window detects them, so easy faults never pay for the full
pattern set.  Dropping is **incremental**: batch membership is fixed up
front and a shrinking batch *subsets* its existing compiled schedule
(:meth:`_BatchPlan.subset` — an index-mask filter over the forced rows)
instead of re-running the pure-Python cone-union/level-grouping
construction for every survivor tuple.

Every pattern argument is :data:`~repro.utils.bitvec.PatternsLike`: the
word-parallel :class:`~repro.utils.bitvec.PackedPatterns` the batched
TPG evolution (:meth:`repro.tpg.base.TestPatternGenerator.evolve_batch`)
emits passes straight through ``as_packed`` with **no** re-packing, so
generated sequences go TPG -> simulator without ever existing as Python
int lists.

:meth:`detection_matrix_rows` streams Detection Matrix rows (one row
per pattern set) over a fixed fault batching.  Rows are processed in
word-budgeted **chunks**: each chunk packs its rows word-aligned into
one combined pattern axis, so the fault-free simulation and every
per-batch :meth:`_BatchPlan.detect_words` run once per *chunk* instead
of once per row.  :func:`parallel_detection_rows` fans row chunks out
over a process pool for an opt-in ``workers=N`` construction path; the
packed pattern state is shared with the workers through a
``multiprocessing.shared_memory`` block (pickled once per worker on
platforms without ``fork``), so job payloads carry row *indices*, not
pattern data.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuit.gates import (
    GateType,
    eval_gate_planes,
    eval_gate_words,
    reduce_gate_planes,
    reduce_gate_words,
)
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.logic import CompiledCircuit
from repro.utils.bitvec import (
    BitVector,
    PackedPatterns,
    PatternsLike,
    as_packed,
)
from repro.utils.kernels import kernel

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default number of faults simulated per batch.
DEFAULT_BATCH_SIZE = 32

#: Fault-dropping window, in 64-pattern words (8 words = 512 patterns).
DROP_WINDOW_WORDS = 8

#: Word budget per detection-row chunk: rows are packed word-aligned
#: into a combined pattern axis until the budget fills, then simulated
#: together (64 words = up to 4096 patterns per fault-free pass).
DEFAULT_ROW_CHUNK_WORDS = 64

#: Cached cone-union schedules per simulator (LRU).  Callers that batch
#: a stable fault list (Detection Matrix rows, fault-dropping scans)
#: hit the same few plans forever; survivor subsets reuse their parent
#: plan via :meth:`_BatchPlan.subset` and never enter the cache.
PLAN_CACHE_SIZE = 256


class _BatchPlan:
    """The compiled cone-union schedule for one tuple of faults.

    Built once per distinct fault batch and cached by the simulator; the
    expensive structural work (cone unions, level grouping, buffer
    layout) is paid here so :meth:`detect_words` is pure numpy.
    """

    __slots__ = (
        "n_faults",
        "n_buf",
        "boundary_pos",
        "boundary_ids",
        "level_groups",
        "forcings",
        "out_pos",
        "out_ids",
    )

    def __init__(
        self,
        compiled: CompiledCircuit,
        faults: Sequence[Fault],
        cone_of,
    ) -> None:
        self.n_faults = len(faults)
        # Per-fault injection spec: (site node id, stuck value, branch gate
        # spec or None).  Branch forced values depend on the fault-free
        # values, so only the structure is precomputed.
        specs: list[tuple[int, int, tuple[GateType, tuple[int, ...], int] | None]] = []
        union: set[int] = set()
        for fault in faults:
            site = fault.site
            if site.is_branch:
                gate_id = compiled.index[site.gate]
                branch = (
                    compiled.gate_types[gate_id],
                    compiled.gate_fanins[gate_id],
                    int(site.pin),
                )
                node = gate_id
            else:
                branch = None
                node = compiled.index[site.net]
            specs.append((node, fault.value, branch))
            union.update(cone_of(node))
        site_nodes = {node for node, _, _ in specs}
        # Buffer membership: every evaluated node, every site, and every
        # fanin an evaluated gate reads (so gathers hit one buffer).
        buf_set = set(union) | site_nodes
        for node_id in union:
            buf_set.update(compiled.gate_fanins[node_id])
        buf_ids = sorted(buf_set)
        pos = {node_id: i for i, node_id in enumerate(buf_ids)}
        self.n_buf = len(buf_ids)
        boundary = [node_id for node_id in buf_ids if node_id not in union]
        self.boundary_pos = np.array([pos[n] for n in boundary], dtype=np.int64)
        self.boundary_ids = np.array(boundary, dtype=np.int64)
        # Forcings: (buffer row, fault row, stuck, branch spec, level,
        # evaluated) — `evaluated` marks sites inside the union, whose
        # rows must be re-forced after their level evaluates.
        levels = compiled.node_levels
        self.forcings = [
            (
                pos[node],
                row,
                stuck,
                branch,
                int(levels[node]),
                node in union,
            )
            for row, (node, stuck, branch) in enumerate(specs)
        ]
        # Cone-union schedule: union nodes grouped by (level, type, arity),
        # with fanin ids rewritten to buffer positions.
        grouped: dict[
            tuple[int, GateType, int], tuple[list[int], list[list[int]]]
        ] = {}
        for node_id in union:
            gtype = compiled.gate_types[node_id]
            fanins = compiled.gate_fanins[node_id]
            key = (int(levels[node_id]), gtype, len(fanins))
            outs, fins = grouped.setdefault(key, ([], []))
            outs.append(pos[node_id])
            fins.append([pos[f] for f in fanins])
        by_level: dict[int, list[tuple[GateType, np.ndarray, np.ndarray]]] = {}
        for level, gtype, arity in sorted(grouped, key=lambda k: k[0]):
            outs, fins = grouped[(level, gtype, arity)]
            by_level.setdefault(level, []).append(
                (
                    gtype,
                    np.array(outs, dtype=np.int64),
                    np.array(fins, dtype=np.int64),
                )
            )
        self.level_groups = sorted(by_level.items())
        # Observation points: only POs inside the union (or forced as a
        # site) can diverge from the fault-free values.
        observable = union | site_nodes
        out_ids = [int(o) for o in compiled.output_ids if int(o) in observable]
        self.out_pos = np.array([pos[o] for o in out_ids], dtype=np.int64)
        self.out_ids = np.array(out_ids, dtype=np.int64)

    def subset(self, rows: Sequence[int]) -> "_BatchPlan":
        """A plan for the faults at ``rows`` of this plan's batch.

        The expensive structure (cone union, buffer layout, level
        groups, observation points) is *shared* with the parent — the
        union is a superset of the survivors' union, which is correct
        because fault rows are independent: nodes only reachable from
        dropped faults evaluate to fault-free values on every surviving
        row and contribute nothing at the outputs.  Only the forced-row
        table is filtered and renumbered, so subsetting after fault
        dropping is O(batch) instead of a cone-union rebuild.
        """
        row_map = {int(old): new for new, old in enumerate(rows)}
        if len(row_map) != len(rows) or not all(
            0 <= old < self.n_faults for old in row_map
        ):
            raise ValueError(f"invalid subset rows {rows!r} of {self.n_faults}")
        clone = _BatchPlan.__new__(_BatchPlan)
        clone.n_faults = len(rows)
        clone.n_buf = self.n_buf
        clone.boundary_pos = self.boundary_pos
        clone.boundary_ids = self.boundary_ids
        clone.level_groups = self.level_groups
        clone.out_pos = self.out_pos
        clone.out_ids = self.out_ids
        clone.forcings = [
            (buf_row, row_map[fault_row], stuck, branch, level, evaluated)
            for buf_row, fault_row, stuck, branch, level, evaluated in self.forcings
            if fault_row in row_map
        ]
        return clone

    def _forced_words(self, good: np.ndarray) -> list[tuple[int, int, np.ndarray, int, bool]]:
        """Materialise forced rows for one good-value array:
        (buffer row, fault row, words, level, evaluated)."""
        n_words = good.shape[1]
        forced: list[tuple[int, int, np.ndarray, int, bool]] = []
        for buf_row, fault_row, stuck, branch, level, evaluated in self.forcings:
            stuck_words = (
                np.full(n_words, _ALL_ONES, dtype=np.uint64)
                if stuck
                else np.zeros(n_words, dtype=np.uint64)
            )
            if branch is None:
                words = stuck_words
            else:
                gtype, fanins, pin = branch
                words = eval_gate_words(
                    gtype,
                    [
                        stuck_words if j == pin else good[fanin_id]
                        for j, fanin_id in enumerate(fanins)
                    ],
                )
            forced.append((buf_row, fault_row, words, level, evaluated))
        return forced

    def _forced_planes(
        self, good_v: np.ndarray, good_c: np.ndarray
    ) -> list[tuple[int, int, np.ndarray, np.ndarray, int, bool]]:
        """Three-valued counterpart of :meth:`_forced_words`:
        (buffer row, fault row, value words, care words, level, evaluated).

        A stuck-at site is always *known* (care = all ones) — the defect
        pins the net regardless of what the machine knows elsewhere.  A
        branch forcing re-evaluates the reading gate in the plane algebra
        with the faulty pin pinned known-stuck, so X on the healthy pins
        propagates pessimistically through the forced gate too.
        """
        n_words = good_v.shape[1]
        forced: list[tuple[int, int, np.ndarray, np.ndarray, int, bool]] = []
        ones = np.full(n_words, _ALL_ONES, dtype=np.uint64)
        for buf_row, fault_row, stuck, branch, level, evaluated in self.forcings:
            stuck_words = (
                np.full(n_words, _ALL_ONES, dtype=np.uint64)
                if stuck
                else np.zeros(n_words, dtype=np.uint64)
            )
            if branch is None:
                v_words, c_words = stuck_words, ones
            else:
                gtype, fanins, pin = branch
                v_words, c_words = eval_gate_planes(
                    gtype,
                    [
                        stuck_words if j == pin else good_v[fanin_id]
                        for j, fanin_id in enumerate(fanins)
                    ],
                    [
                        ones if j == pin else good_c[fanin_id]
                        for j, fanin_id in enumerate(fanins)
                    ],
                )
            forced.append((buf_row, fault_row, v_words, c_words, level, evaluated))
        return forced

    # repro: allow[kernel-purity] O(depth) level walk + O(batch) forcing re-assert; each group evaluates word-parallel
    @kernel
    def detect_planes(
        self, good_v: np.ndarray, good_c: np.ndarray
    ) -> np.ndarray:
        """Three-valued per-fault detection words against good planes.

        ``good_v`` / ``good_c`` have shape ``(n_nodes, n_words)``; the
        result has shape ``(n_faults, n_words)`` with a bit set where
        some primary output is **known on both machines and differs** —
        the pessimistic tester view: an X on either side never counts as
        a detection (it would mask at the compactor), so 3-valued
        coverage is ≤ 2-valued coverage, with equality on X-free input.
        """
        n_words = good_v.shape[1]
        if not self.out_pos.size:
            return np.zeros((self.n_faults, n_words), dtype=np.uint64)
        buf_v = np.empty((self.n_buf, self.n_faults, n_words), dtype=np.uint64)
        buf_c = np.empty((self.n_buf, self.n_faults, n_words), dtype=np.uint64)
        if self.boundary_pos.size:
            buf_v[self.boundary_pos] = good_v[self.boundary_ids][:, None, :]
            buf_c[self.boundary_pos] = good_c[self.boundary_ids][:, None, :]
        forced = self._forced_planes(good_v, good_c)
        for buf_row, fault_row, v_words, c_words, _level, _evaluated in forced:
            buf_v[buf_row, fault_row] = v_words
            buf_c[buf_row, fault_row] = c_words
        for level, groups in self.level_groups:
            for gtype, out_pos, fanin_pos in groups:
                # Gather shape: (group size, arity, batch, n_words).
                out_v, out_c = reduce_gate_planes(
                    gtype, buf_v[fanin_pos], buf_c[fanin_pos], axis=1
                )
                buf_v[out_pos] = out_v
                buf_c[out_pos] = out_c
            for buf_row, fault_row, v_words, c_words, force_level, evaluated in forced:
                if evaluated and force_level == level:
                    buf_v[buf_row, fault_row] = v_words
                    buf_c[buf_row, fault_row] = c_words
        diff = (
            (buf_v[self.out_pos] ^ good_v[self.out_ids][:, None, :])
            & buf_c[self.out_pos]
            & good_c[self.out_ids][:, None, :]
        )
        return np.bitwise_or.reduce(diff, axis=0)

    # repro: allow[kernel-purity] O(depth) level walk + O(batch) forcing re-assert; each group evaluates word-parallel
    @kernel
    def detect_words(self, good: np.ndarray) -> np.ndarray:
        """Per-fault detection words against ``good`` values.

        ``good`` has shape ``(n_nodes, n_words)``; the result has shape
        ``(n_faults, n_words)`` with a bit set where some primary output
        differs from the fault-free value (tail bits unmasked).
        """
        n_words = good.shape[1]
        if not self.out_pos.size:
            return np.zeros((self.n_faults, n_words), dtype=np.uint64)
        buf = np.empty((self.n_buf, self.n_faults, n_words), dtype=np.uint64)
        if self.boundary_pos.size:
            buf[self.boundary_pos] = good[self.boundary_ids][:, None, :]
        forced = self._forced_words(good)
        for buf_row, fault_row, words, _level, _evaluated in forced:
            buf[buf_row, fault_row] = words
        for level, groups in self.level_groups:
            for gtype, out_pos, fanin_pos in groups:
                # Gather shape: (group size, arity, batch, n_words).
                buf[out_pos] = reduce_gate_words(gtype, buf[fanin_pos], axis=1)
            for buf_row, fault_row, words, force_level, evaluated in forced:
                if evaluated and force_level == level:
                    buf[buf_row, fault_row] = words
        diff = buf[self.out_pos] ^ good[self.out_ids][:, None, :]
        return np.bitwise_or.reduce(diff, axis=0)


class BatchFaultSimulator:
    """Batched stuck-at fault simulator bound to one circuit.

    The compiled circuit, per-node cones and per-batch schedules are all
    cached, so repeated calls (one per Detection Matrix row, one per GA
    fitness evaluation, ...) only pay for numpy work.
    """

    def __init__(
        self,
        circuit: Circuit,
        batch_size: int = DEFAULT_BATCH_SIZE,
        drop_window_words: int = DROP_WINDOW_WORDS,
        row_chunk_words: int = DEFAULT_ROW_CHUNK_WORDS,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if drop_window_words < 1:
            raise ValueError(
                f"drop_window_words must be >= 1, got {drop_window_words}"
            )
        if row_chunk_words < 1:
            raise ValueError(
                f"row_chunk_words must be >= 1, got {row_chunk_words}"
            )
        self.compiled = CompiledCircuit(circuit)
        self.circuit = circuit
        self.batch_size = batch_size
        self.drop_window_words = drop_window_words
        self.row_chunk_words = row_chunk_words
        self._cone_cache: dict[int, list[int]] = {}
        self._plan_cache: OrderedDict[tuple[Fault, ...], _BatchPlan] = OrderedDict()
        self._good_buf: np.ndarray | None = None
        #: Plan economics, exposed for tests and perf forensics: full
        #: cone-union constructions vs cache hits vs O(batch) subsets.
        self.plan_builds = 0
        self.plan_cache_hits = 0
        self.plan_subsets = 0
        #: Throughput counters: pattern-axis words per fault-free pass,
        #: and faults retired from scan windows by fault dropping.
        self.words_simulated = 0
        self.faults_dropped = 0
        # Telemetry stays collector-based: the hot loops above touch
        # plain ints only, and a registry samples them at scrape time.
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        """Export this simulator's counters through ``metrics`` (a
        :class:`repro.obs.MetricsRegistry`).

        Registers a scrape-time collector over the plain ``int``
        counters, so the simulate/scan hot paths stay instruction-
        identical whether telemetry is on or off.  The registry holds
        the collector weakly — it dies with the simulator.  Counters
        from several simulators on one registry sum into one series.
        """
        if metrics is None or not getattr(metrics, "enabled", False):
            return
        if self._metrics is metrics:
            return
        self._metrics = metrics
        metrics.register_collector(self._metric_samples)

    def _metric_samples(self):
        from repro.obs.metrics import Sample

        rows = (
            ("repro_sim_plan_builds_total", self.plan_builds,
             "Cone-union batch plans compiled."),
            ("repro_sim_plan_cache_hits_total", self.plan_cache_hits,
             "Batch plans served from the LRU plan cache."),
            ("repro_sim_plan_subsets_total", self.plan_subsets,
             "O(batch) plan subsets taken during fault-drop scans."),
            ("repro_sim_words_simulated_total", self.words_simulated,
             "Pattern-axis 64-bit words through fault-free simulation."),
            ("repro_sim_faults_dropped_total", self.faults_dropped,
             "Faults retired early by window-scan fault dropping."),
        )
        return [Sample(name, "counter", (), value, help) for name, value, help in rows]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def plan_for(self, faults: Sequence[Fault]) -> _BatchPlan:
        """The compiled cone-union schedule for one fault batch.

        Public accessor over the LRU plan cache, so engines layered on
        the simulator — the batch PODEM's implication step, drop loops
        in :mod:`repro.atpg.engine` — share the same levelized
        schedules (and the same cache economics) as the detection
        queries instead of recompiling cone unions on the side.
        """
        return self._plan(tuple(faults))

    def detection_matrix(
        self, patterns: PatternsLike, faults: Sequence[Fault]
    ) -> np.ndarray:
        """Boolean matrix ``(n_patterns, n_faults)``: entry ``[p, f]`` is
        True iff pattern ``p`` detects fault ``f``."""
        packed = as_packed(patterns, self.compiled.n_inputs)
        result = np.zeros((packed.n_patterns, len(faults)), dtype=bool)
        if not packed.n_patterns or not faults:
            return result
        good = self._good_values(packed)
        column = 0
        for batch in self._batches(faults):
            detect = self._plan(batch).detect_words(good)
            bits = np.unpackbits(
                np.ascontiguousarray(detect).view(np.uint8).reshape(len(batch), -1),
                axis=1,
                bitorder="little",
            )
            result[:, column : column + len(batch)] = (
                bits[:, : packed.n_patterns].astype(bool).T
            )
            column += len(batch)
        return result

    def detected(
        self, patterns: PatternsLike, faults: Sequence[Fault]
    ) -> list[bool]:
        """Per-fault flag: does *any* pattern detect the fault?

        Scans patterns window by window with fault dropping: a fault
        detected in an early window leaves the active set and never
        simulates the rest of the pattern set.
        """
        flags = [False] * len(faults)
        for fault_index, _ in self._scan_detections(patterns, faults):
            flags[fault_index] = True
        return flags

    def first_detection_index(
        self, patterns: PatternsLike, faults: Sequence[Fault]
    ) -> list[int | None]:
        """For each fault, the index of the first detecting pattern
        (``None`` if undetected).  Used for test-set trimming."""
        indices: list[int | None] = [None] * len(faults)
        for fault_index, position in self._scan_detections(patterns, faults):
            indices[fault_index] = position
        return indices

    def fault_coverage(
        self, patterns: PatternsLike, faults: Sequence[Fault]
    ) -> float:
        """Fraction of ``faults`` detected by ``patterns`` (0..1)."""
        if not faults:
            return 1.0
        flags = self.detected(patterns, faults)
        return sum(flags) / len(faults)

    def detection_matrix_rows(
        self,
        pattern_sets: Iterable[PatternsLike],
        faults: Sequence[Fault],
        row_chunk_words: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Stream Detection Matrix rows: one boolean ``(n_faults,)`` row
        per pattern set, ``row[f]`` True iff some pattern detects fault
        ``f``.

        The fault batching is fixed up front, so every row reuses the
        same cached cone-union schedules.  Rows are packed word-aligned
        and accumulated into chunks of up to ``row_chunk_words`` words
        (default: the simulator's ``row_chunk_words``); each chunk pays
        one fault-free simulation and one :meth:`_BatchPlan.detect_words`
        per fault batch for *all* its rows, which is where the engine's
        throughput over per-row simulation comes from.  Results are
        bit-identical to per-row simulation (``row_chunk_words=1``
        degenerates to exactly that).
        """
        faults = list(faults)
        budget = (
            self.row_chunk_words if row_chunk_words is None else row_chunk_words
        )
        if budget < 1:
            raise ValueError(f"row_chunk_words must be >= 1, got {budget}")
        batches = list(self._batches(faults))
        plans = [self._plan(batch) for batch in batches]
        chunk: list[PackedPatterns] = []
        chunk_words = 0
        for patterns in pattern_sets:
            packed = as_packed(patterns, self.compiled.n_inputs)
            chunk.append(packed)
            chunk_words += packed.n_words
            if chunk_words >= budget:
                yield from self._row_chunk(chunk, len(faults), batches, plans)
                chunk, chunk_words = [], 0
        if chunk:
            yield from self._row_chunk(chunk, len(faults), batches, plans)

    def _row_chunk(
        self,
        chunk: list[PackedPatterns],
        n_faults: int,
        batches: list[tuple[Fault, ...]],
        plans: list[_BatchPlan],
    ) -> Iterator[np.ndarray]:
        """Simulate one word-aligned chunk of packed rows together and
        yield its per-row detection rows in order."""
        rows = np.zeros((len(chunk), n_faults), dtype=bool)
        # Word segment per non-empty row in the combined pattern axis.
        starts: list[int] = []
        row_of_segment: list[int] = []
        offset = 0
        for row_index, packed in enumerate(chunk):
            if packed.n_words:
                starts.append(offset)
                row_of_segment.append(row_index)
                offset += packed.n_words
        if offset and n_faults:
            pieces = [p for p in chunk if p.n_words]
            if len(pieces) == 1:
                # Pre-packed rows (TPG evolution banks arrive packed)
                # pass through without a copy when they fill the chunk.
                combined = PackedPatterns(pieces[0].words, offset * 64)
                mask = pieces[0].tail_mask()
            else:
                combined = PackedPatterns(
                    np.concatenate([p.words for p in pieces], axis=1),
                    offset * 64,
                )
                mask = np.concatenate([p.tail_mask() for p in pieces])
            good = self._good_values(combined)
            segment_starts = np.array(starts, dtype=np.int64)
            column = 0
            for batch, plan in zip(batches, plans):
                hits = plan.detect_words(good) & mask
                # One segmented any-reduction over the word axis gives
                # every row's verdict for this batch at once.
                reduced = np.bitwise_or.reduceat(hits, segment_starts, axis=1)
                rows[row_of_segment, column : column + len(batch)] = (
                    reduced != 0
                ).T
                column += len(batch)
        for row in rows:
            # Independent arrays, not views of the chunk buffer — rows
            # stay safe to mutate, exactly like the per-row engine's.
            yield row.copy()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @kernel
    def _good_values(self, patterns: PatternsLike) -> np.ndarray:
        packed = as_packed(patterns, self.compiled.n_inputs)
        n_words = packed.n_words
        if self._good_buf is None or self._good_buf.shape[1] != n_words:
            self._good_buf = np.empty(
                (self.compiled.n_nodes, n_words), dtype=np.uint64
            )
        self.words_simulated += n_words
        return self.compiled.simulate_words(packed.words, out=self._good_buf)

    def _batches(self, faults: Sequence[Fault]) -> Iterator[tuple[Fault, ...]]:
        for start in range(0, len(faults), self.batch_size):
            yield tuple(faults[start : start + self.batch_size])

    def _cone(self, node_id: int) -> list[int]:
        cone = self._cone_cache.get(node_id)
        if cone is None:
            cone = self.compiled.output_cone_ids(node_id)
            self._cone_cache[node_id] = cone
        return cone

    def _plan(self, faults: tuple[Fault, ...]) -> _BatchPlan:
        plan = self._plan_cache.get(faults)
        if plan is None:
            plan = _BatchPlan(self.compiled, faults, cone_of=self._cone)
            self.plan_builds += 1
            self._plan_cache[faults] = plan
            while len(self._plan_cache) > PLAN_CACHE_SIZE:
                self._plan_cache.popitem(last=False)
        else:
            self.plan_cache_hits += 1
            self._plan_cache.move_to_end(faults)
        return plan

    def _scan_detections(
        self, patterns: PatternsLike, faults: Sequence[Fault]
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(fault index, first detecting pattern index)`` pairs,
        scanning word windows in order with fault dropping.

        Batch membership is fixed up front; when dropping shrinks a
        batch, the batch *subsets* its compiled plan via an index mask
        (:meth:`_BatchPlan.subset`) instead of rebuilding cone unions
        for the survivor tuple, so a scan's structural cost is paid once
        in the first window regardless of how fast faults drop.
        """
        packed = as_packed(patterns, self.compiled.n_inputs)
        if not packed.n_patterns or not faults:
            return
        good = self._good_values(packed)
        n_words = good.shape[1]
        mask = packed.tail_mask()
        # Per-batch survivor state: (original fault indices, live plan).
        states: list[tuple[list[int], _BatchPlan]] = []
        for start in range(0, len(faults), self.batch_size):
            indices = list(range(start, min(start + self.batch_size, len(faults))))
            states.append(
                (indices, self._plan(tuple(faults[i] for i in indices)))
            )
        for word_start in range(0, n_words, self.drop_window_words):
            if not states:
                return
            word_end = min(word_start + self.drop_window_words, n_words)
            last_window = word_end >= n_words
            window = np.ascontiguousarray(good[:, word_start:word_end])
            window_mask = mask[word_start:word_end]
            next_states: list[tuple[list[int], _BatchPlan]] = []
            for indices, plan in states:
                detect = plan.detect_words(window) & window_mask
                hits = detect.any(axis=1)
                surviving_rows: list[int] = []
                for row, fault_index in enumerate(indices):
                    if not hits[row]:
                        surviving_rows.append(row)
                        continue
                    words = detect[row]
                    word_offset = int(np.flatnonzero(words)[0])
                    word = int(words[word_offset])
                    self.faults_dropped += 1
                    yield fault_index, (
                        (word_start + word_offset) * 64
                        + (word & -word).bit_length()
                        - 1
                    )
                # Survivor bookkeeping only matters if another window
                # will run; the final window skips the subsetting work.
                if last_window or not surviving_rows:
                    continue
                if len(surviving_rows) < len(indices):
                    plan = plan.subset(surviving_rows)
                    self.plan_subsets += 1
                    indices = [indices[row] for row in surviving_rows]
                next_states.append((indices, plan))
            states = next_states


# ----------------------------------------------------------------------
# opt-in multiprocessing path (row-parallel Detection Matrix rows)
# ----------------------------------------------------------------------


class _SharedRowState:
    """Read-only state every worker needs: the packed pattern rows plus
    the simulator (circuit compiled, fault-batch plans pre-built).

    On ``fork`` platforms the parent builds this once, backs the word
    array with a ``multiprocessing.shared_memory`` block, and publishes
    it as a module global *before* spawning the pool — children inherit
    the mapping, so job payloads carry only row indices and nothing is
    re-pickled or re-compiled per job.  On spawn platforms the same
    object is reconstructed once per worker from pickled pieces (the
    fallback documented on :func:`parallel_detection_rows`).
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: list[Fault],
        batch_size: int,
        words: np.ndarray,
        row_word_starts: np.ndarray,
        row_pattern_counts: np.ndarray,
    ) -> None:
        self.circuit = circuit
        self.faults = faults
        self.batch_size = batch_size
        self.words = words
        self.row_word_starts = row_word_starts  # (n_rows + 1,) word offsets
        self.row_pattern_counts = row_pattern_counts
        self._simulator: BatchFaultSimulator | None = None

    def simulator(self) -> BatchFaultSimulator:
        if self._simulator is None:
            self._simulator = BatchFaultSimulator(
                self.circuit, batch_size=self.batch_size
            )
        return self._simulator

    def prebuild_plans(self) -> None:
        """Compile the circuit and every fault-batch plan now (parent
        side, before forking) so children inherit them read-only."""
        simulator = self.simulator()
        for batch in simulator._batches(self.faults):
            simulator._plan(batch)

    def row(self, index: int) -> PackedPatterns:
        lo = int(self.row_word_starts[index])
        hi = int(self.row_word_starts[index + 1])
        return PackedPatterns(
            self.words[:, lo:hi], int(self.row_pattern_counts[index])
        )

    def rows(self, start: int, stop: int) -> list[PackedPatterns]:
        return [self.row(index) for index in range(start, stop)]


_shared_row_state: _SharedRowState | None = None


def _init_spawned_worker(
    circuit: Circuit,
    faults: list[Fault],
    batch_size: int,
    words: np.ndarray,
    row_word_starts: np.ndarray,
    row_pattern_counts: np.ndarray,
) -> None:
    """Pool initializer for the pickle fallback: rebuild the shared
    state once per worker (not once per job)."""
    global _shared_row_state
    _shared_row_state = _SharedRowState(
        circuit, faults, batch_size, words, row_word_starts, row_pattern_counts
    )


def _worker_row_range(job: tuple[int, int]) -> tuple[int, np.ndarray]:
    """Simulate detection rows ``[start, stop)`` against the shared
    (fork-inherited or initializer-rebuilt) pattern state."""
    start, stop = job
    state = _shared_row_state
    assert state is not None, "worker pool not initialised"
    simulator = state.simulator()
    rows = list(
        simulator.detection_matrix_rows(state.rows(start, stop), state.faults)
    )
    stacked = (
        np.array(rows, dtype=bool)
        if rows
        else np.zeros((0, len(state.faults)), dtype=bool)
    )
    return start, stacked


def _row_jobs(n_rows: int, workers: int) -> list[tuple[int, int]]:
    """Split ``n_rows`` into ``(start, stop)`` jobs, ~4 per worker.

    Jobs are index ranges into the shared packed-row state — their
    pickled payload is O(1) per job regardless of how many patterns the
    rows hold (the regression suite pins this).
    """
    chunk = max(1, -(-n_rows // (workers * 4)))
    return [
        (start, min(start + chunk, n_rows)) for start in range(0, n_rows, chunk)
    ]


def _pack_rows(
    pattern_sets: Sequence[Sequence[BitVector] | PackedPatterns], width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack every row word-aligned into one contiguous buffer; returns
    ``(words, row_word_starts, row_pattern_counts)``."""
    packed_rows = [as_packed(patterns, width) for patterns in pattern_sets]
    starts = np.zeros(len(packed_rows) + 1, dtype=np.int64)
    counts = np.array([p.n_patterns for p in packed_rows], dtype=np.int64)
    for index, packed in enumerate(packed_rows):
        starts[index + 1] = starts[index] + packed.n_words
    total_words = int(starts[-1])
    words = np.empty((width, total_words), dtype=np.uint64)
    for index, packed in enumerate(packed_rows):
        words[:, starts[index] : starts[index + 1]] = packed.words
    return words, starts, counts


def parallel_detection_rows(
    circuit: Circuit,
    pattern_sets: Sequence[Sequence[BitVector] | PackedPatterns],
    faults: Sequence[Fault],
    workers: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> np.ndarray:
    """Build ``(n_rows, n_faults)`` any-pattern detection rows with a
    process pool: rows are independent, so they shard cleanly.

    The pattern rows are packed word-parallel **once** in the parent.
    On ``fork`` start methods the packed words live in a
    ``multiprocessing.shared_memory`` block and the compiled simulator
    (circuit + fault-batch plans) is published as a module global, so
    every worker inherits the read-only state and each job's payload is
    a bare ``(start, stop)`` row range — O(1), not O(n_patterns).  On
    spawn platforms the packed state is pickled once per *worker*
    through the pool initializer (never per job).  Row order (and every
    entry) is identical to the serial path.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    n_rows = len(pattern_sets)
    matrix = np.zeros((n_rows, len(faults)), dtype=bool)
    if n_rows == 0 or not faults:
        return matrix
    if workers == 1:
        simulator = BatchFaultSimulator(circuit, batch_size=batch_size)
        for row, values in enumerate(
            simulator.detection_matrix_rows(pattern_sets, faults)
        ):
            matrix[row] = values
        return matrix
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    words, row_word_starts, row_pattern_counts = _pack_rows(
        pattern_sets, circuit.n_inputs
    )
    jobs = _row_jobs(n_rows, workers)
    use_fork = multiprocessing.get_start_method() == "fork"
    shm = None
    global _shared_row_state
    try:
        if use_fork:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, words.nbytes)
            )
            shared_words = np.ndarray(
                words.shape, dtype=np.uint64, buffer=shm.buf
            )
            shared_words[:] = words
            state = _SharedRowState(
                circuit,
                list(faults),
                batch_size,
                shared_words,
                row_word_starts,
                row_pattern_counts,
            )
            # Pay compilation + plan construction once, pre-fork: the
            # children inherit the schedules copy-on-write.
            state.prebuild_plans()
            _shared_row_state = state
            pool = ProcessPoolExecutor(max_workers=workers)
        else:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_spawned_worker,
                initargs=(
                    circuit,
                    list(faults),
                    batch_size,
                    words,
                    row_word_starts,
                    row_pattern_counts,
                ),
            )
        with pool:
            for start, rows in pool.map(_worker_row_range, jobs):
                matrix[start : start + rows.shape[0]] = rows
    finally:
        _shared_row_state = None
        if shm is not None:
            shm.close()
            shm.unlink()
    return matrix
