"""Logic and fault simulation.

* :mod:`repro.sim.logic` — 64-way bit-parallel true-value simulation.
* :mod:`repro.sim.fault` — parallel-pattern single-fault (PPSFP)
  stuck-at fault simulation on the packed representation.
* :mod:`repro.sim.event` — a slow, obviously-correct single-pattern
  reference simulator used to cross-check the packed engines.
"""

from repro.sim.logic import CompiledCircuit, simulate_patterns
from repro.sim.fault import FaultSimulator, detected_faults
from repro.sim.event import ReferenceSimulator
from repro.sim.sequential import SequentialSimulator
from repro.sim.misr import Misr, aliasing_rate, golden_signature

__all__ = [
    "CompiledCircuit",
    "FaultSimulator",
    "Misr",
    "ReferenceSimulator",
    "SequentialSimulator",
    "aliasing_rate",
    "detected_faults",
    "golden_signature",
    "simulate_patterns",
]
