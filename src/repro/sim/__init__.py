"""Logic and fault simulation.

* :mod:`repro.sim.logic` — 64-way bit-parallel true-value simulation.
* :mod:`repro.sim.batch` — batched PPSFP stuck-at fault simulation with
  fault dropping and a row-parallel multiprocessing path (the engine
  behind :class:`FaultSimulator`).
* :mod:`repro.sim.fault` — the :class:`FaultSimulator` compatibility
  wrapper plus the legacy per-fault :class:`SerialFaultSimulator`
  baseline.
* :mod:`repro.sim.event` — a slow, obviously-correct single-pattern
  reference simulator used to cross-check the packed engines.
"""

from repro.sim.logic import CompiledCircuit, simulate_patterns
from repro.sim.batch import BatchFaultSimulator, parallel_detection_rows
from repro.sim.fault import FaultSimulator, SerialFaultSimulator, detected_faults
from repro.sim.event import ReferenceSimulator
from repro.sim.sequential import SequentialSimulator
from repro.sim.misr import Misr, aliasing_rate, golden_signature

__all__ = [
    "BatchFaultSimulator",
    "CompiledCircuit",
    "FaultSimulator",
    "SerialFaultSimulator",
    "Misr",
    "ReferenceSimulator",
    "SequentialSimulator",
    "aliasing_rate",
    "detected_faults",
    "golden_signature",
    "parallel_detection_rows",
    "simulate_patterns",
]
