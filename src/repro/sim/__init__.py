"""Logic and fault simulation.

* :mod:`repro.sim.logic` — 64-way bit-parallel true-value simulation.
* :mod:`repro.sim.batch` — batched PPSFP stuck-at fault simulation with
  fault dropping and a row-parallel multiprocessing path (the engine
  behind :class:`FaultSimulator`).
* :mod:`repro.sim.fault` — the :class:`FaultSimulator` compatibility
  wrapper plus the legacy per-fault :class:`SerialFaultSimulator`
  baseline.
* :mod:`repro.sim.event` — a slow, obviously-correct single-pattern
  reference simulator used to cross-check the packed engines.
* :mod:`repro.sim.threeval` — three-valued (0/1/X) packed simulation:
  :func:`logic_sim_3v` true-value planes and the
  :class:`XFaultSimulator` with pessimistic (X-masking) detection.
"""

from repro.sim.logic import CompiledCircuit, simulate_patterns
from repro.sim.batch import BatchFaultSimulator, parallel_detection_rows
from repro.sim.fault import FaultSimulator, SerialFaultSimulator, detected_faults
from repro.sim.event import ReferenceSimulator
from repro.sim.sequential import SequentialSimulator
from repro.sim.misr import Misr, aliasing_rate, golden_signature, x_masked_signature
from repro.sim.threeval import XFaultSimulator, logic_sim_3v, logic_sim_3v_scalar

__all__ = [
    "BatchFaultSimulator",
    "CompiledCircuit",
    "FaultSimulator",
    "SerialFaultSimulator",
    "Misr",
    "ReferenceSimulator",
    "SequentialSimulator",
    "XFaultSimulator",
    "aliasing_rate",
    "detected_faults",
    "golden_signature",
    "logic_sim_3v",
    "logic_sim_3v_scalar",
    "parallel_detection_rows",
    "simulate_patterns",
    "x_masked_signature",
]
