"""Cycle-accurate simulation of sequential (pre-scan) circuits.

The catalog's ISCAS'89 members are sequential netlists; the reseeding
flow tests their full-scan *view*, but the view is only trustworthy if
it matches the real machine.  :class:`SequentialSimulator` steps the raw
netlist cycle by cycle (DFFs hold state), which lets the test suite
verify the full-scan contract:

    one combinational evaluation of ``full_scan_view(C)`` with the
    flip-flop state presented on the pseudo-PIs equals one clock of
    ``C`` — POs match, and the pseudo-POs equal the next state.

It also simulates the *hardware* TPG registers directly when a TPG is
realised as a sequential netlist.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import GateType, eval_gate_bool
from repro.circuit.netlist import Circuit
from repro.utils.bitvec import BitVector


class SequentialSimulator:
    """Two-phase clocked simulation of a circuit with DFFs.

    Each :meth:`step` evaluates the combinational logic with the current
    state, captures the primary outputs, then updates every DFF from its
    data input (all flip-flops clock together, as in the ISCAS'89
    single-clock model).
    """

    def __init__(self, circuit: Circuit, initial_state: Mapping[str, int] | None = None) -> None:
        self.circuit = circuit
        self._order = circuit.topo_order()
        self._input_set = set(circuit.inputs)
        self.dff_names = [
            name
            for name in circuit.gates
            if circuit.gates[name].gtype is GateType.DFF
        ]
        self.state: dict[str, int] = {name: 0 for name in self.dff_names}
        if initial_state is not None:
            self.load_state(initial_state)

    def load_state(self, state: Mapping[str, int]) -> None:
        """Set flip-flop values (a scan-load, conceptually)."""
        unknown = set(state) - set(self.state)
        if unknown:
            raise KeyError(f"not flip-flops: {sorted(unknown)}")
        for name, value in state.items():
            if value not in (0, 1):
                raise ValueError(f"flip-flop {name!r} value must be 0/1, got {value!r}")
            self.state[name] = value

    def state_vector(self) -> BitVector:
        """Current state as a bit vector (bit k = ``dff_names[k]``)."""
        if not self.dff_names:
            raise ValueError("circuit has no flip-flops")
        return BitVector.from_bits([self.state[n] for n in self.dff_names])

    def evaluate(self, pattern: BitVector) -> dict[str, int]:
        """Combinational evaluation at the current state (no clock)."""
        if pattern.width != len(self.circuit.inputs):
            raise ValueError(
                f"pattern width {pattern.width} != {len(self.circuit.inputs)} inputs"
            )
        values: dict[str, int] = {}
        for name in self._order:
            if name in self._input_set:
                values[name] = pattern.bit(self.circuit.inputs.index(name))
                continue
            gate = self.circuit.gates[name]
            if gate.gtype is GateType.DFF:
                values[name] = self.state[name]
            elif gate.gtype is GateType.CONST0:
                values[name] = 0
            elif gate.gtype is GateType.CONST1:
                values[name] = 1
            else:
                values[name] = eval_gate_bool(
                    gate.gtype, [values[f] for f in gate.fanins]
                )
        return values

    def step(self, pattern: BitVector) -> BitVector:
        """One clock: returns the PO vector sampled before the edge."""
        values = self.evaluate(pattern)
        outputs = BitVector.from_bits(
            [values[net] for net in self.circuit.outputs]
        )
        for name in self.dff_names:
            data_net = self.circuit.gates[name].fanins[0]
            self.state[name] = values[data_net]
        return outputs

    def run(self, patterns: list[BitVector]) -> list[BitVector]:
        """Apply a pattern sequence; one PO vector per clock."""
        return [self.step(p) for p in patterns]
