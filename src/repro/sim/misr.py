"""MISR response compaction (the BIST output side).

A BIST architecture needs the test *responses* compacted as well as the
stimuli generated; the arithmetic-BIST literature the paper builds on
([1][2]) pairs the accumulator TPG with a Multiple-Input Signature
Register.  This module provides a classic LFSR-based MISR: each cycle
the register shifts (with polynomial feedback) and XORs the response
vector in; after the test, the register holds a signature compared
against the fault-free golden value.

The aliasing probability of an n-bit MISR is ~2^-n; :func:`aliasing_rate`
measures it empirically for the test suite.

**X-masking** (:meth:`Misr.masked_step` / :meth:`Misr.masked_signature` /
:func:`x_masked_signature`): a single X entering a MISR corrupts the
whole signature — after one feedback shift the unknown smears across the
register and the compare against the golden value is meaningless.  The
standard tester fix is to *mask* unknown response bits to a fixed value
(0 here) before compaction, so the signature stays deterministic and
comparable; the price is that faults observable only on masked bits go
undetected.  On an X-free response stream the masked signature is
bit-identical to :meth:`Misr.signature` (the differential suite pins
this).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuit.netlist import Circuit
from repro.sim.logic import CompiledCircuit
from repro.tpg.lfsr import taps_for_width
from repro.utils.bitvec import BitVector, PackedPlanes, unpack_words


class Misr:
    """An n-bit LFSR-based multiple-input signature register."""

    def __init__(self, width: int, taps: tuple[int, ...] | None = None) -> None:
        if width <= 0:
            raise ValueError(f"MISR width must be positive, got {width}")
        self.width = width
        self.taps = tuple(taps) if taps is not None else taps_for_width(width)
        if not self.taps or any(not 0 <= t < width for t in self.taps):
            raise ValueError(f"invalid tap set {self.taps} for width {width}")

    def step(self, state: BitVector, response: BitVector) -> BitVector:
        """One compaction cycle: shift with feedback, XOR the response in."""
        if state.width != self.width or response.width != self.width:
            raise ValueError("state/response width must equal MISR width")
        feedback = 0
        for tap in self.taps:
            feedback ^= state.bit(tap)
        shifted = BitVector(((state.value << 1) | feedback), self.width)
        return shifted ^ response

    def signature(
        self, responses: Iterable[BitVector], seed: BitVector | None = None
    ) -> BitVector:
        """Compact a response sequence into a signature."""
        state = seed if seed is not None else BitVector.zeros(self.width)
        for response in responses:
            state = self.step(state, response)
        return state

    def masked_step(
        self, state: BitVector, value: BitVector, care: BitVector
    ) -> BitVector:
        """One X-masked compaction cycle: unknown response bits (care 0)
        are forced to 0 before the XOR, so an X never enters the
        register.  With ``care`` all ones this is exactly :meth:`step`."""
        if care.width != self.width:
            raise ValueError("care width must equal MISR width")
        return self.step(state, value & care)

    def masked_signature(
        self,
        responses: Iterable[tuple[BitVector, BitVector]],
        seed: BitVector | None = None,
    ) -> tuple[BitVector, int]:
        """Compact ``(value, care)`` response pairs with X-masking.

        Returns ``(signature, n_masked)`` where ``n_masked`` counts the
        response bits that were forced to 0 because they carried X —
        the tester's observability loss for this pattern sequence.
        """
        state = seed if seed is not None else BitVector.zeros(self.width)
        all_ones = (1 << self.width) - 1
        n_masked = 0
        for value, care in responses:
            n_masked += bin(~care.value & all_ones).count("1")
            state = self.masked_step(state, value, care)
        return state, n_masked


def golden_signature(
    circuit: Circuit, patterns: Sequence[BitVector], misr: Misr | None = None
) -> BitVector:
    """The fault-free signature of ``circuit`` for a pattern sequence."""
    misr = misr or Misr(circuit.n_outputs)
    if misr.width != circuit.n_outputs:
        raise ValueError(
            f"MISR width {misr.width} != circuit output count {circuit.n_outputs}"
        )
    responses = CompiledCircuit(circuit).simulate_patterns(list(patterns))
    return misr.signature(responses)


def x_masked_signature(
    circuit: Circuit, planes: PackedPlanes, misr: Misr | None = None
) -> tuple[BitVector, int]:
    """The X-masked fault-free signature for a three-valued stimulus.

    Simulates ``planes`` (0/1/X input patterns, one per lane) through the
    three-valued engine, masks unknown output bits to 0 and compacts the
    rest; returns ``(signature, n_masked)``.  For X-free stimuli this
    equals :func:`golden_signature` on the same patterns with
    ``n_masked == 0``.
    """
    misr = misr or Misr(circuit.n_outputs)
    if misr.width != circuit.n_outputs:
        raise ValueError(
            f"MISR width {misr.width} != circuit output count {circuit.n_outputs}"
        )
    out = CompiledCircuit(circuit).simulate_planes_packed(planes)
    values = unpack_words(out.value, out.n_patterns)
    cares = unpack_words(out.care, out.n_patterns)
    return misr.masked_signature(zip(values, cares))


def aliasing_rate(
    misr: Misr,
    good_responses: Sequence[BitVector],
    corrupted_runs: Sequence[Sequence[BitVector]],
) -> float:
    """Fraction of corrupted response runs whose signature still equals
    the good signature (empirical aliasing estimate)."""
    if not corrupted_runs:
        return 0.0
    golden = misr.signature(good_responses)
    aliases = sum(
        1 for run in corrupted_runs if misr.signature(run) == golden
    )
    return aliases / len(corrupted_runs)
