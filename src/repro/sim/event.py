"""Slow, obviously-correct reference simulator.

Evaluates one pattern at a time with plain Python ints, and injects
faults by overriding the value a reader sees.  It exists to cross-check
the packed engines (:mod:`repro.sim.logic`, :mod:`repro.sim.fault`) in
the property-based tests — the two implementations share no evaluation
code beyond the :class:`GateType` enum.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.circuit.gates import GateType, eval_gate_bool
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.utils.bitvec import BitVector


class ReferenceSimulator:
    """Single-pattern interpreter over a combinational circuit."""

    def __init__(self, circuit: Circuit) -> None:
        if circuit.is_sequential():
            raise ValueError(
                f"circuit {circuit.name!r} is sequential; take full_scan_view() first"
            )
        self.circuit = circuit
        self._order = circuit.topo_order()
        self._input_set = set(circuit.inputs)

    def node_values(
        self, pattern: BitVector, fault: Fault | None = None
    ) -> Mapping[str, int]:
        """Evaluate every net for ``pattern``; optionally with ``fault``
        injected.  ``pattern`` bit ``k`` drives ``circuit.inputs[k]``."""
        if pattern.width != len(self.circuit.inputs):
            raise ValueError(
                f"pattern width {pattern.width} != {len(self.circuit.inputs)} inputs"
            )
        values: dict[str, int] = {}
        for name in self._order:
            if name in self._input_set:
                value = pattern.bit(self.circuit.inputs.index(name))
            else:
                gate = self.circuit.gates[name]
                if gate.gtype is GateType.CONST0:
                    value = 0
                elif gate.gtype is GateType.CONST1:
                    value = 1
                else:
                    fanin_values = [
                        self._read(values, gate.name, pin, net, fault)
                        for pin, net in enumerate(gate.fanins)
                    ]
                    value = eval_gate_bool(gate.gtype, fanin_values)
            if fault is not None and not fault.site.is_branch and fault.site.net == name:
                value = fault.value
            values[name] = value
        return values

    def outputs(self, pattern: BitVector, fault: Fault | None = None) -> BitVector:
        """Primary output vector for ``pattern`` (bit ``k`` = output ``k``)."""
        values = self.node_values(pattern, fault)
        return BitVector.from_bits([values[net] for net in self.circuit.outputs])

    def detects(self, pattern: BitVector, fault: Fault) -> bool:
        """True iff ``pattern`` detects ``fault`` at some primary output."""
        return self.outputs(pattern) != self.outputs(pattern, fault)

    def detected_set(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> set[Fault]:
        """All faults detected by at least one pattern (quadratic; tests only)."""
        good = [self.outputs(p) for p in patterns]
        result: set[Fault] = set()
        for fault in faults:
            for pattern, good_output in zip(patterns, good):
                if self.outputs(pattern, fault) != good_output:
                    result.add(fault)
                    break
        return result

    def _read(
        self,
        values: Mapping[str, int],
        gate_name: str,
        pin: int,
        net: str,
        fault: Fault | None,
    ) -> int:
        if (
            fault is not None
            and fault.site.is_branch
            and fault.site.gate == gate_name
            and fault.site.pin == pin
            and fault.site.net == net
        ):
            return fault.value
        return values[net]
