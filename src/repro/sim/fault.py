"""Parallel-pattern stuck-at fault simulation.

Two engines live here and in :mod:`repro.sim.batch`:

* :class:`FaultSimulator` — the production engine, a thin compatibility
  wrapper over :class:`repro.sim.batch.BatchFaultSimulator`.  Faults are
  simulated in batches: the faulty values of every node a batch touches
  are stacked along a fault axis into ``(batch, n_words)`` ``uint64``
  arrays (64 patterns per word, pattern ``64*w + b`` in bit ``b`` of
  word ``w``), and the whole batch propagates through one shared,
  levelized cone-union schedule.  The any-pattern queries
  (``detected`` / ``first_detection_index`` / ``fault_coverage``)
  additionally apply **fault dropping**: the pattern set is scanned in
  word-aligned windows and a fault detected in an early window leaves
  the active set, so it never pays for the remaining patterns.
* :class:`SerialFaultSimulator` — the legacy per-fault engine: for each
  fault it forces the stuck value at the fault site and re-evaluates
  only that fault's output cone, one Python-level gate evaluation per
  cone node.  It is kept as the obviously-correct baseline for the
  differential test suite and the throughput benchmarks.

A fault is detected by pattern ``p`` when any primary output differs
from the fault-free value under ``p``.  Both engines fill the paper's
Detection Matrix: ``d[i][j] = 1`` iff triplet ``i``'s test set detects
fault ``j`` (Section 3), and implement the fault grading inside ATPG,
GATSBY and the trade-off explorer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.gates import eval_gate_words
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.logic import CompiledCircuit, tail_mask
from repro.utils.bitvec import BitVector, pack_patterns

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class FaultSimulator(BatchFaultSimulator):
    """The default fault simulator bound to one circuit.

    A thin compatibility wrapper over
    :class:`repro.sim.batch.BatchFaultSimulator` — every historical call
    site (``detection_matrix`` / ``detected`` / ``first_detection_index``
    / ``fault_coverage``) keeps its exact signature and semantics while
    running on the batched engine.
    """


class SerialFaultSimulator:
    """The legacy per-fault PPSFP engine (reference baseline).

    The compiled circuit and per-fault cone structures are cached, so
    repeated calls only pay for simulation.  Each fault walks its own
    output cone with one Python-level gate evaluation per cone node —
    simple and obviously correct, which is exactly what the differential
    suite and the throughput benchmarks need it for.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.compiled = CompiledCircuit(circuit)
        self.circuit = circuit
        self._cone_cache: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def detection_matrix(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> np.ndarray:
        """Boolean matrix ``(n_patterns, n_faults)``: entry ``[p, f]`` is
        True iff pattern ``p`` detects fault ``f``."""
        if not patterns:
            return np.zeros((0, len(faults)), dtype=bool)
        good = self._good_values(patterns)
        result = np.zeros((len(patterns), len(faults)), dtype=bool)
        for fault_index, fault in enumerate(faults):
            detect_words = self._detect_words(good, fault)
            result[:, fault_index] = _words_to_bools(detect_words, len(patterns))
        return result

    def detected(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> list[bool]:
        """Per-fault flag: does *any* pattern detect the fault?"""
        if not patterns:
            return [False] * len(faults)
        good = self._good_values(patterns)
        mask = tail_mask(len(patterns))
        flags: list[bool] = []
        for fault in faults:
            detect_words = self._detect_words(good, fault)
            flags.append(bool(np.any(detect_words & mask)))
        return flags

    def first_detection_index(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> list[int | None]:
        """For each fault, the index of the first detecting pattern
        (``None`` if undetected).  Used for test-set trimming."""
        if not patterns:
            return [None] * len(faults)
        good = self._good_values(patterns)
        mask = tail_mask(len(patterns))
        indices: list[int | None] = []
        for fault in faults:
            detect_words = self._detect_words(good, fault) & mask
            position: int | None = None
            for word_index in range(detect_words.shape[0]):
                word = int(detect_words[word_index])
                if word:
                    position = word_index * 64 + (word & -word).bit_length() - 1
                    break
            indices.append(position)
        return indices

    def fault_coverage(
        self, patterns: Sequence[BitVector], faults: Sequence[Fault]
    ) -> float:
        """Fraction of ``faults`` detected by ``patterns`` (0..1)."""
        if not faults:
            return 1.0
        flags = self.detected(patterns, faults)
        return sum(flags) / len(faults)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _good_values(self, patterns: Sequence[BitVector]) -> np.ndarray:
        input_words = pack_patterns(list(patterns), self.compiled.n_inputs)
        return self.compiled.simulate_words(input_words)

    def _cone(self, node_id: int) -> list[int]:
        cone = self._cone_cache.get(node_id)
        if cone is None:
            cone = self.compiled.output_cone_ids(node_id)
            self._cone_cache[node_id] = cone
        return cone

    def _detect_words(self, good: np.ndarray, fault: Fault) -> np.ndarray:
        """Word array: bit set where some PO differs from fault-free."""
        compiled = self.compiled
        n_words = good.shape[1]
        stuck_words = (
            np.full(n_words, _ALL_ONES, dtype=np.uint64)
            if fault.value
            else np.zeros(n_words, dtype=np.uint64)
        )
        faulty: dict[int, np.ndarray] = {}
        site = fault.site
        net_id = compiled.index[site.net]
        if site.is_branch:
            # Only `site.gate` sees the stuck value; recompute it and its cone.
            gate_id = compiled.index[site.gate]
            fanins = compiled.gate_fanins[gate_id]
            fanin_words = [
                stuck_words if pin == site.pin else good[fanin_id]
                for pin, fanin_id in enumerate(fanins)
            ]
            faulty[gate_id] = eval_gate_words(
                compiled.gate_types[gate_id], fanin_words
            )
            cone = self._cone(gate_id)
        else:
            faulty[net_id] = stuck_words
            cone = self._cone(net_id)
        for cone_id in cone:
            if cone_id in faulty:
                continue  # branch-injected gate already evaluated
            gtype = compiled.gate_types[cone_id]
            fanin_words = [
                faulty.get(fanin_id, good[fanin_id])
                for fanin_id in compiled.gate_fanins[cone_id]
            ]
            new_words = eval_gate_words(gtype, fanin_words)
            faulty[cone_id] = new_words
        detect = np.zeros(n_words, dtype=np.uint64)
        for output_id in compiled.output_ids:
            output_faulty = faulty.get(int(output_id))
            if output_faulty is not None:
                detect |= output_faulty ^ good[output_id]
        return detect


def detected_faults(
    circuit: Circuit, patterns: Sequence[BitVector], faults: Sequence[Fault]
) -> set[Fault]:
    """One-shot convenience: the subset of ``faults`` detected by
    ``patterns`` on ``circuit``."""
    simulator = FaultSimulator(circuit)
    flags = simulator.detected(patterns, faults)
    return {fault for fault, flag in zip(faults, flags) if flag}


def _words_to_bools(words: np.ndarray, n_patterns: int) -> np.ndarray:
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_patterns].astype(bool)
