"""Bit-parallel true-value logic simulation.

A :class:`CompiledCircuit` lowers the string-keyed :class:`Circuit` to
integer arrays once; simulation then evaluates 64 patterns per
``uint64`` word with numpy bitwise ops.

The compiler is *levelized*: gates are grouped by topological level and,
within a level, by (gate type, fanin arity).  Each group is evaluated
with a single fancy-indexed gather plus one reduction over the fanin
axis (:func:`repro.circuit.gates.reduce_gate_words`), so simulation cost
is a handful of numpy calls per level instead of one Python-level gate
evaluation (and fanin list build) per node.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.gates import GateType, reduce_gate_planes, reduce_gate_words
from repro.circuit.netlist import Circuit
from repro.utils.bitvec import (
    WORD_BITS,
    BitVector,
    PackedPatterns,
    PackedPlanes,
    as_packed,
    n_words_for,
    tail_mask,
    unpack_words,
)

__all__ = [
    "CompiledCircuit",
    "simulate_patterns",
    "n_words_for",
    "tail_mask",
    "WORD_BITS",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class CompiledCircuit:
    """A circuit lowered for fast repeated simulation.

    Attributes of interest:

    * ``order`` — node names in topological order;
    * ``index`` — name -> dense node id (ids follow ``order``);
    * ``gate_types`` / ``gate_fanins`` — per-node gate type and fanin ids
      (sources have empty fanins).
    """

    def __init__(self, circuit: Circuit) -> None:
        if circuit.is_sequential():
            raise ValueError(
                f"circuit {circuit.name!r} is sequential; take full_scan_view() first"
            )
        self.circuit = circuit
        self.order: list[str] = circuit.topo_order()
        self.index: dict[str, int] = {name: i for i, name in enumerate(self.order)}
        self.n_nodes = len(self.order)
        self.input_ids = np.array(
            [self.index[name] for name in circuit.inputs], dtype=np.int64
        )
        self.output_ids = np.array(
            [self.index[name] for name in circuit.outputs], dtype=np.int64
        )
        self.gate_types: list[GateType] = []
        self.gate_fanins: list[tuple[int, ...]] = []
        input_set = set(circuit.inputs)
        for name in self.order:
            if name in input_set:
                self.gate_types.append(GateType.INPUT)
                self.gate_fanins.append(())
            else:
                gate = circuit.gates[name]
                self.gate_types.append(gate.gtype)
                self.gate_fanins.append(
                    tuple(self.index[f] for f in gate.fanins)
                )
        # Fanout adjacency in dense ids (for cone walks in the fault sim).
        fanout: list[list[int]] = [[] for _ in range(self.n_nodes)]
        for node_id, fanins in enumerate(self.gate_fanins):
            for fanin_id in fanins:
                fanout[fanin_id].append(node_id)
        self.fanout_ids: list[tuple[int, ...]] = [tuple(f) for f in fanout]
        # Topological levels: sources at 0, gates at 1 + max(fanin level).
        levels = np.zeros(self.n_nodes, dtype=np.int64)
        for node_id, fanins in enumerate(self.gate_fanins):
            if fanins:
                levels[node_id] = 1 + max(int(levels[f]) for f in fanins)
        self.node_levels: np.ndarray = levels
        self._build_eval_plan()

    def _build_eval_plan(self) -> None:
        """Group gates by (level, type, arity) into vectorised eval groups."""
        const0: list[int] = []
        const1: list[int] = []
        grouped: dict[tuple[int, GateType, int], tuple[list[int], list[tuple[int, ...]]]] = {}
        for node_id, gtype in enumerate(self.gate_types):
            if gtype is GateType.INPUT:
                continue
            if gtype is GateType.CONST0:
                const0.append(node_id)
                continue
            if gtype is GateType.CONST1:
                const1.append(node_id)
                continue
            fanins = self.gate_fanins[node_id]
            key = (int(self.node_levels[node_id]), gtype, len(fanins))
            outs, fins = grouped.setdefault(key, ([], []))
            outs.append(node_id)
            fins.append(fanins)
        self.const0_ids = np.array(const0, dtype=np.int64)
        self.const1_ids = np.array(const1, dtype=np.int64)
        #: Level-ordered eval groups: (gate type, output ids, fanin id matrix).
        self.eval_groups: list[tuple[GateType, np.ndarray, np.ndarray]] = []
        #: The same groups keyed by topological level — the *levelized
        #: plan*.  Consumers that must interleave per-level work with the
        #: sweep (the batch PODEM re-asserts per-lane fault forcings
        #: after each level, mirroring the fault simulator's
        #: ``_BatchPlan``) walk this instead of ``eval_groups``.
        self.eval_levels: list[
            tuple[int, list[tuple[GateType, np.ndarray, np.ndarray]]]
        ] = []
        by_level: dict[int, list[tuple[GateType, np.ndarray, np.ndarray]]] = {}
        for level, gtype, arity in sorted(grouped, key=lambda k: k[0]):
            group = (
                gtype,
                np.array(grouped[(level, gtype, arity)][0], dtype=np.int64),
                np.array(grouped[(level, gtype, arity)][1], dtype=np.int64),
            )
            self.eval_groups.append(group)
            by_level.setdefault(level, []).append(group)
        self.eval_levels = sorted(by_level.items())

    @property
    def n_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.input_ids)

    @property
    def n_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.output_ids)

    def simulate_words(
        self, input_words: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Simulate packed input words.

        ``input_words`` has shape ``(n_inputs, n_words)``; the result has
        shape ``(n_nodes, n_words)`` and holds every node's value words
        (node id order).  ``out`` optionally supplies a preallocated
        result buffer of the right shape (callers that simulate in a loop
        reuse one buffer instead of reallocating per call).
        """
        if input_words.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input rows, got {input_words.shape[0]}"
            )
        n_words = input_words.shape[1]
        if out is not None:
            if out.shape != (self.n_nodes, n_words) or out.dtype != np.uint64:
                raise ValueError(
                    f"out buffer must be uint64 {(self.n_nodes, n_words)}, "
                    f"got {out.dtype} {out.shape}"
                )
            values = out
        else:
            values = np.empty((self.n_nodes, n_words), dtype=np.uint64)
        values[self.input_ids, :] = input_words
        if self.const0_ids.size:
            values[self.const0_ids, :] = 0
        if self.const1_ids.size:
            values[self.const1_ids, :] = _ALL_ONES
        for gtype, out_ids, fanin_matrix in self.eval_groups:
            # Gather shape: (group size, arity, n_words); reduce the
            # fanin axis with the group's gate function.
            values[out_ids, :] = reduce_gate_words(
                gtype, values[fanin_matrix], axis=1
            )
        return values

    def simulate_planes(
        self, input_value: np.ndarray, input_care: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Three-valued simulation over packed value/care planes.

        ``input_value`` / ``input_care`` have shape
        ``(n_inputs, n_words)`` with the invariant ``v & ~c == 0``
        (see :class:`~repro.utils.bitvec.PackedPlanes`); the result is
        the ``(n_nodes, n_words)`` plane pair for every node.  The walk
        is the same levelized eval plan as :meth:`simulate_words`, with
        :func:`~repro.circuit.gates.reduce_gate_planes` as the group
        reducer — on all-care input the value plane is bit-identical to
        the 2-valued simulation (the differential suite pins this).
        """
        if input_value.shape != input_care.shape:
            raise ValueError(
                f"plane shapes differ: {input_value.shape} vs {input_care.shape}"
            )
        if input_value.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input rows, got {input_value.shape[0]}"
            )
        n_words = input_value.shape[1]
        values = np.empty((self.n_nodes, n_words), dtype=np.uint64)
        cares = np.empty((self.n_nodes, n_words), dtype=np.uint64)
        values[self.input_ids, :] = input_value
        cares[self.input_ids, :] = input_care
        # Constants are always known, whatever the inputs carry.
        if self.const0_ids.size:
            values[self.const0_ids, :] = 0
            cares[self.const0_ids, :] = _ALL_ONES
        if self.const1_ids.size:
            values[self.const1_ids, :] = _ALL_ONES
            cares[self.const1_ids, :] = _ALL_ONES
        for gtype, out_ids, fanin_matrix in self.eval_groups:
            out_v, out_c = reduce_gate_planes(
                gtype, values[fanin_matrix], cares[fanin_matrix], axis=1
            )
            values[out_ids, :] = out_v
            cares[out_ids, :] = out_c
        return values, cares

    def simulate_planes_packed(self, planes: PackedPlanes) -> PackedPlanes:
        """Three-valued simulation of a :class:`~repro.utils.bitvec.
        PackedPlanes` carrier; returns the primary-output planes (row
        ``k`` = ``circuit.outputs[k]``)."""
        if planes.width != self.n_inputs:
            raise ValueError(
                f"planes have width {planes.width}, expected {self.n_inputs}"
            )
        values, cares = self.simulate_planes(planes.value, planes.care)
        mask = planes.tail_mask()
        return PackedPlanes(
            values[self.output_ids, :] & mask,
            cares[self.output_ids, :] & mask,
            planes.n_patterns,
        )

    def simulate_patterns(
        self, patterns: Sequence[BitVector] | PackedPatterns
    ) -> list[BitVector]:
        """Simulate individual patterns; returns one output vector per
        pattern (bit ``k`` = value of ``circuit.outputs[k]``).

        Accepts a plain sequence (packed here) or an already-packed
        :class:`~repro.utils.bitvec.PackedPatterns`.
        """
        if not len(patterns):
            return []
        packed = as_packed(patterns, self.n_inputs)
        values = self.simulate_words(packed.words)
        output_words = values[self.output_ids, :]
        return unpack_words(output_words, packed.n_patterns)

    def output_cone_ids(self, node_id: int) -> list[int]:
        """Transitive fanout of ``node_id`` in topological order,
        excluding ``node_id`` itself."""
        in_cone = np.zeros(self.n_nodes, dtype=bool)
        frontier = [node_id]
        members: list[int] = []
        while frontier:
            current = frontier.pop()
            for fanout_id in self.fanout_ids[current]:
                if not in_cone[fanout_id]:
                    in_cone[fanout_id] = True
                    members.append(fanout_id)
                    frontier.append(fanout_id)
        members.sort()
        return members


def simulate_patterns(
    circuit: Circuit, patterns: Sequence[BitVector]
) -> list[BitVector]:
    """One-shot convenience wrapper around :class:`CompiledCircuit`."""
    return CompiledCircuit(circuit).simulate_patterns(patterns)


# ``n_words_for`` / ``tail_mask`` live in :mod:`repro.utils.bitvec`
# (next to the packing they describe) and are re-exported here for the
# simulator-facing import path.
