"""Three-valued (0/1/X) word-parallel fault simulation.

The 2-valued engines assume every net is a known 0 or 1 — true for the
paper's fully scanned, deterministic world, false the moment a circuit
has unscanned state, bus contention, or an uninitialised RAM output.
This module runs the same batched PPSFP machinery with **unknowns**:

* patterns are :class:`~repro.utils.bitvec.PackedPlanes` — two ``uint64``
  bit-planes per signal (value + care), pattern ``64*w + k`` at bit ``k``
  of word ``w``, the exact lane layout of the 2-valued packing;
* true-value simulation walks the one levelized eval plan that
  :meth:`~repro.sim.logic.CompiledCircuit.simulate_words` uses, with the
  plane algebra (:func:`~repro.circuit.gates.reduce_gate_planes`) as the
  group reducer;
* detection is **pessimistic**: a fault counts as detected by a pattern
  only where the good and faulty machines are both *known* and differ —
  an X on either side would mask at the compactor, so it never counts.
  Hence 3-valued coverage ≤ 2-valued coverage, with bit-identical
  equality on X-free input (the differential suite pins both).

:class:`XFaultSimulator` subclasses the 2-valued
:class:`~repro.sim.batch.BatchFaultSimulator` and re-routes the three
query paths (window scans, full matrix, streamed matrix rows) through
:meth:`~repro.sim.batch._BatchPlan.detect_planes`; everything structural
— cone unions, plan caching/subsetting, fault dropping, batching — is
inherited unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.circuit.gates import eval_gate_3v_scalar
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator, _BatchPlan
from repro.sim.logic import CompiledCircuit
from repro.utils.bitvec import PackedPlanes, PlanesLike, as_planes
from repro.utils.kernels import kernel

__all__ = ["XFaultSimulator", "logic_sim_3v", "logic_sim_3v_scalar"]


def logic_sim_3v(circuit: Circuit, planes: PlanesLike) -> PackedPlanes:
    """Three-valued true-value simulation; returns the primary-output
    planes (row ``k`` = ``circuit.outputs[k]``).

    One-shot convenience over
    :meth:`~repro.sim.logic.CompiledCircuit.simulate_planes_packed`;
    accepts anything :func:`~repro.utils.bitvec.as_planes` does — X-free
    2-valued patterns pass through with care = all ones, and the value
    plane then matches the 2-valued engine bit for bit.
    """
    compiled = CompiledCircuit(circuit)
    return compiled.simulate_planes_packed(as_planes(planes, circuit.n_inputs))


def logic_sim_3v_scalar(circuit: Circuit, codes: np.ndarray) -> np.ndarray:
    """Scalar three-valued oracle: one gate evaluation at a time.

    ``codes`` has shape ``(n_inputs, n_patterns)`` over 0/1/2 (2 = X);
    the result has shape ``(n_outputs, n_patterns)``.  Deliberately a
    per-pattern Python topological walk over
    :func:`~repro.circuit.gates.eval_gate_3v_scalar` — the
    from-the-definition reference the differential suite (and the
    throughput floor) pins :func:`logic_sim_3v` against.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 2 or codes.shape[0] != circuit.n_inputs:
        raise ValueError(
            f"codes must be (n_inputs, n_patterns) = ({circuit.n_inputs}, *), "
            f"got {codes.shape}"
        )
    n_patterns = codes.shape[1]
    out = np.empty((circuit.n_outputs, n_patterns), dtype=np.uint8)
    topo = circuit.topo_order()
    input_index = {name: i for i, name in enumerate(circuit.inputs)}
    for p in range(n_patterns):
        values: dict[str, int] = {
            name: int(codes[i, p]) for name, i in input_index.items()
        }
        for name in topo:
            if name in values:
                continue
            gate = circuit.gates[name]
            values[name] = eval_gate_3v_scalar(
                gate.gtype, [values[f] for f in gate.fanins]
            )
        for k, name in enumerate(circuit.outputs):
            out[k, p] = values[name]
    return out


class XFaultSimulator(BatchFaultSimulator):
    """Batched stuck-at fault simulator with three-valued patterns.

    Drop-in for :class:`~repro.sim.fault.FaultSimulator` wherever the
    stimulus may carry X: every query (``detection_matrix`` /
    ``detected`` / ``first_detection_index`` / ``fault_coverage`` /
    ``detection_matrix_rows``) keeps its signature but accepts
    :data:`~repro.utils.bitvec.PlanesLike` patterns — plain 2-valued
    patterns are lifted to all-care planes, and on such input every
    result is bit-identical to the 2-valued engine's.
    """

    # ------------------------------------------------------------------
    # three-valued true-value simulation
    # ------------------------------------------------------------------

    @kernel
    def _good_planes(self, planes: PackedPlanes) -> tuple[np.ndarray, np.ndarray]:
        self.words_simulated += planes.n_words
        return self.compiled.simulate_planes(planes.value, planes.care)

    # ------------------------------------------------------------------
    # query-path overrides (plane-algebra detection)
    # ------------------------------------------------------------------

    def detection_matrix(
        self, patterns: PlanesLike, faults: Sequence[Fault]
    ) -> np.ndarray:
        """Boolean matrix ``(n_patterns, n_faults)``: entry ``[p, f]`` is
        True iff pattern ``p`` detects fault ``f`` on a *known* output
        bit of both machines."""
        planes = as_planes(patterns, self.compiled.n_inputs)
        result = np.zeros((planes.n_patterns, len(faults)), dtype=bool)
        if not planes.n_patterns or not faults:
            return result
        good_v, good_c = self._good_planes(planes)
        column = 0
        for batch in self._batches(faults):
            detect = self._plan(batch).detect_planes(good_v, good_c)
            bits = np.unpackbits(
                np.ascontiguousarray(detect).view(np.uint8).reshape(len(batch), -1),
                axis=1,
                bitorder="little",
            )
            result[:, column : column + len(batch)] = (
                bits[:, : planes.n_patterns].astype(bool).T
            )
            column += len(batch)
        return result

    def _scan_detections(
        self, patterns: PlanesLike, faults: Sequence[Fault]
    ) -> Iterator[tuple[int, int]]:
        """Plane-algebra twin of the base window scan: same fault
        dropping, same plan subsetting, detection via
        :meth:`~repro.sim.batch._BatchPlan.detect_planes`."""
        planes = as_planes(patterns, self.compiled.n_inputs)
        if not planes.n_patterns or not faults:
            return
        good_v, good_c = self._good_planes(planes)
        n_words = good_v.shape[1]
        mask = planes.tail_mask()
        states: list[tuple[list[int], _BatchPlan]] = []
        for start in range(0, len(faults), self.batch_size):
            indices = list(range(start, min(start + self.batch_size, len(faults))))
            states.append(
                (indices, self._plan(tuple(faults[i] for i in indices)))
            )
        for word_start in range(0, n_words, self.drop_window_words):
            if not states:
                return
            word_end = min(word_start + self.drop_window_words, n_words)
            last_window = word_end >= n_words
            window_v = np.ascontiguousarray(good_v[:, word_start:word_end])
            window_c = np.ascontiguousarray(good_c[:, word_start:word_end])
            window_mask = mask[word_start:word_end]
            next_states: list[tuple[list[int], _BatchPlan]] = []
            for indices, plan in states:
                detect = plan.detect_planes(window_v, window_c) & window_mask
                hits = detect.any(axis=1)
                surviving_rows: list[int] = []
                for row, fault_index in enumerate(indices):
                    if not hits[row]:
                        surviving_rows.append(row)
                        continue
                    words = detect[row]
                    word_offset = int(np.flatnonzero(words)[0])
                    word = int(words[word_offset])
                    self.faults_dropped += 1
                    yield fault_index, (
                        (word_start + word_offset) * 64
                        + (word & -word).bit_length()
                        - 1
                    )
                if last_window or not surviving_rows:
                    continue
                if len(surviving_rows) < len(indices):
                    plan = plan.subset(surviving_rows)
                    self.plan_subsets += 1
                    indices = [indices[row] for row in surviving_rows]
                next_states.append((indices, plan))
            states = next_states

    def detection_matrix_rows(
        self,
        pattern_sets: Iterable[PlanesLike],
        faults: Sequence[Fault],
        row_chunk_words: int | None = None,
    ) -> Iterator[np.ndarray]:
        """Stream Detection Matrix rows over three-valued pattern sets.

        Same word-budgeted chunking as the 2-valued engine — rows pack
        word-aligned into one combined pattern axis, both planes of the
        fault-free state simulate once per chunk — with plane-algebra
        detection per fault batch.
        """
        faults = list(faults)
        budget = (
            self.row_chunk_words if row_chunk_words is None else row_chunk_words
        )
        if budget < 1:
            raise ValueError(f"row_chunk_words must be >= 1, got {budget}")
        batches = list(self._batches(faults))
        plans = [self._plan(batch) for batch in batches]
        chunk: list[PackedPlanes] = []
        chunk_words = 0
        for patterns in pattern_sets:
            planes = as_planes(patterns, self.compiled.n_inputs)
            chunk.append(planes)
            chunk_words += planes.n_words
            if chunk_words >= budget:
                yield from self._plane_row_chunk(chunk, len(faults), batches, plans)
                chunk, chunk_words = [], 0
        if chunk:
            yield from self._plane_row_chunk(chunk, len(faults), batches, plans)

    def _plane_row_chunk(
        self,
        chunk: list[PackedPlanes],
        n_faults: int,
        batches: list[tuple[Fault, ...]],
        plans: list[_BatchPlan],
    ) -> Iterator[np.ndarray]:
        """Simulate one word-aligned chunk of plane rows together and
        yield its per-row detection rows in order."""
        rows = np.zeros((len(chunk), n_faults), dtype=bool)
        starts: list[int] = []
        row_of_segment: list[int] = []
        offset = 0
        for row_index, planes in enumerate(chunk):
            if planes.n_words:
                starts.append(offset)
                row_of_segment.append(row_index)
                offset += planes.n_words
        if offset and n_faults:
            pieces = [p for p in chunk if p.n_words]
            if len(pieces) == 1:
                combined = PackedPlanes(
                    pieces[0].value, pieces[0].care, offset * 64
                )
                mask = pieces[0].tail_mask()
            else:
                combined = PackedPlanes(
                    np.concatenate([p.value for p in pieces], axis=1),
                    np.concatenate([p.care for p in pieces], axis=1),
                    offset * 64,
                )
                mask = np.concatenate([p.tail_mask() for p in pieces])
            good_v, good_c = self._good_planes(combined)
            segment_starts = np.array(starts, dtype=np.int64)
            column = 0
            for batch, plan in zip(batches, plans):
                hits = plan.detect_planes(good_v, good_c) & mask
                reduced = np.bitwise_or.reduceat(hits, segment_starts, axis=1)
                rows[row_of_segment, column : column + len(batch)] = (
                    reduced != 0
                ).T
                column += len(batch)
        for row in rows:
            yield row.copy()
