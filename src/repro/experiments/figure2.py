"""Figure 2 — "Trade-off Reseedings vs. Test Length".

Sweeps the evolution length T for one circuit/TPG (the paper uses s1238
on the adder accumulator) and reports the resulting (#Triplets, Test
Length) pairs.  Paper shape: starting from a test length of 5,427 with
11 triplets, pushing the test length to 15,551 brings the count down to
2 — a monotone trade between ROM area and test time.

Run: ``python -m repro.experiments.figure2 [--circuit s1238] [--tpg adder]``
"""

from __future__ import annotations

import argparse

from repro.circuits import load_circuit
from repro.flow.pipeline import PipelineConfig
from repro.flow.tradeoff import TradeoffPoint, explore_tradeoff
from repro.utils.tables import AsciiTable, render_series

#: Default T ladder (powers of two keep word-parallel simulation tidy).
DEFAULT_LENGTHS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256)


def compute_figure2(
    circuit_name: str = "s1238",
    tpg_name: str = "adder",
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    scale: float = 0.25,
    seed: int = 2001,
    cache: str | None = None,
) -> list[TradeoffPoint]:
    """Regenerate Figure 2's sweep for one circuit/TPG.

    ``cache`` names an artifact-cache directory; warm re-runs then skip
    ATPG (and any already-swept T points) entirely.
    """
    circuit = load_circuit(circuit_name, scale=scale)
    config = PipelineConfig(seed=seed, max_random_patterns=1024)
    from repro.flow.session import ArtifactCache

    return explore_tradeoff(
        circuit,
        tpg_name,
        list(lengths),
        config=config,
        cache=ArtifactCache(cache) if cache else None,
    )


def render_figure2(points: list[TradeoffPoint]) -> str:
    """An ASCII rendition: the data table plus the trade-off curve."""
    table = AsciiTable(
        ["evolution length T", "#Triplets", "Test Length"],
        title="Figure 2: Trade-off Reseedings vs. Test Length",
    )
    for point in points:
        table.add_row([point.evolution_length, point.n_triplets, point.test_length])
    curve = render_series(
        [float(p.test_length) for p in points],
        [float(p.n_triplets) for p in points],
        x_label="Test Length",
        y_label="#Triplets",
    )
    return table.render() + "\n\n" + curve


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="s1238", help="circuit name")
    parser.add_argument("--tpg", default="adder", help="TPG name")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=2001)
    parser.add_argument(
        "--lengths",
        nargs="+",
        type=int,
        default=list(DEFAULT_LENGTHS),
        help="evolution lengths to sweep",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="artifact-cache directory (warm runs skip ATPG)",
    )
    args = parser.parse_args(argv)
    points = compute_figure2(
        circuit_name=args.circuit,
        tpg_name=args.tpg,
        lengths=tuple(args.lengths),
        scale=args.scale,
        seed=args.seed,
        cache=args.cache,
    )
    print(render_figure2(points))


if __name__ == "__main__":
    main()
