"""Table 2 — "Set Covering algorithm".

Per circuit: the initial Detection Matrix size (#Triplets x #Faults,
#Triplets = the ATPG test length); per TPG: the necessary (essential)
triplet count, the matrix size after essentiality + dominance reduction,
and the number of triplets the exact solver (LINGO stand-in) adds.  The
paper's observations to reproduce:

* reduction is highly effective — the reduced matrix is tiny or empty;
* on several circuits the matrix empties: the solution is necessary
  triplets only;
* on others the solver contributes the remainder (possibly with no
  necessary triplets at all).

Run: ``python -m repro.experiments.table2 [--scale 0.25] [--full]``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    CircuitWorkspace,
    ExperimentConfig,
    config_from_args,
    make_arg_parser,
    prepare_workspaces,
)
from repro.flow.sweep import sweep
from repro.tpg.registry import PAPER_TPGS
from repro.utils.tables import AsciiTable


@dataclass
class Table2Cell:
    """Reduction statistics for one circuit x TPG."""

    n_necessary: int
    reduced_shape: tuple[int, int]
    n_solver: int

    @property
    def closed_by_reduction(self) -> bool:
        """True when reduction alone solved the instance."""
        return self.reduced_shape == (0, 0)


@dataclass
class Table2Row:
    """Initial matrix size plus per-TPG reduction cells."""

    circuit: str
    initial_shape: tuple[int, int]
    cells: dict[str, Table2Cell]


def compute_table2(
    config: ExperimentConfig,
    workspaces: dict[str, CircuitWorkspace] | None = None,
) -> list[Table2Row]:
    """Regenerate Table 2's data for ``config.circuits``.

    Like Table 1, a thin client of :func:`repro.flow.sweep.sweep` over
    shared per-circuit sessions.
    """
    if workspaces is None:
        workspaces = prepare_workspaces(config)
    grid = sweep(
        list(config.circuits),
        list(PAPER_TPGS),
        configs=[config.pipeline_config()],
        sessions=workspaces,
        scale=config.scale,
    )
    rows: list[Table2Row] = []
    for name in config.circuits:
        cells: dict[str, Table2Cell] = {}
        initial_shape = (0, 0)
        for tpg_name in PAPER_TPGS:
            pipeline = grid.get(name, tpg_name).result
            initial_shape = pipeline.detection_matrix.shape
            cells[tpg_name] = Table2Cell(
                n_necessary=pipeline.n_necessary,
                reduced_shape=pipeline.reduced_shape,
                n_solver=pipeline.n_from_solver,
            )
        rows.append(Table2Row(name, initial_shape, cells))
    return rows


def render_table2(rows: list[Table2Row]) -> AsciiTable:
    """Format the rows the way the paper's Table 2 lays them out."""
    headers = ["circuit", "initial matrix"]
    for tpg_name in PAPER_TPGS:
        headers += [
            f"{tpg_name} necessary",
            f"{tpg_name} reduced",
            f"{tpg_name} LINGO",
        ]
    table = AsciiTable(headers, title="Table 2: Set covering algorithm")
    for row in rows:
        cells: list[object] = [
            row.circuit,
            f"{row.initial_shape[0]}x{row.initial_shape[1]}",
        ]
        for tpg_name in PAPER_TPGS:
            cell = row.cells[tpg_name]
            reduced = (
                "empty"
                if cell.closed_by_reduction
                else f"{cell.reduced_shape[0]}x{cell.reduced_shape[1]}"
            )
            cells += [cell.n_necessary, reduced, cell.n_solver]
        table.add_row(cells)
    return table


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = make_arg_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)
    config = config_from_args(args)
    rows = compute_table2(config)
    table = render_table2(rows)
    print(table.render_csv() if args.csv else table.render())
    closed = sum(
        1 for row in rows for cell in row.cells.values() if cell.closed_by_reduction
    )
    total = sum(len(row.cells) for row in rows)
    print(
        f"\nreduction closed {closed}/{total} instances outright "
        "(solution = necessary triplets only)"
    )


if __name__ == "__main__":
    main()
