"""Experiment drivers regenerating the paper's tables and figures.

Each module is runnable (``python -m repro.experiments.table1``) and
exposes a ``compute_*`` function the benchmark harness reuses.

=============  =====================================================
module         regenerates
=============  =====================================================
``table1``     Table 1 — reseeding solutions vs the GATSBY baseline
``table2``     Table 2 — Detection Matrix reduction statistics
``figure2``    Figure 2 — reseedings vs test length trade-off
=============  =====================================================

All drivers run on the synthetic ISCAS-sized stand-ins (see DESIGN.md);
``--scale`` trades fidelity for runtime (1.0 = full ISCAS sizes).
"""

from repro.experiments.common import ExperimentConfig, CircuitWorkspace

__all__ = ["CircuitWorkspace", "ExperimentConfig"]
