"""Table 1 — "Reseeding solution".

For every circuit and every accumulator TPG (adder, multiplier,
subtracter): the set-covering solution's triplet count and global test
length, side by side with the GATSBY GA baseline.  The paper's headline:
the set-covering approach needs fewer triplets than GATSBY on nearly
every circuit/TPG (improvements of 2 to 25 triplets) and handles
circuits GATSBY cannot (s13207, s15850 — rendered as "-" cells).

Run: ``python -m repro.experiments.table1 [--scale 0.25] [--full]``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    CircuitWorkspace,
    ExperimentConfig,
    config_from_args,
    make_arg_parser,
    prepare_workspaces,
)
from repro.flow.sweep import sweep
from repro.tpg.registry import PAPER_TPGS
from repro.utils.tables import AsciiTable


@dataclass
class Table1Cell:
    """One circuit x TPG comparison.

    The set-covering side always reaches 100% coverage of the target
    fault list ``F`` (by construction); the GA baseline may stall below
    it — ``gatsby_coverage`` records what it actually achieved, since a
    smaller triplet count at lower coverage is not a win.
    """

    n_triplets: int
    test_length: int
    gatsby_triplets: int | None
    gatsby_test_length: int | None
    gatsby_coverage: float | None = None

    @property
    def gatsby_complete(self) -> bool:
        """True when the baseline matched the 100% coverage target."""
        return self.gatsby_coverage is not None and self.gatsby_coverage >= 1.0

    @property
    def improvement(self) -> int | None:
        """GATSBY triplets minus ours (positive = we win), None when the
        baseline could not run."""
        if self.gatsby_triplets is None:
            return None
        return self.gatsby_triplets - self.n_triplets


@dataclass
class Table1Row:
    """All TPG cells for one circuit."""

    circuit: str
    cells: dict[str, Table1Cell]


def compute_table1(
    config: ExperimentConfig,
    workspaces: dict[str, CircuitWorkspace] | None = None,
) -> list[Table1Row]:
    """Regenerate Table 1's data for ``config.circuits``.

    A thin client of :func:`repro.flow.sweep.sweep`: the set-covering
    cells come from one circuits x TPGs grid over shared sessions; only
    the GATSBY baseline (not a flow stage) runs outside the sweep.
    """
    if workspaces is None:
        workspaces = prepare_workspaces(config)
    grid = sweep(
        list(config.circuits),
        list(PAPER_TPGS),
        configs=[config.pipeline_config()],
        sessions=workspaces,
        scale=config.scale,
    )
    rows: list[Table1Row] = []
    for name in config.circuits:
        workspace = workspaces[name]
        cells: dict[str, Table1Cell] = {}
        for tpg_name in PAPER_TPGS:
            pipeline = grid.get(name, tpg_name).result
            gatsby = (
                workspace.run_gatsby(tpg_name, config)
                if config.run_gatsby
                else None
            )
            cells[tpg_name] = Table1Cell(
                n_triplets=pipeline.n_triplets,
                test_length=pipeline.test_length,
                gatsby_triplets=gatsby.n_triplets if gatsby else None,
                gatsby_test_length=gatsby.test_length if gatsby else None,
                gatsby_coverage=gatsby.fault_coverage if gatsby else None,
            )
        rows.append(Table1Row(name, cells))
    return rows


def render_table1(rows: list[Table1Row]) -> AsciiTable:
    """Format the rows the way the paper's Table 1 lays them out."""
    headers = ["circuit"]
    for tpg_name in PAPER_TPGS:
        headers += [
            f"{tpg_name} #T",
            f"{tpg_name} len",
            f"{tpg_name} GATSBY #T",
            f"{tpg_name} GATSBY len",
            f"{tpg_name} GATSBY FC%",
        ]
    table = AsciiTable(headers, title="Table 1: Reseeding solution (set covering vs GATSBY)")
    for row in rows:
        cells: list[object] = [row.circuit]
        for tpg_name in PAPER_TPGS:
            cell = row.cells[tpg_name]
            cells += [
                cell.n_triplets,
                cell.test_length,
                cell.gatsby_triplets if cell.gatsby_triplets is not None else "-",
                cell.gatsby_test_length
                if cell.gatsby_test_length is not None
                else "-",
                f"{100 * cell.gatsby_coverage:.1f}"
                if cell.gatsby_coverage is not None
                else "-",
            ]
        table.add_row(cells)
    return table


def main(argv: list[str] | None = None) -> None:
    """CLI entry point."""
    parser = make_arg_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)
    config = config_from_args(args)
    rows = compute_table1(config)
    table = render_table1(rows)
    print(table.render_csv() if args.csv else table.render())
    wins = 0
    comparable = 0
    for row in rows:
        for cell in row.cells.values():
            if cell.gatsby_triplets is None:
                continue
            comparable += 1
            # A win: fewer/equal triplets at full coverage, or the GA
            # never reached the coverage target at all.
            if not cell.gatsby_complete or cell.improvement >= 0:
                wins += 1
    if comparable:
        print(
            f"\nset covering solves (100% FC, <= triplets) or outlasts "
            f"GATSBY on {wins}/{comparable} circuit x TPG cells"
        )


if __name__ == "__main__":
    main()
