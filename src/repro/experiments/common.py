"""Shared infrastructure for the experiment drivers.

A :class:`CircuitWorkspace` bundles the per-circuit artefacts every
experiment needs — the loaded circuit, its compiled fault simulator and
the (expensive) ATPG result — so the three TPG pipelines and the GATSBY
baseline all share them, exactly as the paper's flow shares TestGen
output across generators.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.atpg.engine import AtpgEngine, AtpgResult
from repro.circuit.netlist import Circuit
from repro.circuits import load_circuit
from repro.flow.pipeline import PipelineConfig, PipelineResult, ReseedingPipeline
from repro.gatsby import GaConfig, GatsbyReseeder, GatsbyResult
from repro.sim.fault import FaultSimulator

#: Default circuit subset: small-to-mid members of the paper's list so
#: the drivers finish in minutes at the default scale.  ``--circuits``
#: or ``--full`` widens the set.
DEFAULT_CIRCUITS: tuple[str, ...] = (
    "c499",
    "c880",
    "s420",
    "s641",
    "s820",
    "s953",
    "s1238",
)

#: The full paper list (Tables 1 and 2).
FULL_CIRCUITS: tuple[str, ...] = (
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c7552",
    "s420",
    "s641",
    "s820",
    "s838",
    "s953",
    "s1238",
    "s1423",
    "s5378",
    "s9234",
    "s13207",
    "s15850",
)

#: Circuits the paper reports GATSBY could not handle; we mirror the
#: cutoff by gate count so the "-" cells of Table 1 regenerate too.
GATSBY_GATE_LIMIT = 1200


@dataclass(frozen=True)
class ExperimentConfig:
    """Scaling and tuning knobs shared by the drivers."""

    circuits: tuple[str, ...] = DEFAULT_CIRCUITS
    scale: float = 0.25
    seed: int = 2001
    evolution_length: int = 32
    max_random_patterns: int = 1024
    run_gatsby: bool = True
    matrix_workers: int | None = None

    def pipeline_config(self, evolution_length: int | None = None) -> PipelineConfig:
        """The equivalent flow configuration."""
        return PipelineConfig(
            seed=self.seed,
            evolution_length=evolution_length or self.evolution_length,
            max_random_patterns=self.max_random_patterns,
            matrix_workers=self.matrix_workers,
        )


@dataclass
class CircuitWorkspace:
    """Cached per-circuit artefacts: circuit, simulator, ATPG result."""

    name: str
    circuit: Circuit
    simulator: FaultSimulator
    atpg: AtpgResult

    @classmethod
    def prepare(cls, name: str, config: ExperimentConfig) -> "CircuitWorkspace":
        """Load (or synthesise) the circuit and run ATPG once."""
        circuit = load_circuit(name, scale=config.scale)
        engine = AtpgEngine(
            circuit,
            seed=config.seed,
            max_random_patterns=config.max_random_patterns,
        )
        atpg = engine.run()
        return cls(name, circuit, engine.simulator, atpg)

    def run_pipeline(
        self, tpg_name: str, config: ExperimentConfig, evolution_length: int | None = None
    ) -> PipelineResult:
        """The set-covering flow for one TPG, reusing cached artefacts."""
        pipeline = ReseedingPipeline(
            self.circuit,
            tpg_name,
            config.pipeline_config(evolution_length),
            atpg_result=self.atpg,
            simulator=self.simulator,
        )
        return pipeline.run()

    def run_gatsby(
        self, tpg_name: str, config: ExperimentConfig
    ) -> GatsbyResult | None:
        """The GA baseline, or ``None`` for circuits beyond its reach
        (Table 1's missing GATSBY entries)."""
        if self.circuit.n_gates > GATSBY_GATE_LIMIT:
            return None
        from repro.tpg.registry import make_tpg

        reseeder = GatsbyReseeder(
            self.circuit,
            make_tpg(tpg_name, self.circuit.n_inputs),
            seed=config.seed,
            evolution_length=config.evolution_length,
            ga_config=GaConfig(population_size=12, generations=8),
            stall_limit=8,
            simulator=self.simulator,
        )
        # No ATPG seeding: GATSBY is a standalone simulation-driven tool
        # ([7][8]); it never sees deterministic patterns.  This is what
        # makes the set-covering approach win on random-resistant faults.
        return reseeder.run(self.atpg.target_faults)


def make_arg_parser(description: str) -> argparse.ArgumentParser:
    """The CLI shared by the drivers."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        help="circuit names (default: a fast subset of the paper's list)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full circuit list (slow at scale 1.0)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="synthetic circuit size factor, 1.0 = real ISCAS sizes (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=2001, help="master seed")
    parser.add_argument(
        "--evolution-length",
        type=int,
        default=32,
        help="triplet evolution length T (default 32)",
    )
    parser.add_argument(
        "--no-gatsby",
        action="store_true",
        help="skip the (slow) GATSBY GA baseline",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for row-parallel Detection Matrix construction "
        "(default: serial)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an ASCII table"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an ExperimentConfig."""
    if args.circuits:
        circuits = tuple(args.circuits)
    elif args.full:
        circuits = FULL_CIRCUITS
    else:
        circuits = DEFAULT_CIRCUITS
    return ExperimentConfig(
        circuits=circuits,
        scale=args.scale,
        seed=args.seed,
        evolution_length=args.evolution_length,
        run_gatsby=not args.no_gatsby,
        matrix_workers=getattr(args, "workers", None),
    )
