"""Shared infrastructure for the experiment drivers.

The heavy lifting lives in the flow layer now: a
:class:`~repro.flow.session.Session` owns the per-circuit artefacts
(loaded circuit, compiled fault simulator, ATPG result) and
:func:`~repro.flow.sweep.sweep` runs the circuits x TPGs grid over
shared sessions.  This module keeps the experiment-level vocabulary —
circuit subsets, the :class:`ExperimentConfig` knobs, the shared CLI —
plus :class:`CircuitWorkspace`, the Session subclass the drivers and
the GATSBY baseline use (the name survives from the pre-Session API).
"""

from __future__ import annotations

import argparse

from dataclasses import dataclass

from repro.flow.pipeline import PipelineConfig, PipelineResult
from repro.flow.session import ArtifactCache, Session
from repro.gatsby import GaConfig, GatsbyReseeder, GatsbyResult

#: Default circuit subset: small-to-mid members of the paper's list so
#: the drivers finish in minutes at the default scale.  ``--circuits``
#: or ``--full`` widens the set.
DEFAULT_CIRCUITS: tuple[str, ...] = (
    "c499",
    "c880",
    "s420",
    "s641",
    "s820",
    "s953",
    "s1238",
)

#: The full paper list (Tables 1 and 2).
FULL_CIRCUITS: tuple[str, ...] = (
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c7552",
    "s420",
    "s641",
    "s820",
    "s838",
    "s953",
    "s1238",
    "s1423",
    "s5378",
    "s9234",
    "s13207",
    "s15850",
)

#: Circuits the paper reports GATSBY could not handle; we mirror the
#: cutoff by gate count so the "-" cells of Table 1 regenerate too.
GATSBY_GATE_LIMIT = 1200


@dataclass(frozen=True)
class ExperimentConfig:
    """Scaling and tuning knobs shared by the drivers."""

    circuits: tuple[str, ...] = DEFAULT_CIRCUITS
    scale: float = 0.25
    seed: int = 2001
    evolution_length: int = 32
    max_random_patterns: int = 1024
    run_gatsby: bool = True
    matrix_workers: int | None = None
    cache_dir: str | None = None

    def pipeline_config(self, evolution_length: int | None = None) -> PipelineConfig:
        """The equivalent flow configuration."""
        return PipelineConfig(
            seed=self.seed,
            evolution_length=evolution_length or self.evolution_length,
            max_random_patterns=self.max_random_patterns,
            matrix_workers=self.matrix_workers,
        )


class CircuitWorkspace(Session):
    """Cached per-circuit artefacts: circuit, simulator, ATPG result.

    A :class:`~repro.flow.session.Session` under its historical name,
    extended with the experiment-level conveniences (eager ATPG, the
    GATSBY baseline with the paper's gate-count cutoff).
    """

    @classmethod
    def prepare(
        cls,
        name: str,
        config: ExperimentConfig,
        cache: ArtifactCache | str | None = None,
    ) -> "CircuitWorkspace":
        """Load (or synthesise) the circuit and run ATPG once."""
        workspace = cls.from_name(
            name,
            scale=config.scale,
            config=config.pipeline_config(),
            cache=cache if cache is not None else config.cache_dir,
        )
        workspace.atpg_result  # eager: every experiment needs it anyway
        return workspace

    @property
    def atpg(self):
        """The circuit-level ATPG artefact (pre-Session attribute name)."""
        return self.atpg_result

    def run_pipeline(
        self, tpg_name: str, config: ExperimentConfig, evolution_length: int | None = None
    ) -> PipelineResult:
        """The set-covering flow for one TPG, reusing cached artefacts."""
        return self.run(tpg_name, config.pipeline_config(evolution_length))

    def run_gatsby(
        self, tpg_name: str, config: ExperimentConfig
    ) -> GatsbyResult | None:
        """The GA baseline, or ``None`` for circuits beyond its reach
        (Table 1's missing GATSBY entries)."""
        if self.circuit.n_gates > GATSBY_GATE_LIMIT:
            return None
        from repro.tpg.registry import make_tpg

        reseeder = GatsbyReseeder(
            self.circuit,
            make_tpg(tpg_name, self.circuit.n_inputs),
            seed=config.seed,
            evolution_length=config.evolution_length,
            ga_config=GaConfig(population_size=12, generations=8),
            stall_limit=8,
            simulator=self.simulator,
        )
        # No ATPG seeding: GATSBY is a standalone simulation-driven tool
        # ([7][8]); it never sees deterministic patterns.  This is what
        # makes the set-covering approach win on random-resistant faults.
        return reseeder.run(self.atpg.target_faults)


def prepare_workspaces(
    config: ExperimentConfig,
) -> dict[str, CircuitWorkspace]:
    """One eager workspace per configured circuit, in order."""
    return {
        name: CircuitWorkspace.prepare(name, config) for name in config.circuits
    }


def make_arg_parser(description: str) -> argparse.ArgumentParser:
    """The CLI shared by the drivers."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        help="circuit names (default: a fast subset of the paper's list)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full circuit list (slow at scale 1.0)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="synthetic circuit size factor, 1.0 = real ISCAS sizes (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=2001, help="master seed")
    parser.add_argument(
        "--evolution-length",
        type=int,
        default=32,
        help="triplet evolution length T (default 32)",
    )
    parser.add_argument(
        "--no-gatsby",
        action="store_true",
        help="skip the (slow) GATSBY GA baseline",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for row-parallel Detection Matrix construction "
        "(default: serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="artifact-cache directory (warm runs skip ATPG and matrices)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an ASCII table"
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an ExperimentConfig."""
    if args.circuits:
        circuits = tuple(args.circuits)
    elif args.full:
        circuits = FULL_CIRCUITS
    else:
        circuits = DEFAULT_CIRCUITS
    return ExperimentConfig(
        circuits=circuits,
        scale=args.scale,
        seed=args.seed,
        evolution_length=args.evolution_length,
        run_gatsby=not args.no_gatsby,
        matrix_workers=getattr(args, "workers", None),
        cache_dir=getattr(args, "cache", None),
    )
