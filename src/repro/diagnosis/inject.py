"""Fail-log generation: inject known faults, record what a tester sees.

Diagnosis needs ground truth to be validated against, so this module
plays the *defective device*: it simulates a circuit with one or more
stuck-at faults injected **simultaneously** (the single-fault engines in
:mod:`repro.sim` cannot compose faults on one machine) and packages the
observed responses as a :class:`FailLog` — exactly the data an ATE
captures from a failing die.

:class:`SimulatedTester` wraps a fail log as the *signature-mode*
oracle: it answers prefix-signature and window-capture queries the way
a BIST re-run on real hardware would, while counting every query so the
diagnosis engine's re-simulation budget can be asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.gates import eval_gate_words, reduce_gate_words
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.logic import CompiledCircuit
from repro.sim.misr import Misr
from repro.utils.bitvec import BitVector, PackedPatterns, as_packed, unpack_words

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def simulate_with_faults(
    compiled: CompiledCircuit,
    input_words: np.ndarray,
    faults: tuple[Fault, ...] | list[Fault],
) -> np.ndarray:
    """Word-parallel simulation with every fault in ``faults`` injected
    on the *same* machine.

    Returns the full ``(n_nodes, n_words)`` value array.  Stem faults
    freeze their net's row; branch faults re-evaluate the reading gate
    with the faulty pin stuck, using the (possibly already faulty)
    values of the other pins — which is what distinguishes a true
    multi-fault machine from a batch of independent single faults.
    """
    levels = compiled.node_levels
    stems: dict[int, list[tuple[int, int]]] = {}  # level -> [(node, stuck)]
    branches: dict[int, dict[int, list[tuple[int, int]]]] = {}
    # level -> gate id -> [(pin, stuck)]; grouped so two branch faults on
    # one gate force both pins in a single re-evaluation.
    for fault in faults:
        site = fault.site
        if site.is_branch:
            gate_id = compiled.index[site.gate]
            level = int(levels[gate_id])
            branches.setdefault(level, {}).setdefault(gate_id, []).append(
                (int(site.pin), fault.value)
            )
        else:
            node_id = compiled.index[site.net]
            stems.setdefault(int(levels[node_id]), []).append(
                (node_id, fault.value)
            )

    n_words = input_words.shape[1]
    values = np.empty((compiled.n_nodes, n_words), dtype=np.uint64)
    values[compiled.input_ids, :] = input_words
    if compiled.const0_ids.size:
        values[compiled.const0_ids, :] = 0
    if compiled.const1_ids.size:
        values[compiled.const1_ids, :] = _ALL_ONES

    def stuck_row(stuck: int) -> np.ndarray:
        if stuck:
            return np.full(n_words, _ALL_ONES, dtype=np.uint64)
        return np.zeros(n_words, dtype=np.uint64)

    def apply_forcings(level: int) -> None:
        # Branch re-evaluations first, stem freezes second: a stem fault
        # on a gate's output dominates any branch fault feeding that
        # same gate (the output is stuck no matter what the gate reads),
        # so the freeze must land last.
        for gate_id, pins in branches.get(level, {}).items():
            forced = dict(pins)
            gtype = compiled.gate_types[gate_id]
            fanin_words = [
                stuck_row(forced[pin]) if pin in forced else values[fanin_id]
                for pin, fanin_id in enumerate(compiled.gate_fanins[gate_id])
            ]
            values[gate_id, :] = eval_gate_words(gtype, fanin_words)
        for node_id, stuck in stems.get(level, ()):
            values[node_id, :] = stuck_row(stuck)

    groups_by_level: dict[int, list] = {}
    for group in compiled.eval_groups:
        groups_by_level.setdefault(int(levels[group[1][0]]), []).append(group)
    all_levels = sorted(
        set(groups_by_level) | set(stems) | set(branches) | {0}
    )
    for level in all_levels:
        for gtype, out_ids, fanin_matrix in groups_by_level.get(level, ()):
            values[out_ids, :] = reduce_gate_words(
                gtype, values[fanin_matrix], axis=1
            )
        # Forced sites are re-asserted *after* their level evaluates, so
        # a site inside another fault's cone still holds its stuck value.
        apply_forcings(level)
    return values


def faulty_responses(
    compiled: CompiledCircuit,
    patterns: "list[BitVector] | PackedPatterns",
    faults: tuple[Fault, ...] | list[Fault],
) -> list[BitVector]:
    """Primary-output vectors of the multi-fault machine, one per
    pattern (bit ``k`` = value of ``circuit.outputs[k]``)."""
    if not len(patterns):
        return []
    packed = as_packed(patterns, compiled.n_inputs)
    values = simulate_with_faults(compiled, packed.words, faults)
    return unpack_words(values[compiled.output_ids, :], packed.n_patterns)


@dataclass
class FailLog:
    """What the tester captured from one failing device.

    ``responses`` is the observed primary-output vector per applied
    pattern; ``injected`` records the ground-truth fault set for
    synthesised scenarios (empty when the log comes from real silicon).
    """

    circuit_name: str
    patterns: list[BitVector]
    responses: list[BitVector]
    injected: tuple[Fault, ...] = ()

    @property
    def n_patterns(self) -> int:
        """Number of applied patterns."""
        return len(self.patterns)

    def packed(self, width: int) -> PackedPatterns:
        """The applied patterns in word-parallel packed form.

        Packed on first use and cached on the log, so every diagnosis
        engine consuming this log shares one packing instead of
        re-packing per call.
        """
        cached: PackedPatterns | None = getattr(self, "_packed", None)
        if (
            cached is None
            or cached.width != width
            or cached.n_patterns != len(self.patterns)
        ):
            cached = PackedPatterns.from_patterns(self.patterns, width)
            self._packed = cached
        return cached

    def attach_packed(self, packed: PackedPatterns) -> "FailLog":
        """Pre-seed the packed-pattern cache with an already-packed form
        of this log's pattern sequence (the serve layer shares one
        packing across every fail log of a tester batch)."""
        if packed.n_patterns != len(self.patterns):
            raise ValueError(
                f"packed carries {packed.n_patterns} patterns, "
                f"log has {len(self.patterns)}"
            )
        self._packed = packed
        return self


def make_fail_log(
    circuit: Circuit,
    patterns: list[BitVector],
    faults: Fault | tuple[Fault, ...] | list[Fault],
    compiled: CompiledCircuit | None = None,
) -> FailLog:
    """Synthesise a ground-truth fail log by injecting ``faults``."""
    if isinstance(faults, Fault):
        faults = (faults,)
    compiled = compiled or CompiledCircuit(circuit)
    return FailLog(
        circuit_name=circuit.name,
        patterns=list(patterns),
        responses=faulty_responses(compiled, list(patterns), faults),
        injected=tuple(faults),
    )


@dataclass
class SimulatedTester:
    """A BIST tester stand-in for signature-mode diagnosis.

    Real flow: the device ran the full session once and its final MISR
    signature mismatched; the tester can then *re-run* the session from
    the start up to any pattern count and unload the intermediate
    signature (``prefix_signature``), or re-run a localized window with
    per-cycle response capture (``window_responses``) — the expensive
    tester operation that bisection exists to minimise.  Query counters
    let the tests assert the diagnosis engine's budget.
    """

    fail_log: FailLog
    misr: Misr
    seed: BitVector | None = None
    prefix_queries: int = field(default=0, init=False)
    window_captures: int = field(default=0, init=False)
    patterns_captured: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        state = self.seed if self.seed is not None else BitVector.zeros(self.misr.width)
        states = [state]
        for response in self.fail_log.responses:
            state = self.misr.step(state, response)
            states.append(state)
        self._prefix_states = states

    @property
    def n_patterns(self) -> int:
        """Session length in patterns."""
        return self.fail_log.n_patterns

    @property
    def final_signature(self) -> BitVector:
        """The signature after the full session (what flagged the die)."""
        return self._prefix_states[-1]

    def prefix_signature(self, n_patterns: int) -> BitVector:
        """Signature after re-running the first ``n_patterns`` patterns."""
        if not 0 <= n_patterns <= self.n_patterns:
            raise ValueError(
                f"prefix length {n_patterns} out of range 0..{self.n_patterns}"
            )
        self.prefix_queries += 1
        return self._prefix_states[n_patterns]

    def window_responses(self, start: int, stop: int) -> list[BitVector]:
        """Per-pattern responses for ``[start, stop)``, captured by a
        scan re-run of that window."""
        if not 0 <= start <= stop <= self.n_patterns:
            raise ValueError(
                f"window [{start}, {stop}) out of range 0..{self.n_patterns}"
            )
        self.window_captures += 1
        self.patterns_captured += stop - start
        return self.fail_log.responses[start:stop]


def parse_fault(spec: str) -> Fault:
    """Parse a CLI fault spec: ``net/SA0`` (stem) or
    ``net->gate.pin/SA1`` (fanout branch)."""
    text = spec.strip()
    try:
        site_text, sa = text.rsplit("/", 1)
        if not sa.upper().startswith("SA"):
            raise ValueError
        value = int(sa[2:])
        if "->" in site_text:
            net, reader = site_text.split("->", 1)
            gate, pin = reader.rsplit(".", 1)
            return Fault.branch(net, gate, int(pin), value)
        return Fault.stem(site_text, value)
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"bad fault spec {spec!r}: expected 'net/SA0' or 'net->gate.pin/SA1'"
        ) from exc


def choose_faults(faults: list[Fault], count: int, rng) -> tuple[Fault, ...]:
    """Deterministically draw ``count`` distinct faults from ``faults``
    using ``rng`` (an RngStream / ``random.Random``-compatible source)."""
    if count < 1 or count > len(faults):
        raise ValueError(
            f"cannot choose {count} faults from a list of {len(faults)}"
        )
    pool = list(faults)
    chosen: list[Fault] = []
    for _ in range(count):
        chosen.append(pool.pop(rng.randrange(len(pool))))
    return tuple(chosen)
