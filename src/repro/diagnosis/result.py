"""Diagnosis outcome types: ranked candidates and the result document.

Every diagnosis mode (dictionary lookup, effect-cause tracing, MISR
signature bisection) reduces to the same deliverable: an ordered list of
:class:`Candidate` stuck-at faults, each scored against the observed
fail behaviour with the classic per-pattern tau-style counts:

* ``n_match``       — failing patterns the candidate *explains* (device
  failed, candidate predicts a fail);
* ``n_mispredicted`` — passing patterns the candidate wrongly predicts
  to fail (evidence *against* the candidate);
* ``n_missed``      — failing patterns the candidate cannot explain.

A perfect single-fault explanation has ``n_mispredicted == n_missed ==
0`` and ``n_match`` equal to the observed failing-pattern count.
:class:`DiagnosisResult` is the ``PipelineResult``-style document the
flow layer serialises (see :func:`repro.flow.serialize.
diagnosis_result_to_dict`) and the CLI renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.faults.model import Fault


@dataclass(frozen=True)
class Candidate:
    """One ranked suspect: a stuck-at fault plus its match counts.

    ``n_response_match`` is the optional per-output refinement: on how
    many *failing* patterns does the candidate predict the observed
    response bit-for-bit (not just "some output wrong")?  It is filled
    in for top tie groups only and breaks pattern-level ties.
    """

    fault: Fault
    n_match: int
    n_mispredicted: int
    n_missed: int
    n_response_match: int | None = None

    @property
    def score(self) -> int:
        """Tau-style score: explained fails minus both error terms.

        The true injected fault (fully observed) scores ``n_failing``;
        every error term costs one unit of confidence."""
        return self.n_match - self.n_mispredicted - self.n_missed

    @property
    def is_perfect(self) -> bool:
        """True when the candidate explains the fail log exactly."""
        return self.n_mispredicted == 0 and self.n_missed == 0

    def sort_key(self) -> tuple:
        """Rank order: score desc, then fewer misses/mispredictions,
        then more exact response matches, then the fault's total order
        for deterministic ties."""
        return (
            -self.score,
            self.n_missed,
            self.n_mispredicted,
            -(self.n_response_match or 0),
            self.fault.sort_key(),
        )

    def __str__(self) -> str:
        text = (
            f"{self.fault} score={self.score} "
            f"(match={self.n_match}, mispredict={self.n_mispredicted}, "
            f"miss={self.n_missed}"
        )
        if self.n_response_match is not None:
            text += f", responses={self.n_response_match}"
        return text + ")"


def rank_candidates(candidates: list[Candidate]) -> list[Candidate]:
    """Sort candidates into final rank order (best first)."""
    return sorted(candidates, key=Candidate.sort_key)


def tau_counts(
    predicted: np.ndarray, fail_flags: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-column tau counts of a ``(n_patterns, n_faults)`` predicted
    fail matrix against observed fail flags: ``(n_match,
    n_mispredicted, n_missed)`` arrays.  The single definition every
    diagnosis mode scores with."""
    observed = fail_flags[:, None]
    return (
        (predicted & observed).sum(axis=0),
        (predicted & ~observed).sum(axis=0),
        (~predicted & observed).sum(axis=0),
    )


def candidates_from_predictions(
    faults: Sequence[Fault], predicted: np.ndarray, fail_flags: np.ndarray
) -> list[Candidate]:
    """One unranked :class:`Candidate` per fault column of
    ``predicted``, scored with :func:`tau_counts`."""
    n_match, n_mispredicted, n_missed = tau_counts(predicted, fail_flags)
    return [
        Candidate(
            fault,
            int(n_match[column]),
            int(n_mispredicted[column]),
            int(n_missed[column]),
        )
        for column, fault in enumerate(faults)
    ]


@dataclass
class DiagnosisResult:
    """Everything one diagnosis run produced.

    ``candidates`` is ranked best-first and truncated to the caller's
    ``top_k``; ``n_candidates_considered`` records the pre-truncation
    pool size so reports can show how hard the ranking worked.

    Signature-mode runs also carry the localisation evidence:
    ``window`` (the half-open failing-pattern window the bisection
    converged on), ``oracle_queries`` (tester re-runs consumed) and
    ``patterns_resimulated`` — the number of patterns whose full
    per-pattern responses the *diagnosis engine* re-derived, the
    quantity the ISSUE's <= 15% budget constrains.
    """

    circuit_name: str
    mode: str  # "effect_cause" | "dictionary" | "signature"
    n_patterns: int
    n_failing: int
    candidates: list[Candidate]
    n_candidates_considered: int
    window: tuple[int, int] | None = None
    oracle_queries: int = 0
    patterns_resimulated: int = 0
    timings: dict[str, float] = field(default_factory=dict)

    def rank_of(self, fault: Fault) -> int | None:
        """1-based rank of ``fault`` among the candidates (None if absent)."""
        for position, candidate in enumerate(self.candidates, start=1):
            if candidate.fault == fault:
                return position
        return None

    @property
    def top(self) -> Candidate | None:
        """The best-ranked candidate, if any."""
        return self.candidates[0] if self.candidates else None

    def summary(self) -> str:
        """One-line digest for reports and logs."""
        head = (
            f"{self.circuit_name}/{self.mode}: {self.n_failing}/"
            f"{self.n_patterns} failing patterns, "
            f"{len(self.candidates)}/{self.n_candidates_considered} candidates"
        )
        if self.window is not None:
            head += (
                f", window [{self.window[0]}, {self.window[1]}) "
                f"({self.oracle_queries} oracle queries, "
                f"{self.patterns_resimulated} patterns re-simulated)"
            )
        if self.top is not None:
            head += f"; top: {self.top}"
        return head

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (cache / ``--json`` format)."""
        from repro.flow.serialize import diagnosis_result_to_dict

        return diagnosis_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DiagnosisResult":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import diagnosis_result_from_dict

        return diagnosis_result_from_dict(data)
