"""Fault diagnosis: from a failing BIST run back to candidate faults.

The generation side of this repository (ATPG, reseeding, MISR
compaction) says whether a device *passed*; this subsystem closes the
loop and says *why it failed*.  Three modes, sharing one ranked
:class:`~repro.diagnosis.result.Candidate` vocabulary:

* :class:`~repro.diagnosis.dictionary.FaultDictionary` — precomputed
  pass/fail dictionary, diagnosis as a vectorised lookup (cacheable
  through the flow layer's artifact cache);
* :func:`~repro.diagnosis.effect_cause.diagnose_effect_cause` —
  dictionary-free critical-path tracing from failing outputs, with
  exact simulation-based ranking of the traced candidates;
* :class:`~repro.diagnosis.signature.SignatureBisector` — signature-only
  BIST diagnosis: O(log P) prefix-signature probes bisect the pattern
  sequence, then only the localised window is re-simulated.

:mod:`repro.diagnosis.inject` synthesises ground-truth scenarios
(multi-fault fail logs and a query-counting simulated tester) for
validation, benchmarks and the ``repro diagnose`` CLI.
"""

from repro.diagnosis.dictionary import FaultDictionary
from repro.diagnosis.effect_cause import (
    diagnose_effect_cause,
    diagnose_multiplet,
    fault_representatives,
    observed_fail_flags,
    refine_tie_group,
    score_candidates,
    trace_candidates,
)
from repro.diagnosis.inject import (
    FailLog,
    SimulatedTester,
    choose_faults,
    faulty_responses,
    make_fail_log,
    parse_fault,
    simulate_with_faults,
)
from repro.diagnosis.result import (
    Candidate,
    DiagnosisResult,
    candidates_from_predictions,
    rank_candidates,
    tau_counts,
)
from repro.diagnosis.signature import (
    DEFAULT_MIN_WINDOW,
    BisectionOutcome,
    SignatureBisector,
    SignatureOracle,
)

__all__ = [
    "BisectionOutcome",
    "Candidate",
    "DEFAULT_MIN_WINDOW",
    "DiagnosisResult",
    "FailLog",
    "FaultDictionary",
    "SignatureBisector",
    "SignatureOracle",
    "SimulatedTester",
    "candidates_from_predictions",
    "choose_faults",
    "diagnose_effect_cause",
    "diagnose_multiplet",
    "fault_representatives",
    "faulty_responses",
    "make_fail_log",
    "observed_fail_flags",
    "parse_fault",
    "rank_candidates",
    "refine_tie_group",
    "score_candidates",
    "simulate_with_faults",
    "tau_counts",
    "trace_candidates",
]
