"""BIST-mode diagnosis from a single MISR signature mismatch.

In signature-only BIST the tester learns exactly one bit: the final
MISR signature differs from the golden value.  Per-pattern fail data —
what every other diagnosis mode consumes — does not exist, and
capturing it for the whole session (a scan re-run of every pattern) is
the expensive tester operation diagnosis flows try to avoid.

:class:`SignatureBisector` closes the gap with O(log P) *prefix
signature* probes: the tester re-runs the session up to a chosen
pattern count and unloads the intermediate signature, which the engine
compares against the precomputed golden prefix signature at the same
point.  A binary search over the first divergent prefix localises the
earliest failing pattern to a window of ``min_window`` patterns; only
that window is then re-simulated at full per-pattern resolution and
handed to effect-cause candidate ranking.

Cost accounting (what the tests assert):

* ``oracle_queries``        — prefix re-runs, <= ceil(log2(P/min_window)) + 1;
* ``patterns_resimulated``  — per-pattern responses the engine re-derives
  and compares, == the window size, <= 15% of P for the default shapes.

The one-off golden pass in the constructor (one word-parallel
simulation of the pattern sequence) is test-program data every
diagnosis mode needs and is excluded from the budget, exactly as the
golden signature itself is computed at test-generation time.

The search assumes signatures stay divergent once they diverge; MISR
aliasing (probability ~2^-width per prefix) can in principle re-merge a
prefix and skew the window, in which case the window simply contains no
failing pattern and the result reports ``n_failing == 0`` instead of a
wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.circuit.netlist import Circuit
from repro.diagnosis.effect_cause import diagnose_effect_cause
from repro.diagnosis.result import DiagnosisResult
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.misr import Misr
from repro.utils.bitvec import BitVector, PackedPatterns, as_packed, unpack_words

#: Default localisation window, in patterns.
DEFAULT_MIN_WINDOW = 16


class SignatureOracle(Protocol):
    """What the tester must answer in signature mode (see
    :class:`~repro.diagnosis.inject.SimulatedTester` for the simulated
    implementation used by the ground-truth scenarios)."""

    @property
    def n_patterns(self) -> int:
        """Session length in patterns."""

    def prefix_signature(self, n_patterns: int) -> BitVector:
        """MISR signature after re-running the first ``n_patterns``."""

    def window_responses(self, start: int, stop: int) -> list[BitVector]:
        """Per-pattern responses for ``[start, stop)`` (scan capture)."""


@dataclass(frozen=True)
class BisectionOutcome:
    """Where the bisection converged: the earliest failing pattern lies
    in ``[start, stop)``; ``queries`` prefix signatures were consumed."""

    start: int
    stop: int
    queries: int


class SignatureBisector:
    """Binary-search localisation + windowed effect-cause ranking."""

    def __init__(
        self,
        circuit: Circuit,
        patterns: Sequence[BitVector] | PackedPatterns,
        misr: Misr | None = None,
        seed: BitVector | None = None,
        min_window: int = DEFAULT_MIN_WINDOW,
        simulator: BatchFaultSimulator | None = None,
    ) -> None:
        if min_window < 1:
            raise ValueError(f"min_window must be >= 1, got {min_window}")
        self.circuit = circuit
        self.misr = misr or Misr(circuit.n_outputs)
        if self.misr.width != circuit.n_outputs:
            raise ValueError(
                f"MISR width {self.misr.width} != circuit output count "
                f"{circuit.n_outputs}"
            )
        self.min_window = min_window
        self.simulator = simulator or BatchFaultSimulator(circuit)
        compiled = self.simulator.compiled
        #: The session's pattern sequence, packed exactly once; window
        #: re-simulation slices this instead of re-packing per probe.
        self.packed = as_packed(patterns, compiled.n_inputs)
        self._patterns = (
            list(patterns) if not isinstance(patterns, PackedPatterns) else None
        )
        if self.packed.n_patterns:
            values = compiled.simulate_words(self.packed.words)
            golden = unpack_words(
                values[compiled.output_ids, :], self.packed.n_patterns
            )
        else:
            golden = []
        state = seed if seed is not None else BitVector.zeros(self.misr.width)
        states = [state]
        for response in golden:
            state = self.misr.step(state, response)
            states.append(state)
        #: Golden MISR state after each prefix length 0..P.
        self.golden_prefix_states = states

    @property
    def patterns(self) -> list[BitVector]:
        """The pattern sequence as :class:`BitVector` objects (unpacked
        lazily — the diagnosis path itself only touches the packed
        form)."""
        if self._patterns is None:
            self._patterns = self.packed.unpack()
        return self._patterns

    @property
    def n_patterns(self) -> int:
        """Session length in patterns."""
        return self.packed.n_patterns

    @property
    def golden_signature(self) -> BitVector:
        """The fault-free end-of-session signature."""
        return self.golden_prefix_states[-1]

    def localize(self, oracle: SignatureOracle) -> BisectionOutcome | None:
        """Bisect to the window holding the earliest failing pattern.

        Returns ``None`` when the final signatures agree (nothing to
        diagnose — or the fault aliased away entirely).
        """
        total = self.n_patterns
        if oracle.n_patterns != total:
            raise ValueError(
                f"oracle ran {oracle.n_patterns} patterns, engine has {total}"
            )
        queries = 1
        if oracle.prefix_signature(total) == self.golden_prefix_states[total]:
            return None
        # Invariant: prefix `low` matches golden, prefix `high` differs,
        # so the first divergence — hence the earliest failing pattern —
        # lies in [low, high).
        low, high = 0, total
        while high - low > self.min_window:
            mid = (low + high) // 2
            queries += 1
            if oracle.prefix_signature(mid) == self.golden_prefix_states[mid]:
                low = mid
            else:
                high = mid
        return BisectionOutcome(low, high, queries)

    def diagnose(
        self,
        oracle: SignatureOracle,
        *,
        faults: Sequence[Fault] | None = None,
        top_k: int = 10,
        widen: bool = True,
    ) -> DiagnosisResult:
        """Localise, capture the window, rank candidates on it."""
        start = time.perf_counter()
        outcome = self.localize(oracle)
        localize_seconds = time.perf_counter() - start
        if outcome is None:
            return DiagnosisResult(
                circuit_name=self.circuit.name,
                mode="signature",
                n_patterns=self.n_patterns,
                n_failing=0,
                candidates=[],
                n_candidates_considered=0,
                oracle_queries=1,
                patterns_resimulated=0,
                timings={"localize": localize_seconds},
            )
        window_patterns = self.packed.slice(outcome.start, outcome.stop)
        window_responses = oracle.window_responses(outcome.start, outcome.stop)
        inner = diagnose_effect_cause(
            self.circuit,
            window_patterns,
            window_responses,
            faults=faults,
            simulator=self.simulator,
            top_k=top_k,
            widen=widen,
            mode="signature",
        )
        return DiagnosisResult(
            circuit_name=self.circuit.name,
            mode="signature",
            n_patterns=self.n_patterns,
            n_failing=inner.n_failing,
            candidates=inner.candidates,
            n_candidates_considered=inner.n_candidates_considered,
            window=(outcome.start, outcome.stop),
            oracle_queries=outcome.queries,
            patterns_resimulated=outcome.stop - outcome.start,
            timings={"localize": localize_seconds, **inner.timings},
        )
