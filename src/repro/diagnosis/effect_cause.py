"""Dictionary-free effect-cause diagnosis via critical-path tracing.

Given a fail log (per-pattern observed responses), the diagnosis works
backwards from the *effect*:

1. re-simulate the fault-free machine once (word-parallel) and flag the
   failing patterns;
2. for every failing pattern, **critical-path trace** from each failing
   primary output back through the good-machine values: at a gate whose
   output is critical, the critical fanins are the controlling-value
   inputs (all of them, conservatively, when several carry the
   controlling value — reconvergent fault effects can arrive through
   more than one) or all inputs when none is controlling (XOR-like
   sensitisation).  Every critical net contributes a candidate stuck-at
   fault at the complement of its good value, and every critical fanout
   branch a branch-fault candidate;
3. map candidates onto collapse-class representatives and **rank** them
   by simulating the candidate set with the batched fault simulator:
   per-pattern predicted fails vs observed fails give the tau-style
   (match, mispredicted, missed) counts of
   :class:`~repro.diagnosis.result.Candidate`;
4. optionally *widen*: when even the best traced candidate cannot
   explain the log perfectly (multiple faults, tracing blind spots),
   re-rank over the full collapsed universe — still one batched
   simulation pass.

The tracing is heuristic (step 2 can over-approximate), but the ranking
step is exact simulation, so a candidate's counts are always true.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.diagnosis.result import (
    Candidate,
    DiagnosisResult,
    candidates_from_predictions,
    rank_candidates,
    tau_counts,
)
from repro.faults.collapse import collapse_faults, equivalence_classes
from repro.faults.model import Fault, effective_reader_count
from repro.sim.batch import BatchFaultSimulator
from repro.utils.bitvec import BitVector, PackedPatterns, as_packed, unpack_words

#: Gates where the controlling-input rule applies, with the controlling
#: value seen at the inputs.
_CONTROLLING_VALUE: dict[GateType, int] = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


def observed_fail_flags(
    golden: Sequence[BitVector], observed: Sequence[BitVector]
) -> np.ndarray:
    """Per-pattern fail flags: observed response differs from golden."""
    if len(golden) != len(observed):
        raise ValueError(
            f"golden/observed length mismatch: {len(golden)} vs {len(observed)}"
        )
    return np.array(
        [g != o for g, o in zip(golden, observed)], dtype=bool
    )


def fault_representatives(circuit: Circuit) -> dict[Fault, Fault]:
    """Map every fault of the full universe to its collapse-class
    representative (the fault :func:`~repro.faults.collapse.
    collapse_faults` keeps)."""
    return {
        member: representative
        for representative, members in equivalence_classes(circuit).items()
        for member in members
    }


def trace_candidates(
    simulator: BatchFaultSimulator,
    values: np.ndarray,
    failing: Sequence[int],
    failing_outputs: dict[int, list[int]],
) -> set[Fault]:
    """Critical-path trace candidate faults from the failing outputs.

    ``values`` is the good-machine ``(n_nodes, n_words)`` value array;
    ``failing_outputs[p]`` lists the output *positions* observed wrong
    under failing pattern index ``p``.
    """
    compiled = simulator.compiled
    circuit = simulator.circuit
    readers: dict[str, int] = {}
    candidates: set[Fault] = set()
    for pattern_index in failing:
        word, bit = divmod(pattern_index, 64)

        def good_bit(node_id: int) -> int:
            return (int(values[node_id, word]) >> bit) & 1

        stack = [
            int(compiled.output_ids[position])
            for position in failing_outputs[pattern_index]
        ]
        visited: set[int] = set()
        while stack:
            node_id = stack.pop()
            if node_id in visited:
                continue
            visited.add(node_id)
            name = compiled.order[node_id]
            value = good_bit(node_id)
            candidates.add(Fault.stem(name, 1 - value))
            gtype = compiled.gate_types[node_id]
            if gtype.is_source:
                continue
            fanins = compiled.gate_fanins[node_id]
            controlling = _CONTROLLING_VALUE.get(gtype)
            if controlling is None:
                # XOR / XNOR / NOT / BUF: flipping any single input
                # flips the output, so every fanin is critical.
                critical_pins = range(len(fanins))
            else:
                holders = [
                    pin
                    for pin, fanin_id in enumerate(fanins)
                    if good_bit(fanin_id) == controlling
                ]
                # No controlling input: output flips if any one input
                # flips.  Otherwise only the controlling inputs can be
                # on a propagation path (all of them, conservatively —
                # reconvergent effects may flip several at once).
                critical_pins = holders if holders else range(len(fanins))
            for pin in critical_pins:
                fanin_id = fanins[pin]
                net = compiled.order[fanin_id]
                n_readers = readers.get(net)
                if n_readers is None:
                    n_readers = effective_reader_count(circuit, net)
                    readers[net] = n_readers
                if n_readers > 1:
                    candidates.add(
                        Fault.branch(net, name, pin, 1 - good_bit(fanin_id))
                    )
                stack.append(fanin_id)
    return candidates


def score_candidates(
    simulator: BatchFaultSimulator,
    patterns: Sequence[BitVector] | PackedPatterns,
    faults: Sequence[Fault],
    fail_flags: np.ndarray,
) -> list[Candidate]:
    """Exact per-pattern scoring of ``faults`` against the fail flags
    (one batched detection-matrix pass)."""
    if not faults:
        return []
    predicted = simulator.detection_matrix(patterns, list(faults))
    return candidates_from_predictions(faults, predicted, fail_flags)


#: Refinement bound: at most this many pattern-level-tied candidates
#: are re-simulated per-fault for the response tie-break.  Keeps
#: degenerate logs (huge tie groups) off an O(n_faults) serial cliff.
MAX_REFINED_TIES = 64


def refine_tie_group(
    simulator: BatchFaultSimulator,
    patterns: Sequence[BitVector] | PackedPatterns,
    responses: Sequence[BitVector],
    fail_flags: np.ndarray,
    scored: list[Candidate],
) -> list[Candidate]:
    """Break pattern-level ties at the top of the ranking with exact
    response matching.

    Candidates sharing the leader's (match, mispredicted, missed)
    counts (the first :data:`MAX_REFINED_TIES` of them) are
    re-simulated on the failing patterns only; the number of patterns
    whose full output vector matches the observation bit-for-bit
    becomes the tie-breaker.  The true single fault always scores a
    perfect response match; impostors that merely fail the same
    *patterns* usually fail different *outputs*.  A leader that
    explains nothing (``n_match == 0`` — unexplainable logs tie the
    whole universe) skips refinement: response matching cannot separate
    candidates that predict no failure.
    """
    if len(scored) < 2 or scored[0].n_match == 0:
        return scored
    from repro.diagnosis.inject import faulty_responses

    leader = scored[0]
    key = (leader.n_match, leader.n_mispredicted, leader.n_missed)
    n_tied = 0
    for candidate in scored:
        if (candidate.n_match, candidate.n_mispredicted, candidate.n_missed) != key:
            break
        n_tied += 1
    if n_tied < 2:
        return scored
    n_tied = min(n_tied, MAX_REFINED_TIES)
    if isinstance(patterns, PackedPatterns):
        patterns = patterns.unpack()
    failing_patterns = [p for p, f in zip(patterns, fail_flags) if f]
    failing_responses = [r for r, f in zip(responses, fail_flags) if f]
    refined = []
    for candidate in scored[:n_tied]:
        predicted = faulty_responses(
            simulator.compiled, failing_patterns, (candidate.fault,)
        )
        matches = sum(
            1
            for prediction, observation in zip(predicted, failing_responses)
            if prediction == observation
        )
        refined.append(replace(candidate, n_response_match=matches))
    return rank_candidates(refined) + scored[n_tied:]


def diagnose_effect_cause(
    circuit: Circuit,
    patterns: Sequence[BitVector] | PackedPatterns,
    responses: Sequence[BitVector],
    *,
    faults: Sequence[Fault] | None = None,
    simulator: BatchFaultSimulator | None = None,
    top_k: int = 10,
    widen: bool = True,
    mode: str = "effect_cause",
) -> DiagnosisResult:
    """Diagnose a fail log without a precomputed dictionary.

    ``faults`` is the candidate universe (default: the collapsed fault
    list); traced candidates outside it are dropped.  With ``widen``,
    an imperfect best explanation triggers one re-ranking pass over the
    whole universe, so a detected single fault is never lost to a
    tracing blind spot.
    """
    if len(patterns) != len(responses):
        raise ValueError(
            f"{len(patterns)} patterns but {len(responses)} responses"
        )
    simulator = simulator or BatchFaultSimulator(circuit)
    compiled = simulator.compiled
    start = time.perf_counter()
    result = DiagnosisResult(
        circuit_name=circuit.name,
        mode=mode,
        n_patterns=len(patterns),
        n_failing=0,
        candidates=[],
        n_candidates_considered=0,
        patterns_resimulated=len(patterns),
    )
    if not len(patterns):
        return result
    packed = as_packed(patterns, compiled.n_inputs)
    values = compiled.simulate_words(packed.words)
    golden = unpack_words(values[compiled.output_ids, :], packed.n_patterns)
    fail_flags = observed_fail_flags(golden, responses)
    result.n_failing = int(fail_flags.sum())
    result.timings["simulate"] = time.perf_counter() - start
    if result.n_failing == 0:
        return result

    start = time.perf_counter()
    failing = [int(i) for i in np.flatnonzero(fail_flags)]
    failing_outputs = {
        p: [
            position
            for position in range(compiled.n_outputs)
            if golden[p].bit(position) != responses[p].bit(position)
        ]
        for p in failing
    }
    traced = trace_candidates(simulator, values, failing, failing_outputs)
    representatives = fault_representatives(circuit)
    if faults is None:
        universe = sorted(set(representatives.values()))
    else:
        universe = list(faults)
    universe_set = set(universe)
    candidates = sorted(
        {
            representative
            for fault in traced
            if (representative := representatives.get(fault)) in universe_set
        }
    )
    result.timings["trace"] = time.perf_counter() - start

    start = time.perf_counter()
    scored = rank_candidates(
        score_candidates(simulator, packed, candidates, fail_flags)
    )
    if widen and (not scored or not scored[0].is_perfect):
        scored = rank_candidates(
            score_candidates(simulator, packed, universe, fail_flags)
        )
    scored = refine_tie_group(simulator, patterns, responses, fail_flags, scored)
    result.timings["rank"] = time.perf_counter() - start
    result.n_candidates_considered = len(scored)
    result.candidates = scored[:top_k]
    return result


def diagnose_multiplet(
    circuit: Circuit,
    patterns: Sequence[BitVector] | PackedPatterns,
    responses: Sequence[BitVector],
    *,
    faults: Sequence[Fault] | None = None,
    simulator: BatchFaultSimulator | None = None,
    max_faults: int = 4,
    mispredict_tolerance: int = 0,
) -> DiagnosisResult:
    """Greedy multiple-fault diagnosis (a SLAT-style multiplet).

    Single-fault tau ranking collapses on multi-fault logs: a wrong
    candidate whose fail set happens to straddle the union of the true
    faults' fail sets out-scores each true fault individually.  The
    multiplet engine instead builds an *explanation set* iteratively:

    1. keep only **consistent** candidates — at most
       ``mispredict_tolerance`` predicted fails on patterns the device
       passed (a true fault only violates this through fault-interaction
       masking, which the tolerance absorbs);
    2. repeatedly pick the consistent candidate explaining the most
       *still-unexplained* failing patterns, remove what it explains,
       and recurse until the log is explained or ``max_faults`` is hit.

    The returned candidates are the chosen multiplet in selection
    order (counts measured against the full log), not a ranking.
    """
    if len(patterns) != len(responses):
        raise ValueError(
            f"{len(patterns)} patterns but {len(responses)} responses"
        )
    simulator = simulator or BatchFaultSimulator(circuit)
    compiled = simulator.compiled
    start = time.perf_counter()
    result = DiagnosisResult(
        circuit_name=circuit.name,
        mode="multiplet",
        n_patterns=len(patterns),
        n_failing=0,
        candidates=[],
        n_candidates_considered=0,
        patterns_resimulated=len(patterns),
    )
    if not len(patterns):
        return result
    packed = as_packed(patterns, compiled.n_inputs)
    values = compiled.simulate_words(packed.words)
    golden = unpack_words(values[compiled.output_ids, :], packed.n_patterns)
    fail_flags = observed_fail_flags(golden, responses)
    result.n_failing = int(fail_flags.sum())
    result.timings["simulate"] = time.perf_counter() - start
    if result.n_failing == 0:
        return result

    start = time.perf_counter()
    universe = (
        list(faults) if faults is not None else collapse_faults(circuit)
    )
    predicted = simulator.detection_matrix(packed, universe)
    n_match, n_mispredicted, n_missed = tau_counts(predicted, fail_flags)
    consistent = np.flatnonzero(n_mispredicted <= mispredict_tolerance)
    result.n_candidates_considered = int(consistent.size)
    residual = fail_flags.copy()
    chosen: list[Candidate] = []
    while residual.any() and len(chosen) < max_faults and consistent.size:
        gains = (predicted[:, consistent] & residual[:, None]).sum(axis=0)
        best_gain = int(gains.max(initial=0))
        if best_gain == 0:
            break
        tied = [int(consistent[i]) for i in np.flatnonzero(gains == best_gain)]
        column = min(tied, key=lambda c: universe[c].sort_key())
        chosen.append(
            Candidate(
                universe[column],
                int(n_match[column]),
                int(n_mispredicted[column]),
                int(n_missed[column]),
            )
        )
        residual &= ~predicted[:, column]
        consistent = consistent[consistent != column]
    result.timings["cover"] = time.perf_counter() - start
    result.candidates = chosen
    return result
