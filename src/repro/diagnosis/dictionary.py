"""Compressed pass/fail fault dictionaries.

A fault dictionary is diagnosis paid for in advance: one batched
fault-simulation pass over (patterns x faults) stores, per fault, the
set of patterns it makes fail.  Diagnosing a fail log then costs a
vectorised compare against every column — no simulation at all — which
is why dictionaries are the production choice when many devices fail
the same test program.

The matrix is held bit-packed (one bit per pattern/fault pair, via
``numpy.packbits``) and serialises through the schema-versioned
:mod:`repro.flow.serialize` layer, so a
:class:`~repro.flow.session.Session` can persist it in its
:class:`~repro.flow.session.ArtifactCache` and warm diagnosis runs skip
simulation entirely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.diagnosis.result import (
    Candidate,
    DiagnosisResult,
    candidates_from_predictions,
    rank_candidates,
)
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.utils.bitvec import BitVector, PackedPatterns, as_packed


class FaultDictionary:
    """A pass/fail dictionary: ``matrix[p, f]`` is True iff fault ``f``
    makes pattern ``p`` fail at some primary output."""

    def __init__(
        self,
        circuit_name: str,
        faults: Sequence[Fault],
        matrix: np.ndarray,
    ) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.shape[1] != len(faults):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns for {len(faults)} faults"
            )
        self.circuit_name = circuit_name
        self.faults = list(faults)
        self.matrix = matrix

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        patterns: Sequence[BitVector] | PackedPatterns,
        faults: Sequence[Fault] | None = None,
        simulator: BatchFaultSimulator | None = None,
    ) -> "FaultDictionary":
        """Simulate the dictionary with the batched engine (64 patterns
        per word, faults stacked on the batch axis).

        ``patterns`` may be pre-packed (:class:`~repro.utils.bitvec.
        PackedPatterns`) — a session that already packed the sequence
        pays no per-call conversion.
        """
        faults = list(faults) if faults is not None else collapse_faults(circuit)
        simulator = simulator or BatchFaultSimulator(circuit)
        packed = as_packed(patterns, simulator.compiled.n_inputs)
        matrix = simulator.detection_matrix(packed, faults)
        return cls(circuit.name, faults, matrix)

    @classmethod
    def build_streaming(
        cls,
        circuit: Circuit,
        patterns: Sequence[BitVector],
        faults: Sequence[Fault] | None = None,
        simulator: BatchFaultSimulator | None = None,
    ) -> "FaultDictionary":
        """Row-streamed construction over
        :meth:`~repro.sim.batch.BatchFaultSimulator.detection_matrix_rows`
        (one singleton pattern set per row).

        Bit-identical to :meth:`build`; it trades the 64-pattern word
        parallelism for bounded memory, which is the right shape when
        the pattern sequence is produced incrementally (and it doubles
        as the differential check of the two engines' agreement).
        """
        faults = list(faults) if faults is not None else collapse_faults(circuit)
        simulator = simulator or BatchFaultSimulator(circuit)
        rows = simulator.detection_matrix_rows(
            ([pattern] for pattern in patterns), faults
        )
        matrix = np.array(list(rows), dtype=bool).reshape(len(patterns), len(faults))
        return cls(circuit.name, faults, matrix)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n_patterns(self) -> int:
        """Number of patterns the dictionary covers."""
        return int(self.matrix.shape[0])

    @property
    def n_faults(self) -> int:
        """Number of fault columns."""
        return len(self.faults)

    @property
    def packed_bytes(self) -> int:
        """Size of the bit-packed matrix (the stored representation)."""
        return int(np.packbits(self.matrix.astype(np.uint8), axis=None).nbytes)

    def lookup(
        self, fail_flags: np.ndarray, top_k: int = 10
    ) -> list[Candidate]:
        """Rank every dictionary fault against observed per-pattern fail
        flags; returns the ``top_k`` best-first candidates."""
        fail_flags = np.asarray(fail_flags, dtype=bool)
        if fail_flags.shape != (self.n_patterns,):
            raise ValueError(
                f"fail flags shape {fail_flags.shape} != ({self.n_patterns},)"
            )
        candidates = candidates_from_predictions(
            self.faults, self.matrix, fail_flags
        )
        return rank_candidates(candidates)[:top_k]

    def diagnose(
        self, fail_flags: np.ndarray, top_k: int = 10
    ) -> DiagnosisResult:
        """:meth:`lookup` wrapped as a :class:`DiagnosisResult` (zero
        patterns re-simulated — that is the point of a dictionary)."""
        candidates = self.lookup(fail_flags, top_k=top_k)
        return DiagnosisResult(
            circuit_name=self.circuit_name,
            mode="dictionary",
            n_patterns=self.n_patterns,
            n_failing=int(np.asarray(fail_flags, dtype=bool).sum()),
            candidates=candidates,
            n_candidates_considered=self.n_faults,
            patterns_resimulated=0,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (the cache entry format)."""
        from repro.flow.serialize import fault_dictionary_to_dict

        return fault_dictionary_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultDictionary":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import fault_dictionary_from_dict

        return fault_dictionary_from_dict(data)
