"""Compressed pass/fail fault dictionaries.

A fault dictionary is diagnosis paid for in advance: one batched
fault-simulation pass over (patterns x faults) stores, per fault, the
set of patterns it makes fail.  Diagnosing a fail log then costs a
vectorised compare against every column — no simulation at all — which
is why dictionaries are the production choice when many devices fail
the same test program.

The matrix is held bit-packed (one bit per pattern/fault pair, via
``numpy.packbits``) and serialises through the schema-versioned
:mod:`repro.flow.serialize` layer, so a
:class:`~repro.flow.session.Session` can persist it in its
:class:`~repro.flow.session.ArtifactCache` and warm diagnosis runs skip
simulation entirely.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.netlist import Circuit
from repro.diagnosis.result import (
    Candidate,
    DiagnosisResult,
    candidates_from_predictions,
    rank_candidates,
)
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.utils.bitvec import BitVector, PackedPatterns, as_packed


class FaultDictionary:
    """A pass/fail dictionary: ``matrix[p, f]`` is True iff fault ``f``
    makes pattern ``p`` fail at some primary output."""

    def __init__(
        self,
        circuit_name: str,
        faults: Sequence[Fault],
        matrix: np.ndarray,
    ) -> None:
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.shape[1] != len(faults):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns for {len(faults)} faults"
            )
        self.circuit_name = circuit_name
        self.faults = list(faults)
        self.matrix = matrix
        self._fault_rank: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        patterns: Sequence[BitVector] | PackedPatterns,
        faults: Sequence[Fault] | None = None,
        simulator: BatchFaultSimulator | None = None,
    ) -> "FaultDictionary":
        """Simulate the dictionary with the batched engine (64 patterns
        per word, faults stacked on the batch axis).

        ``patterns`` may be pre-packed (:class:`~repro.utils.bitvec.
        PackedPatterns`) — a session that already packed the sequence
        pays no per-call conversion.
        """
        faults = list(faults) if faults is not None else collapse_faults(circuit)
        simulator = simulator or BatchFaultSimulator(circuit)
        packed = as_packed(patterns, simulator.compiled.n_inputs)
        matrix = simulator.detection_matrix(packed, faults)
        return cls(circuit.name, faults, matrix)

    @classmethod
    def build_streaming(
        cls,
        circuit: Circuit,
        patterns: Sequence[BitVector],
        faults: Sequence[Fault] | None = None,
        simulator: BatchFaultSimulator | None = None,
    ) -> "FaultDictionary":
        """Row-streamed construction over
        :meth:`~repro.sim.batch.BatchFaultSimulator.detection_matrix_rows`
        (one singleton pattern set per row).

        Bit-identical to :meth:`build`; it trades the 64-pattern word
        parallelism for bounded memory, which is the right shape when
        the pattern sequence is produced incrementally (and it doubles
        as the differential check of the two engines' agreement).
        """
        faults = list(faults) if faults is not None else collapse_faults(circuit)
        simulator = simulator or BatchFaultSimulator(circuit)
        rows = simulator.detection_matrix_rows(
            ([pattern] for pattern in patterns), faults
        )
        matrix = np.array(list(rows), dtype=bool).reshape(len(patterns), len(faults))
        return cls(circuit.name, faults, matrix)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n_patterns(self) -> int:
        """Number of patterns the dictionary covers."""
        return int(self.matrix.shape[0])

    @property
    def n_faults(self) -> int:
        """Number of fault columns."""
        return len(self.faults)

    @property
    def packed_bytes(self) -> int:
        """Size of the bit-packed matrix (the stored representation)."""
        return int(np.packbits(self.matrix.astype(np.uint8), axis=None).nbytes)

    def lookup(
        self, fail_flags: np.ndarray, top_k: int = 10
    ) -> list[Candidate]:
        """Rank every dictionary fault against observed per-pattern fail
        flags; returns the ``top_k`` best-first candidates."""
        fail_flags = np.asarray(fail_flags, dtype=bool)
        if fail_flags.shape != (self.n_patterns,):
            raise ValueError(
                f"fail flags shape {fail_flags.shape} != ({self.n_patterns},)"
            )
        candidates = candidates_from_predictions(
            self.faults, self.matrix, fail_flags
        )
        return rank_candidates(candidates)[:top_k]

    def diagnose(
        self, fail_flags: np.ndarray, top_k: int = 10
    ) -> DiagnosisResult:
        """:meth:`lookup` wrapped as a :class:`DiagnosisResult` (zero
        patterns re-simulated — that is the point of a dictionary)."""
        candidates = self.lookup(fail_flags, top_k=top_k)
        return DiagnosisResult(
            circuit_name=self.circuit_name,
            mode="dictionary",
            n_patterns=self.n_patterns,
            n_failing=int(np.asarray(fail_flags, dtype=bool).sum()),
            candidates=candidates,
            n_candidates_considered=self.n_faults,
            patterns_resimulated=0,
        )

    def _fault_order_rank(self) -> np.ndarray:
        """Per-column rank of each fault in its deterministic total
        order (:meth:`~repro.faults.model.Fault.sort_key`) — the final
        tie-break of :meth:`~repro.diagnosis.result.Candidate.sort_key`,
        precomputed once so the batched lookup can lexsort with it."""
        if self._fault_rank is None:
            order = sorted(
                range(len(self.faults)),
                key=lambda column: self.faults[column].sort_key(),
            )
            rank = np.empty(len(order), dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(len(order))
            self._fault_rank = rank
        return self._fault_rank

    def diagnose_many(
        self,
        fail_flags: np.ndarray,
        top_k: "int | Sequence[int]" = 10,
    ) -> list[DiagnosisResult]:
        """Diagnose a whole batch of fail logs in one lookup pass.

        ``fail_flags`` is ``(n_patterns, n_logs)`` (a 1-D array is one
        log).  The tau counts of every (fault, log) pair come from three
        matrix products, and each log's ranking is a vectorised lexsort
        over exactly the keys :meth:`~repro.diagnosis.result.Candidate.
        sort_key` uses — so every returned :class:`DiagnosisResult` is
        **identical** to a serial :meth:`diagnose` call for that log's
        flags.  This is the fault-axis batching trick applied across
        *requests*: N concurrent fail logs cost one pass, not N.
        """
        flags = np.asarray(fail_flags, dtype=bool)
        if flags.ndim == 1:
            flags = flags[:, None]
        if flags.shape[0] != self.n_patterns:
            raise ValueError(
                f"fail flags have {flags.shape[0]} patterns, dictionary "
                f"covers {self.n_patterns}"
            )
        n_logs = flags.shape[1]
        top_ks = (
            [int(k) for k in top_k]
            if isinstance(top_k, (list, tuple))
            else [int(top_k)] * n_logs
        )
        if len(top_ks) != n_logs:
            raise ValueError(f"{len(top_ks)} top_k values for {n_logs} logs")
        predicted = self.matrix.astype(np.int64)  # (P, F)
        observed = flags.astype(np.int64)  # (P, B)
        n_match = predicted.T @ observed  # (F, B)
        n_failing = observed.sum(axis=0)  # (B,)
        predicted_fails = predicted.sum(axis=0)  # (F,)
        n_mispredicted = predicted_fails[:, None] - n_match
        n_missed = n_failing[None, :] - n_match
        score = n_match - n_mispredicted - n_missed
        fault_rank = self._fault_order_rank()
        results: list[DiagnosisResult] = []
        for log in range(n_logs):
            # lexsort: last key is primary — (-score, n_missed,
            # n_mispredicted, fault order), exactly Candidate.sort_key
            # (n_response_match is None throughout dictionary mode).
            order = np.lexsort(
                (
                    fault_rank,
                    n_mispredicted[:, log],
                    n_missed[:, log],
                    -score[:, log],
                )
            )
            candidates = [
                Candidate(
                    self.faults[column],
                    int(n_match[column, log]),
                    int(n_mispredicted[column, log]),
                    int(n_missed[column, log]),
                )
                for column in order[: top_ks[log]]
            ]
            results.append(
                DiagnosisResult(
                    circuit_name=self.circuit_name,
                    mode="dictionary",
                    n_patterns=self.n_patterns,
                    n_failing=int(n_failing[log]),
                    candidates=candidates,
                    n_candidates_considered=self.n_faults,
                    patterns_resimulated=0,
                )
            )
        return results

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (the cache entry format)."""
        from repro.flow.serialize import fault_dictionary_to_dict

        return fault_dictionary_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultDictionary":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import fault_dictionary_from_dict

        return fault_dictionary_from_dict(data)
