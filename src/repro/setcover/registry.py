"""Pluggable covering-solver registry.

``solve_cover``'s ``method=`` dispatch used to be a hard-wired
``if``/``elif`` chain; it now looks solvers up here, so downstream code
can register alternative core solvers (a SAT back-end, a different
metaheuristic, ...) without touching the orchestrator.  Every solver
shares one calling convention: ``(core, options) -> SolverOutcome``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.setcover.exact import branch_and_bound
from repro.setcover.heuristic import grasp_cover
from repro.setcover.ilp import ilp_cover
from repro.setcover.matrix import CoverMatrix
from repro.utils.registry import Registry


@dataclass(frozen=True)
class SolverOptions:
    """Options shared by all core solvers.

    ``costs`` switches from minimum cardinality to minimum total row
    cost; solvers that cannot honour it must reject it rather than
    silently ignore it.
    """

    seed: int = 2001
    grasp_iterations: int = 30
    costs: dict[int, float] | None = None


@dataclass(frozen=True)
class SolverOutcome:
    """Rows the core solver picked, plus its optimality claim."""

    selected: list[int]
    optimal: bool


SolverFn = Callable[[CoverMatrix, SolverOptions], SolverOutcome]

SOLVER_REGISTRY: Registry[SolverFn] = Registry("cover solver")


def _solve_ilp(core: CoverMatrix, options: SolverOptions) -> SolverOutcome:
    result = ilp_cover(core, costs=options.costs)
    return SolverOutcome(result.selected, result.optimal)


def _solve_bnb(core: CoverMatrix, options: SolverOptions) -> SolverOutcome:
    result = branch_and_bound(core, costs=options.costs)
    return SolverOutcome(result.selected, result.optimal)


def _solve_grasp(core: CoverMatrix, options: SolverOptions) -> SolverOutcome:
    if options.costs is not None:
        raise ValueError("grasp does not support weighted covering")
    result = grasp_cover(
        core, seed=options.seed, iterations=options.grasp_iterations
    )
    return SolverOutcome(result.selected, optimal=False)


def _solve_greedy(core: CoverMatrix, options: SolverOptions) -> SolverOutcome:
    from repro.setcover.greedy import drop_redundant, greedy_cover

    selected = drop_redundant(core, greedy_cover(core, options.costs))
    return SolverOutcome(selected, optimal=False)


SOLVER_REGISTRY.register("ilp", _solve_ilp)
SOLVER_REGISTRY.register("bnb", _solve_bnb)
SOLVER_REGISTRY.register("grasp", _solve_grasp)
SOLVER_REGISTRY.register("greedy", _solve_greedy)


def solver_names() -> list[str]:
    """All registered solver names (excluding the ``auto`` pseudo-method)."""
    return SOLVER_REGISTRY.names()
