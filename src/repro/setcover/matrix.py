"""The covering-matrix data structure.

Rows and columns are identified by their original integer indices so
solutions survive reduction (removed rows/columns never invalidate the
ids of the survivors).  Row membership is stored both as per-row column
sets and per-column row sets — the reduction rules need both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np


@dataclass
class CoverMatrix:
    """A unate covering instance.

    ``rows`` maps row id -> set of column ids the row covers;
    ``columns`` maps column id -> set of row ids covering it.  The two
    views are kept consistent by the mutation helpers.
    """

    rows: dict[int, set[int]]
    columns: dict[int, set[int]]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bool_array(cls, array: np.ndarray) -> "CoverMatrix":
        """Build from a boolean array with shape (n_rows, n_columns)."""
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {array.shape}")
        rows: dict[int, set[int]] = {}
        columns: dict[int, set[int]] = {}
        n_rows, n_columns = array.shape
        for column_id in range(n_columns):
            columns[column_id] = set()
        for row_id in range(n_rows):
            covered = set(int(c) for c in np.flatnonzero(array[row_id]))
            rows[row_id] = covered
            for column_id in covered:
                columns[column_id].add(row_id)
        return cls(rows, columns)

    @classmethod
    def from_row_sets(
        cls, row_sets: Mapping[int, Iterable[int]], n_columns: int | None = None
    ) -> "CoverMatrix":
        """Build from explicit row -> columns sets.

        ``n_columns`` adds empty columns ``0..n_columns-1`` even when no
        row covers them (an infeasible instance, detected by solvers).
        """
        rows = {int(r): set(int(c) for c in cols) for r, cols in row_sets.items()}
        columns: dict[int, set[int]] = {}
        if n_columns is not None:
            for column_id in range(n_columns):
                columns[column_id] = set()
        for row_id, covered in rows.items():
            for column_id in covered:
                columns.setdefault(column_id, set()).add(row_id)
        return cls(rows, columns)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of (surviving) rows."""
        return len(self.rows)

    @property
    def n_columns(self) -> int:
        """Number of (surviving) columns."""
        return len(self.columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_columns)."""
        return (self.n_rows, self.n_columns)

    def is_empty(self) -> bool:
        """True when no columns remain to cover."""
        return not self.columns

    def is_feasible(self) -> bool:
        """Every column has at least one covering row."""
        return all(covering for covering in self.columns.values())

    def uncoverable_columns(self) -> list[int]:
        """Columns no row covers (infeasibility witnesses)."""
        return sorted(c for c, covering in self.columns.items() if not covering)

    def validate_solution(self, selected: Iterable[int]) -> bool:
        """True iff the selected rows cover every column."""
        covered: set[int] = set()
        selected = set(selected)
        for row_id in selected:
            if row_id not in self.rows:
                return False
            covered |= self.rows[row_id]
        return covered >= set(self.columns)

    def copy(self) -> "CoverMatrix":
        """A deep, independent copy."""
        return CoverMatrix(
            {r: set(cols) for r, cols in self.rows.items()},
            {c: set(rws) for c, rws in self.columns.items()},
        )

    # ------------------------------------------------------------------
    # mutation (used by the reducer)
    # ------------------------------------------------------------------

    def remove_row(self, row_id: int) -> None:
        """Delete a row, updating the column view."""
        for column_id in self.rows.pop(row_id):
            self.columns[column_id].discard(row_id)

    def remove_column(self, column_id: int) -> None:
        """Delete a column, updating the row view."""
        for row_id in self.columns.pop(column_id):
            self.rows[row_id].discard(column_id)

    def select_row(self, row_id: int) -> set[int]:
        """Commit a row to the solution: delete it and every column it
        covers; returns the columns removed."""
        covered = set(self.rows[row_id])
        for column_id in covered:
            for other_row in self.columns.pop(column_id):
                if other_row != row_id:
                    self.rows[other_row].discard(column_id)
        self.rows.pop(row_id)
        return covered

    def __repr__(self) -> str:
        return f"CoverMatrix({self.n_rows} rows x {self.n_columns} columns)"
