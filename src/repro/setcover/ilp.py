"""LP-relaxation-based exact ILP solver — the LINGO stand-in.

The paper post-processes the reduced matrix with LINGO, a commercial
linear/integer programming package.  This module provides the same
capability: branch & bound driven by the LP relaxation (solved with
``scipy.optimize.linprog``), branching on the most fractional variable.
The LP optimum is a valid lower bound and its ceiling frequently closes
the gap immediately; integral LP solutions end the search at the root,
which is what happens on most reseeding cores.

A pure-combinatorial fallback (:mod:`repro.setcover.exact`) is used when
scipy is unavailable; both give the same optimum (property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

try:  # scipy is an install dependency, but stay importable without it
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

from repro.setcover.exact import branch_and_bound
from repro.setcover.greedy import drop_redundant, greedy_cover
from repro.setcover.matrix import CoverMatrix

_FRACTIONAL_EPS = 1e-6


@dataclass
class IlpResult:
    """Selected rows, optimality flag, and LP statistics."""

    selected: list[int]
    optimal: bool
    lp_nodes: int
    root_lp_bound: float


def ilp_cover(
    matrix: CoverMatrix,
    node_limit: int = 10_000,
    costs: dict[int, float] | None = None,
) -> IlpResult:
    """Minimum-cost cover via LP-based branch & bound (unit costs by
    default, i.e. minimum cardinality)."""
    if matrix.is_empty():
        return IlpResult([], True, 0, 0.0)
    if not matrix.is_feasible():
        raise ValueError("infeasible covering instance")
    if not _HAVE_SCIPY:  # pragma: no cover
        result = branch_and_bound(matrix, costs=costs)
        return IlpResult(result.selected, result.optimal, result.nodes, 0.0)

    row_ids = sorted(matrix.rows)
    column_ids = sorted(matrix.columns)
    row_pos = {r: i for i, r in enumerate(row_ids)}
    # constraint matrix A (columns x rows): A @ x >= 1
    a_matrix = np.zeros((len(column_ids), len(row_ids)))
    for col_index, column_id in enumerate(column_ids):
        for row_id in matrix.columns[column_id]:
            a_matrix[col_index, row_pos[row_id]] = 1.0
    if costs is None:
        cost = np.ones(len(row_ids))
    else:
        if any(costs.get(r, 0) <= 0 for r in row_ids):
            raise ValueError("all row costs must be present and positive")
        cost = np.array([float(costs[r]) for r in row_ids])

    def total_cost(rows: list[int]) -> float:
        if costs is None:
            return float(len(rows))
        return sum(costs[r] for r in rows)

    incumbent = drop_redundant(matrix, greedy_cover(matrix, costs))
    best = [total_cost(incumbent), sorted(incumbent)]
    nodes = 0
    root_bound = 0.0

    def solve_lp(fixed_one: frozenset[int], fixed_zero: frozenset[int]):
        bounds = []
        for row_id in row_ids:
            if row_id in fixed_one:
                bounds.append((1.0, 1.0))
            elif row_id in fixed_zero:
                bounds.append((0.0, 0.0))
            else:
                bounds.append((0.0, 1.0))
        result = linprog(
            cost,
            A_ub=-a_matrix,
            b_ub=-np.ones(len(column_ids)),
            bounds=bounds,
            method="highs",
        )
        return result

    stack: list[tuple[frozenset[int], frozenset[int]]] = [
        (frozenset(), frozenset())
    ]
    first = True
    while stack:
        fixed_one, fixed_zero = stack.pop()
        nodes += 1
        if nodes > node_limit:
            return IlpResult(best[1], False, nodes, root_bound)
        lp = solve_lp(fixed_one, fixed_zero)
        if not lp.success:
            continue  # infeasible subproblem (some column forced uncovered)
        if first:
            root_bound = float(lp.fun)
            first = False
        # With unit costs the optimum is integral, so the LP bound can be
        # rounded up; with general costs use the raw LP value.
        lp_bound = (
            math.ceil(lp.fun - _FRACTIONAL_EPS) if costs is None else lp.fun
        )
        if lp_bound >= best[0] - _FRACTIONAL_EPS:
            continue  # bound: cannot beat the incumbent
        x = lp.x
        fractional = [
            (abs(value - 0.5), index)
            for index, value in enumerate(x)
            if _FRACTIONAL_EPS < value < 1.0 - _FRACTIONAL_EPS
        ]
        if not fractional:
            selected = [
                row_ids[index]
                for index, value in enumerate(x)
                if value > 1.0 - _FRACTIONAL_EPS
            ]
            selected = drop_redundant(matrix, selected)
            if total_cost(selected) < best[0]:
                best[0] = total_cost(selected)
                best[1] = sorted(selected)
            continue
        # branch on the most fractional variable (closest to 0.5)
        _, branch_index = min(fractional)
        branch_row = row_ids[branch_index]
        stack.append((fixed_one, fixed_zero | {branch_row}))
        stack.append((fixed_one | {branch_row}, fixed_zero))
    return IlpResult(best[1], True, nodes, root_bound)
