"""Exact combinatorial branch & bound for unate covering.

Branches on the hardest column (fewest covering rows), with:

* an upper bound seeded by greedy + redundancy elimination,
* a lower bound from a maximal set of pairwise row-disjoint columns
  (each needs its own row), and
* reduction (essentiality + dominance) re-applied at every node —
  the classic covering-table search.

On the reduced cores the reseeding flow produces, this solver is exact
and fast; it doubles as the reference the LP-based ILP solver is tested
against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.setcover.greedy import drop_redundant, greedy_cover
from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix


@dataclass
class BranchAndBoundResult:
    """Selected rows, optimality flag and node count."""

    selected: list[int]
    optimal: bool
    nodes: int


def branch_and_bound(
    matrix: CoverMatrix,
    node_limit: int = 200_000,
    costs: dict[int, float] | None = None,
) -> BranchAndBoundResult:
    """Minimum-cost cover of ``matrix`` (unit costs by default, i.e.
    minimum cardinality).

    ``node_limit`` caps the search; if hit, the best solution found so
    far is returned with ``optimal=False`` (does not happen on the
    paper-scale cores, but keeps pathological inputs safe).
    """
    if matrix.is_empty():
        return BranchAndBoundResult([], True, 0)
    if not matrix.is_feasible():
        raise ValueError("infeasible covering instance")
    if costs is not None:
        missing = set(matrix.rows) - set(costs)
        if missing:
            raise ValueError(f"costs missing for rows {sorted(missing)[:5]}")
        if any(costs[r] <= 0 for r in matrix.rows):
            raise ValueError("all row costs must be positive")
    incumbent = drop_redundant(matrix, greedy_cover(matrix, costs))
    state = _SearchState(node_limit, incumbent, _cost_of(incumbent, costs), costs)
    _search(matrix.copy(), [], 0.0, state)
    return BranchAndBoundResult(
        sorted(state.best), state.nodes <= state.node_limit, state.nodes
    )


def _cost_of(rows: list[int], costs: dict[int, float] | None) -> float:
    if costs is None:
        return float(len(rows))
    return sum(costs[r] for r in rows)


@dataclass
class _SearchState:
    node_limit: int
    best: list[int]
    best_cost: float
    costs: dict[int, float] | None
    nodes: int = 0


def _search(
    matrix: CoverMatrix, chosen: list[int], chosen_cost: float, state: _SearchState
) -> None:
    state.nodes += 1
    if state.nodes > state.node_limit:
        return
    reduction = reduce_matrix(matrix, costs=state.costs)
    chosen = chosen + reduction.essential_rows
    chosen_cost += _cost_of(reduction.essential_rows, state.costs)
    if chosen_cost >= state.best_cost:
        return  # even before covering the rest we cannot improve
    core = reduction.core
    if core.is_empty():
        state.best = list(chosen)
        state.best_cost = chosen_cost
        return
    if chosen_cost + _lower_bound(core, state.costs) >= state.best_cost:
        return
    # Branch on the hardest column; try rows by decreasing coverage.
    column_id = min(core.columns, key=lambda c: (len(core.columns[c]), c))
    candidates = sorted(
        core.columns[column_id],
        key=lambda r: (-len(core.rows[r]), r),
    )
    for row_id in candidates:
        child = core.copy()
        child.select_row(row_id)
        _search(
            child,
            chosen + [row_id],
            chosen_cost + _cost_of([row_id], state.costs),
            state,
        )
        if state.nodes > state.node_limit:
            return


def _lower_bound(matrix: CoverMatrix, costs: dict[int, float] | None) -> float:
    """A maximal set of pairwise row-disjoint columns: no single row can
    cover two of them, so the optimum is at least the sum, over those
    columns, of the cheapest row covering each."""
    bound = 0.0
    used_rows: set[int] = set()
    # Greedily take hard columns first (few covering rows).
    for column_id in sorted(matrix.columns, key=lambda c: len(matrix.columns[c])):
        covering = matrix.columns[column_id]
        if covering & used_rows:
            continue
        used_rows |= covering
        if costs is None:
            bound += 1.0
        else:
            bound += min(costs[r] for r in covering)
    return bound
