"""Unate set covering: the optimisation core of the paper.

The reseeding problem reduces to::

    minimize   sum_i x_i
    subject to for every fault j: sum_{i : D[i,j]=1} x_i >= 1
               x in {0,1}^M

Pipeline (paper Sections 3.2/3.3 and Figure 1):

1. :mod:`repro.setcover.reduce` — essentiality + row/column dominance,
   iterated to a fixed point (the Matrix Reducer block);
2. the residual cyclic core goes to an exact solver —
   :mod:`repro.setcover.ilp` (LP-based branch & bound, the LINGO
   stand-in) or :mod:`repro.setcover.exact` (combinatorial B&B) — or to
   the :mod:`repro.setcover.heuristic` GRASP metaheuristic when it is
   too large ("local research and meta-heuristic techniques");
3. :mod:`repro.setcover.solve` orchestrates and reports the statistics
   Table 2 tracks (necessary triplets, reduced size, solver picks).
"""

from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import ReductionResult, reduce_matrix
from repro.setcover.greedy import greedy_cover
from repro.setcover.exact import branch_and_bound
from repro.setcover.ilp import ilp_cover
from repro.setcover.heuristic import grasp_cover
from repro.setcover.registry import (
    SOLVER_REGISTRY,
    SolverOptions,
    SolverOutcome,
    solver_names,
)
from repro.setcover.solve import CoverSolution, SolveStats, solve_cover

__all__ = [
    "CoverMatrix",
    "CoverSolution",
    "ReductionResult",
    "SOLVER_REGISTRY",
    "SolveStats",
    "SolverOptions",
    "SolverOutcome",
    "branch_and_bound",
    "grasp_cover",
    "greedy_cover",
    "ilp_cover",
    "reduce_matrix",
    "solve_cover",
    "solver_names",
]
