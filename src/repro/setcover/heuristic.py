"""GRASP metaheuristic for large covering cores.

The paper notes that "depending on the size of the matrix, either exact
approaches or local research and meta-heuristic techniques are applied".
This module implements GRASP (Greedy Randomized Adaptive Search
Procedure): repeated randomized-greedy construction followed by local
search (redundancy elimination and 1-for-1 row swaps), keeping the best
solution across restarts.  Not guaranteed optimal, but robust on
instances too large for branch & bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.setcover.greedy import drop_redundant
from repro.setcover.matrix import CoverMatrix
from repro.utils.rng import RngStream


@dataclass
class GraspResult:
    """Best solution found and restart statistics."""

    selected: list[int]
    iterations: int
    best_iteration: int


def grasp_cover(
    matrix: CoverMatrix,
    seed: int = 2001,
    iterations: int = 30,
    alpha: float = 0.3,
) -> GraspResult:
    """Run GRASP on ``matrix``.

    ``alpha`` controls greediness: candidates within ``alpha`` of the
    best marginal gain form the restricted candidate list (RCL) a random
    member of which is chosen (alpha = 0 is pure greedy, 1 pure random).
    """
    if matrix.is_empty():
        return GraspResult([], 0, 0)
    if not matrix.is_feasible():
        raise ValueError("infeasible covering instance")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    rng = RngStream(seed, "grasp")
    best: list[int] | None = None
    best_iteration = 0
    for iteration in range(iterations):
        candidate = _randomized_greedy(matrix, rng.child(iteration), alpha)
        candidate = drop_redundant(matrix, candidate)
        candidate = _swap_local_search(matrix, candidate)
        if best is None or len(candidate) < len(best):
            best = candidate
            best_iteration = iteration
    return GraspResult(sorted(best or []), iterations, best_iteration)


def _randomized_greedy(
    matrix: CoverMatrix, rng: RngStream, alpha: float
) -> list[int]:
    uncovered = set(matrix.columns)
    available = {row_id: set(cols) for row_id, cols in matrix.rows.items()}
    selected: list[int] = []
    while uncovered:
        gains = {
            row_id: len(covered & uncovered)
            for row_id, covered in available.items()
        }
        best_gain = max(gains.values())
        if best_gain == 0:
            raise ValueError("greedy stalled on an infeasible instance")
        threshold = best_gain - alpha * best_gain
        rcl = [row_id for row_id, gain in gains.items() if gain >= threshold and gain > 0]
        choice = rng.choice(sorted(rcl))
        selected.append(choice)
        uncovered -= available.pop(choice)
    return selected


def _swap_local_search(matrix: CoverMatrix, solution: list[int]) -> list[int]:
    """Try replacing any two selected rows with one unselected row."""
    improved = True
    current = list(solution)
    while improved:
        improved = False
        selected_set = set(current)
        for drop_a in range(len(current)):
            for drop_b in range(drop_a + 1, len(current)):
                kept = [
                    current[k]
                    for k in range(len(current))
                    if k not in (drop_a, drop_b)
                ]
                covered: set[int] = set()
                for row_id in kept:
                    covered |= matrix.rows[row_id]
                missing = set(matrix.columns) - covered
                if not missing:
                    current = kept
                    improved = True
                    break
                replacement = next(
                    (
                        row_id
                        for row_id, row_cols in matrix.rows.items()
                        if row_id not in selected_set and missing <= row_cols
                    ),
                    None,
                )
                if replacement is not None:
                    current = kept + [replacement]
                    improved = True
                    break
            if improved:
                break
    return current
