"""Covering-table reduction: essentiality and dominance (Section 3.2).

The two classic rules (McCluskey [17]), iterated to a fixed point:

* **Essentiality** — a column covered by exactly one row makes that row
  *necessary*: it joins the solution, and the columns it covers leave
  the table.
* **Row dominance** — a row whose column set is a subset of another
  row's is *dominated* and leaves the table (the dominating row does
  everything it does).
* **Column dominance** — a column whose covering-row set is a superset
  of another column's is implied by it (covering the weaker column
  necessarily covers the stronger one) and leaves the table.

The paper's definitions cover essentiality and row dominance explicitly;
column dominance is part of the standard reduction toolbox the paper
cites and accelerates closure without changing the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.setcover.matrix import CoverMatrix


@dataclass
class ReductionResult:
    """Outcome of reduction.

    ``essential_rows`` are committed to any optimal solution;
    ``core`` is the residual cyclic matrix (possibly empty);
    the removed row/column lists document why each disappeared.
    """

    essential_rows: list[int]
    core: CoverMatrix
    dominated_rows: list[int] = field(default_factory=list)
    dominated_columns: list[int] = field(default_factory=list)
    iterations: int = 0

    @property
    def closed(self) -> bool:
        """True when reduction alone solved the instance (empty core) —
        the paper's "the reseeding solution only contains necessary
        triplets" case."""
        return self.core.is_empty()


def reduce_matrix(
    matrix: CoverMatrix, costs: dict[int, float] | None = None
) -> ReductionResult:
    """Reduce a covering matrix to its cyclic core.

    With ``costs`` (weighted covering), row dominance additionally
    requires the dominating row to be no more expensive — otherwise a
    cheap subset row could be part of the cost optimum.  Essentiality
    and column dominance are cost-independent.

    The input matrix is not modified.  Raises :class:`ValueError` when
    some column is uncoverable (infeasible instance).
    """
    work = matrix.copy()
    if not work.is_feasible():
        raise ValueError(
            f"infeasible covering instance: columns {work.uncoverable_columns()[:5]} "
            "have no covering row"
        )
    essential: list[int] = []
    dominated_rows: list[int] = []
    dominated_columns: list[int] = []
    iterations = 0
    changed = True
    while changed and not work.is_empty():
        changed = False
        iterations += 1
        # --- essentiality ------------------------------------------------
        essential_now: set[int] = set()
        for column_id, covering in work.columns.items():
            if len(covering) == 1:
                essential_now.add(next(iter(covering)))
        for row_id in essential_now:
            if row_id in work.rows:  # may already be gone via earlier pick
                essential.append(row_id)
                work.select_row(row_id)
                changed = True
        if work.is_empty():
            break
        # --- row dominance -----------------------------------------------
        removed = _remove_dominated_rows(work, costs)
        if removed:
            dominated_rows.extend(removed)
            changed = True
        # --- column dominance ---------------------------------------------
        removed_cols = _remove_dominated_columns(work)
        if removed_cols:
            dominated_columns.extend(removed_cols)
            changed = True
    return ReductionResult(
        essential_rows=essential,
        core=work,
        dominated_rows=dominated_rows,
        dominated_columns=dominated_columns,
        iterations=iterations,
    )


def _remove_dominated_rows(
    work: CoverMatrix, costs: dict[int, float] | None = None
) -> list[int]:
    """Remove rows whose cover is a subset of another surviving row's
    (and, under weighted covering, whose cost is no lower).

    Ties (equal cover sets and costs) keep the smallest row id, so
    reduction is deterministic.
    """
    removed: list[int] = []
    # Candidate dominators of a row are rows sharing a column with it.
    row_ids = sorted(work.rows, key=lambda r: (len(work.rows[r]), r))
    for row_id in row_ids:
        covered = work.rows.get(row_id)
        if covered is None:
            continue
        if not covered:
            work.remove_row(row_id)
            removed.append(row_id)
            continue
        # Any dominator must cover some fixed column of this row; use the
        # column with the fewest covering rows to keep the scan short.
        pivot = min(covered, key=lambda c: len(work.columns[c]))
        for other_id in work.columns[pivot]:
            if other_id == row_id:
                continue
            other_covered = work.rows[other_id]
            if len(other_covered) < len(covered):
                continue
            if costs is not None and costs[other_id] > costs[row_id]:
                continue  # the bigger row is dearer; keep both
            equal_cover = covered == other_covered
            equal_cost = costs is None or costs[other_id] == costs[row_id]
            if (covered < other_covered) or (
                equal_cover and (not equal_cost or other_id < row_id)
            ):
                work.remove_row(row_id)
                removed.append(row_id)
                break
    return removed


def _remove_dominated_columns(work: CoverMatrix) -> list[int]:
    """Remove columns whose covering-row set contains another column's.

    If rows(c1) <= rows(c2), covering c1 forces covering c2, so c2 is
    redundant.  Ties keep the smallest column id.
    """
    removed: list[int] = []
    column_ids = sorted(
        work.columns, key=lambda c: (-len(work.columns[c]), c)
    )
    for column_id in column_ids:
        covering = work.columns.get(column_id)
        if covering is None:
            continue
        pivot = min(covering, key=lambda r: len(work.rows[r]))
        for other_id in work.rows[pivot]:
            if other_id == column_id:
                continue
            other_covering = work.columns[other_id]
            if len(other_covering) > len(covering):
                continue
            if other_covering < covering or (
                other_covering == covering and other_id < column_id
            ):
                work.remove_column(column_id)
                removed.append(column_id)
                break
    return removed
