"""The set-covering orchestrator (the right half of Figure 1).

``solve_cover`` runs reduction, then dispatches the residual core to an
exact solver or the GRASP metaheuristic depending on size, and merges
essential rows with the core picks.  The returned statistics are exactly
what Table 2 reports per circuit/TPG: initial matrix size, necessary
(essential) triplet count, reduced matrix size, and the number of
triplets contributed by the exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix
from repro.setcover.registry import SOLVER_REGISTRY, SolverOptions
from repro.utils.registry import UnknownComponentError

#: Core sizes (rows * columns) above which `auto` switches to GRASP.
AUTO_EXACT_CELL_LIMIT = 250_000


@dataclass
class SolveStats:
    """Covering statistics in Table 2's vocabulary."""

    initial_shape: tuple[int, int]
    n_essential: int
    reduced_shape: tuple[int, int]
    n_solver_selected: int
    solver: str
    optimal: bool
    reduction_iterations: int

    @property
    def closed_by_reduction(self) -> bool:
        """Reduction alone solved the instance (empty core)."""
        return self.reduced_shape == (0, 0)


@dataclass
class CoverSolution:
    """Selected row ids (essentials + solver picks) and statistics."""

    selected: list[int]
    essential: list[int]
    solver_selected: list[int]
    stats: SolveStats

    @property
    def n_selected(self) -> int:
        """Solution cardinality |N|."""
        return len(self.selected)


def solve_cover(
    matrix: CoverMatrix,
    method: str = "auto",
    seed: int = 2001,
    grasp_iterations: int = 30,
    costs: dict[int, float] | None = None,
) -> CoverSolution:
    """Solve a unate covering instance end to end.

    ``method``:

    * ``"auto"`` — reduce, then ILP on small cores, GRASP on huge ones;
    * ``"ilp"`` — always the LP-based exact solver (LINGO stand-in);
    * ``"bnb"`` — always the combinatorial branch & bound;
    * ``"grasp"`` — always the metaheuristic;
    * ``"greedy"`` — reduction + greedy (fast, approximate).

    ``costs`` switches the objective from minimum cardinality to minimum
    total row cost (the exact solvers and greedy honour it; GRASP is
    cardinality-only and rejects it).

    Solvers are looked up in :data:`~repro.setcover.registry.SOLVER_REGISTRY`;
    an unregistered ``method`` raises
    :class:`~repro.utils.registry.UnknownComponentError` (a ``ValueError``
    subclass) with "did you mean" suggestions.
    """
    if method != "auto" and method not in SOLVER_REGISTRY:
        raise UnknownComponentError(
            "cover method", method, ["auto", *SOLVER_REGISTRY.names()]
        )
    initial_shape = matrix.shape
    reduction = reduce_matrix(matrix, costs=costs)
    core = reduction.core
    optimal = True
    solver = "none"
    core_selected: list[int] = []
    if not core.is_empty():
        cells = core.n_rows * core.n_columns
        chosen_method = method
        if method == "auto":
            chosen_method = "ilp" if cells <= AUTO_EXACT_CELL_LIMIT else "grasp"
        options = SolverOptions(
            seed=seed, grasp_iterations=grasp_iterations, costs=costs
        )
        outcome = SOLVER_REGISTRY.get(chosen_method)(core, options)
        core_selected = outcome.selected
        optimal = outcome.optimal
        solver = chosen_method
    selected = sorted(set(reduction.essential_rows) | set(core_selected))
    if not matrix.validate_solution(selected):
        raise AssertionError("solver produced a non-covering solution")
    stats = SolveStats(
        initial_shape=initial_shape,
        n_essential=len(reduction.essential_rows),
        reduced_shape=core.shape if not core.is_empty() else (0, 0),
        n_solver_selected=len(core_selected),
        solver=solver,
        optimal=optimal,
        reduction_iterations=reduction.iterations,
    )
    return CoverSolution(
        selected=selected,
        essential=sorted(reduction.essential_rows),
        solver_selected=sorted(core_selected),
        stats=stats,
    )
