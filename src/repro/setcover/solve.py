"""The set-covering orchestrator (the right half of Figure 1).

``solve_cover`` runs reduction, then dispatches the residual core to an
exact solver or the GRASP metaheuristic depending on size, and merges
essential rows with the core picks.  The returned statistics are exactly
what Table 2 reports per circuit/TPG: initial matrix size, necessary
(essential) triplet count, reduced matrix size, and the number of
triplets contributed by the exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.setcover.exact import branch_and_bound
from repro.setcover.heuristic import grasp_cover
from repro.setcover.ilp import ilp_cover
from repro.setcover.matrix import CoverMatrix
from repro.setcover.reduce import reduce_matrix

#: Core sizes (rows * columns) above which `auto` switches to GRASP.
AUTO_EXACT_CELL_LIMIT = 250_000


@dataclass
class SolveStats:
    """Covering statistics in Table 2's vocabulary."""

    initial_shape: tuple[int, int]
    n_essential: int
    reduced_shape: tuple[int, int]
    n_solver_selected: int
    solver: str
    optimal: bool
    reduction_iterations: int

    @property
    def closed_by_reduction(self) -> bool:
        """Reduction alone solved the instance (empty core)."""
        return self.reduced_shape == (0, 0)


@dataclass
class CoverSolution:
    """Selected row ids (essentials + solver picks) and statistics."""

    selected: list[int]
    essential: list[int]
    solver_selected: list[int]
    stats: SolveStats

    @property
    def n_selected(self) -> int:
        """Solution cardinality |N|."""
        return len(self.selected)


def solve_cover(
    matrix: CoverMatrix,
    method: str = "auto",
    seed: int = 2001,
    grasp_iterations: int = 30,
    costs: dict[int, float] | None = None,
) -> CoverSolution:
    """Solve a unate covering instance end to end.

    ``method``:

    * ``"auto"`` — reduce, then ILP on small cores, GRASP on huge ones;
    * ``"ilp"`` — always the LP-based exact solver (LINGO stand-in);
    * ``"bnb"`` — always the combinatorial branch & bound;
    * ``"grasp"`` — always the metaheuristic;
    * ``"greedy"`` — reduction + greedy (fast, approximate).

    ``costs`` switches the objective from minimum cardinality to minimum
    total row cost (the exact solvers and greedy honour it; GRASP is
    cardinality-only and rejects it).
    """
    if method not in ("auto", "ilp", "bnb", "grasp", "greedy"):
        raise ValueError(f"unknown method {method!r}")
    initial_shape = matrix.shape
    reduction = reduce_matrix(matrix, costs=costs)
    core = reduction.core
    optimal = True
    solver = "none"
    core_selected: list[int] = []
    if not core.is_empty():
        cells = core.n_rows * core.n_columns
        chosen_method = method
        if method == "auto":
            chosen_method = "ilp" if cells <= AUTO_EXACT_CELL_LIMIT else "grasp"
        if chosen_method == "grasp" and costs is not None:
            raise ValueError("grasp does not support weighted covering")
        if chosen_method == "ilp":
            ilp = ilp_cover(core, costs=costs)
            core_selected = ilp.selected
            optimal = ilp.optimal
            solver = "ilp"
        elif chosen_method == "bnb":
            bnb = branch_and_bound(core, costs=costs)
            core_selected = bnb.selected
            optimal = bnb.optimal
            solver = "bnb"
        elif chosen_method == "grasp":
            grasp = grasp_cover(core, seed=seed, iterations=grasp_iterations)
            core_selected = grasp.selected
            optimal = False
            solver = "grasp"
        else:  # greedy
            from repro.setcover.greedy import drop_redundant, greedy_cover

            core_selected = drop_redundant(core, greedy_cover(core, costs))
            optimal = False
            solver = "greedy"
    selected = sorted(set(reduction.essential_rows) | set(core_selected))
    if not matrix.validate_solution(selected):
        raise AssertionError("solver produced a non-covering solution")
    stats = SolveStats(
        initial_shape=initial_shape,
        n_essential=len(reduction.essential_rows),
        reduced_shape=core.shape if not core.is_empty() else (0, 0),
        n_solver_selected=len(core_selected),
        solver=solver,
        optimal=optimal,
        reduction_iterations=reduction.iterations,
    )
    return CoverSolution(
        selected=selected,
        essential=sorted(reduction.essential_rows),
        solver_selected=sorted(core_selected),
        stats=stats,
    )
