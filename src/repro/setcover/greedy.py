"""Greedy set covering (Chvatal's ln-approximation), optionally weighted.

Used as the upper-bound seed for branch & bound and as the fallback for
very large instances.  With ``costs``, rows are ranked by marginal
coverage per unit cost (the weighted-greedy classic).
"""

from __future__ import annotations

from typing import Mapping

from repro.setcover.matrix import CoverMatrix


def greedy_cover(
    matrix: CoverMatrix, costs: Mapping[int, float] | None = None
) -> list[int]:
    """Select rows by maximum marginal coverage (per unit cost when
    ``costs`` is given) until all columns are covered.  Ties break on
    the smaller row id (deterministic).

    Raises :class:`ValueError` on infeasible instances.
    """
    if not matrix.is_feasible():
        raise ValueError("infeasible covering instance")
    uncovered = set(matrix.columns)
    selected: list[int] = []
    row_sets = {row_id: set(cols) for row_id, cols in matrix.rows.items()}
    while uncovered:
        best_row = None
        best_score = 0.0
        for row_id, covered in row_sets.items():
            gain = len(covered & uncovered)
            if gain == 0:
                continue
            cost = float(costs[row_id]) if costs is not None else 1.0
            if cost <= 0:
                raise ValueError(f"row {row_id} has non-positive cost {cost}")
            score = gain / cost
            if score > best_score or (score == best_score and row_id < best_row):
                best_row = row_id
                best_score = score
        if best_row is None:
            raise ValueError("greedy stalled on an infeasible instance")
        selected.append(best_row)
        uncovered -= row_sets.pop(best_row)
    return selected


def drop_redundant(matrix: CoverMatrix, selected: list[int]) -> list[int]:
    """Remove rows that are redundant within a feasible solution
    (every column they uniquely covered is covered by another selected
    row).  Scans in reverse selection order, so late greedy picks are
    dropped first."""
    chosen = list(selected)
    for row_id in list(reversed(selected)):
        trial = [r for r in chosen if r != row_id]
        if trial and matrix.validate_solution(trial):
            chosen = trial
    return chosen
