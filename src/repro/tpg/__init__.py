"""Test Pattern Generator (TPG) models.

The Functional BIST idea is to reuse a module already present in the
system as the pattern generator.  The paper evaluates three
accumulator-based TPGs — adder, subtracter and multiplier — which we
model here, plus a multi-polynomial LFSR (the classic reseeding target
of Hellebrand et al. [3][4]) to demonstrate the method's independence
from the generator ("it is not restricted to any specific modules").
"""

from repro.tpg.base import TestPatternGenerator
from repro.tpg.accumulator import (
    AdderAccumulator,
    MultiplierAccumulator,
    SubtracterAccumulator,
)
from repro.tpg.lfsr import Lfsr, MultiPolynomialLfsr, default_polynomials
from repro.tpg.hardware import (
    NetlistTpg,
    adder_accumulator_netlist,
    subtracter_accumulator_netlist,
)
from repro.tpg.registry import TPG_REGISTRY, make_tpg, tpg_names

__all__ = [
    "AdderAccumulator",
    "Lfsr",
    "MultiPolynomialLfsr",
    "MultiplierAccumulator",
    "NetlistTpg",
    "SubtracterAccumulator",
    "TPG_REGISTRY",
    "TestPatternGenerator",
    "adder_accumulator_netlist",
    "default_polynomials",
    "make_tpg",
    "subtracter_accumulator_netlist",
    "tpg_names",
]
