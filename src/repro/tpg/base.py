"""The TPG interface and triplet evolution semantics.

A TPG of width ``n`` has a state register (seeded with ``delta``) and an
input register (held at ``sigma`` for the whole evolution).  Started
from a triplet ``(delta, sigma, T)``, it emits one pattern per clock for
``T`` clocks; the emitted pattern at clock 0 is ``delta`` itself, so a
length-1 evolution reproduces the seed exactly — this is the paper's
"fixing tau = '0', the test set TS provided by the reseeding corresponds
to the ATPG test set" property, and it guarantees the initial reseeding
covers the fault list completely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.utils.bitvec import BitVector


class TestPatternGenerator(ABC):
    """A width-``n`` sequential pattern generator."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"TPG width must be positive, got {width}")
        self.width = width

    @property
    def name(self) -> str:
        """Short identifier used in reports (defaults to the class name)."""
        return type(self).__name__

    @abstractmethod
    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        """One clock of evolution: the next state-register value."""

    def evolve(
        self, delta: BitVector, sigma: BitVector, length: int
    ) -> list[BitVector]:
        """The test set of triplet ``(delta, sigma, length)``: the
        ``length`` patterns appearing at the TPG outputs, starting with
        ``delta`` itself."""
        self._check_vector("delta", delta)
        self._check_vector("sigma", sigma)
        if length < 0:
            raise ValueError(f"evolution length must be >= 0, got {length}")
        patterns: list[BitVector] = []
        state = delta
        for _ in range(length):
            patterns.append(state)
            state = self.next_state(state, sigma)
        return patterns

    def suggest_sigma(self, rng) -> BitVector:
        """A random input-register value suitable for this TPG.

        Subclasses override when some sigmas degenerate (e.g. an even
        multiplicand collapses a multiplicative accumulator to 0).
        """
        return BitVector.random(self.width, rng)

    def period_bound(self) -> int:
        """A trivial upper bound on the state-sequence period."""
        return 1 << self.width

    def _check_vector(self, label: str, vector: BitVector) -> None:
        if vector.width != self.width:
            raise ValueError(
                f"{label} width {vector.width} != TPG width {self.width}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(width={self.width})"
