"""The TPG interface and triplet evolution semantics.

A TPG of width ``n`` has a state register (seeded with ``delta``) and an
input register (held at ``sigma`` for the whole evolution).  Started
from a triplet ``(delta, sigma, T)``, it emits one pattern per clock for
``T`` clocks; the emitted pattern at clock 0 is ``delta`` itself, so a
length-1 evolution reproduces the seed exactly — this is the paper's
"fixing tau = '0', the test set TS provided by the reseeding corresponds
to the ATPG test set" property, and it guarantees the initial reseeding
covers the fault list completely.

Two evolution entry points exist:

* :meth:`TestPatternGenerator.evolve` — one triplet, one Python-level
  ``next_state`` call per clock, returning ``BitVector`` patterns.  The
  semantic reference.
* :meth:`TestPatternGenerator.evolve_batch` — a whole **bank** of seeds
  at once, returning :class:`~repro.utils.bitvec.PackedPatterns`
  directly (the word-parallel form every simulator consumes), so
  generated sequences never round-trip through Python int lists.
  Subclasses vectorize by overriding :meth:`_evolve_batch_values`; the
  base class supplies a correct-by-construction scalar fallback that
  any custom TPG inherits for free, and
  :meth:`evolve_batch_scalar` keeps that fallback callable explicitly
  (the oracle of the differential suite and the baseline of
  ``benchmarks/test_tpg_throughput.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.utils.bitvec import BitVector, PackedPatterns


class TestPatternGenerator(ABC):
    """A width-``n`` sequential pattern generator.

    Subclasses implement :meth:`next_state` (one clock of evolution)
    and optionally :meth:`_evolve_batch_values` (a vectorized bank
    step for widths that fit a ``uint64``)::

        class MacUnit(TestPatternGenerator):
            def next_state(self, state, sigma):
                return state * sigma + sigma

        tpg = MacUnit(8)
        packed = tpg.evolve_batch(deltas, sigmas, length=32)

    ``packed`` feeds straight into the fault simulators — no unpacking.
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError(f"TPG width must be positive, got {width}")
        self.width = width

    @property
    def name(self) -> str:
        """Short identifier used in reports (defaults to the class name)."""
        return type(self).__name__

    def cache_token(self) -> str:
        """An identity string for evolution caching.

        Two TPG instances with equal tokens must generate identical
        sequences for every triplet — the token is part of every
        persisted packed-evolution cache key
        (:meth:`repro.flow.session.Session.packed_evolution`).  The
        default covers stateless generators; subclasses with
        configuration beyond (class, width) — tap sets, polynomial
        banks, netlists — must fold it in.
        """
        return f"{type(self).__qualname__}:{self.name}:{self.width}"

    @abstractmethod
    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        """One clock of evolution: the next state-register value."""

    def evolve(
        self, delta: BitVector, sigma: BitVector, length: int
    ) -> list[BitVector]:
        """The test set of triplet ``(delta, sigma, length)``: the
        ``length`` patterns appearing at the TPG outputs, starting with
        ``delta`` itself.

        >>> from repro.tpg.accumulator import AdderAccumulator
        >>> from repro.utils.bitvec import BitVector
        >>> tpg = AdderAccumulator(8)
        >>> [p.value for p in tpg.evolve(BitVector(10, 8), BitVector(3, 8), 4)]
        [10, 13, 16, 19]
        """
        self._check_vector("delta", delta)
        self._check_vector("sigma", sigma)
        if length < 0:
            raise ValueError(f"evolution length must be >= 0, got {length}")
        patterns: list[BitVector] = []
        state = delta
        for _ in range(length):
            patterns.append(state)
            state = self.next_state(state, sigma)
        return patterns

    # -- seed-axis batched evolution ---------------------------------------

    def evolve_batch(
        self,
        deltas: Sequence[BitVector],
        sigmas: Sequence[BitVector],
        length: int,
    ) -> PackedPatterns:
        """Evolve a whole bank of triplets sharing one ``length``.

        Returns the concatenation of every triplet's test set in seed
        order, already packed: pattern ``i * length + t`` of the result
        is ``evolve(deltas[i], sigmas[i], length)[t]`` — bit-identical
        to the scalar loop (property-tested over widths 1..130 for
        every registered TPG).  Per-seed rows come back out as
        bit-granular :meth:`~repro.utils.bitvec.PackedPatterns.slice`
        views.

        When the width fits a machine word and the subclass provides
        :meth:`_evolve_batch_values`, the whole bank advances with numpy
        word ops — one array operation per clock (or a closed form) for
        *all* seeds, which is where the >= 3x floor of
        ``benchmarks/test_tpg_throughput.py`` comes from.  Otherwise
        the scalar fallback runs, so correctness never depends on a
        vectorized override existing.

        >>> from repro.tpg.accumulator import AdderAccumulator
        >>> from repro.utils.bitvec import BitVector
        >>> tpg = AdderAccumulator(8)
        >>> bank = tpg.evolve_batch(
        ...     [BitVector(10, 8), BitVector(200, 8)],
        ...     [BitVector(3, 8), BitVector(7, 8)],
        ...     length=3,
        ... )
        >>> [p.value for p in bank.unpack()]
        [10, 13, 16, 200, 207, 214]
        """
        deltas = list(deltas)
        sigmas = list(sigmas)
        if len(deltas) != len(sigmas):
            raise ValueError(
                f"deltas ({len(deltas)}) and sigmas ({len(sigmas)}) differ in length"
            )
        for index, (delta, sigma) in enumerate(zip(deltas, sigmas)):
            self._check_vector(f"deltas[{index}]", delta)
            self._check_vector(f"sigmas[{index}]", sigma)
        if length < 0:
            raise ValueError(f"evolution length must be >= 0, got {length}")
        if not deltas or length == 0:
            return PackedPatterns(np.zeros((self.width, 0), dtype=np.uint64), 0)
        if self.width <= 64:
            values = self._evolve_batch_values(
                np.array([d.value for d in deltas], dtype=np.uint64),
                np.array([s.value for s in sigmas], dtype=np.uint64),
                length,
            )
            if values is not None:
                return PackedPatterns.from_values(
                    np.ascontiguousarray(values).reshape(-1), self.width
                )
        return self.evolve_batch_scalar(deltas, sigmas, length)

    def evolve_batch_scalar(
        self,
        deltas: Sequence[BitVector],
        sigmas: Sequence[BitVector],
        length: int,
    ) -> PackedPatterns:
        """The correct-by-construction reference for :meth:`evolve_batch`:
        one scalar :meth:`evolve` per seed, packed once at the end.
        Kept public as the differential-test oracle and the throughput
        baseline; validation matches :meth:`evolve_batch`."""
        patterns: list[BitVector] = []
        for delta, sigma in zip(list(deltas), list(sigmas)):
            patterns.extend(self.evolve(delta, sigma, length))
        return PackedPatterns.from_patterns(patterns, self.width)

    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray | None:
        """Vectorized bank evolution hook.

        Called only when ``width <= 64`` with validated, width-masked
        ``uint64`` arrays of equal shape ``(n_seeds,)`` and
        ``length >= 1``.  Implementations return a ``(n_seeds, length)``
        ``uint64`` array whose entries are masked to ``width`` bits —
        row ``i`` is the state walk of seed ``i`` — or ``None`` to
        decline (the base class then runs the scalar fallback)."""
        return None

    def suggest_sigma(self, rng) -> BitVector:
        """A random input-register value suitable for this TPG.

        Subclasses override when some sigmas degenerate (e.g. an even
        multiplicand collapses a multiplicative accumulator to 0).
        """
        return BitVector.random(self.width, rng)

    def period_bound(self) -> int:
        """A trivial upper bound on the state-sequence period."""
        return 1 << self.width

    def _check_vector(self, label: str, vector: BitVector) -> None:
        if vector.width != self.width:
            raise ValueError(
                f"{label} width {vector.width} != TPG width {self.width}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(width={self.width})"
