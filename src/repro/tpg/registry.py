"""Name-based TPG construction for experiment drivers and examples."""

from __future__ import annotations

from typing import Callable

from repro.tpg.accumulator import (
    AdderAccumulator,
    MultiplierAccumulator,
    SubtracterAccumulator,
)
from repro.tpg.base import TestPatternGenerator
from repro.tpg.lfsr import Lfsr, MultiPolynomialLfsr

TPG_REGISTRY: dict[str, Callable[[int], TestPatternGenerator]] = {
    "adder": AdderAccumulator,
    "subtracter": SubtracterAccumulator,
    "multiplier": MultiplierAccumulator,
    "lfsr": Lfsr,
    "mp-lfsr": MultiPolynomialLfsr,
}

#: The three generators of the paper's Tables 1 and 2, in table order.
PAPER_TPGS: tuple[str, ...] = ("adder", "multiplier", "subtracter")


def tpg_names() -> list[str]:
    """All registered TPG names."""
    return list(TPG_REGISTRY)


def make_tpg(name: str, width: int) -> TestPatternGenerator:
    """Instantiate a registered TPG by name for a ``width``-bit UUT."""
    factory = TPG_REGISTRY.get(name)
    if factory is None:
        raise KeyError(f"unknown TPG {name!r}; known: {', '.join(TPG_REGISTRY)}")
    return factory(width)
