"""Name-based TPG construction for experiment drivers and examples.

The registry is a :class:`repro.utils.registry.Registry`, so unknown
names raise :class:`~repro.utils.registry.UnknownComponentError` with
"did you mean" suggestions (the error remains a ``KeyError`` subclass
for backwards compatibility).  Downstream code can plug in custom
generators with ``TPG_REGISTRY.register(name, factory)``.
"""

from __future__ import annotations

from typing import Callable

from repro.tpg.accumulator import (
    AdderAccumulator,
    MultiplierAccumulator,
    SubtracterAccumulator,
)
from repro.tpg.base import TestPatternGenerator
from repro.tpg.lfsr import Lfsr, MultiPolynomialLfsr
from repro.utils.registry import Registry

TPG_REGISTRY: Registry[Callable[[int], TestPatternGenerator]] = Registry("TPG")
TPG_REGISTRY.register("adder", AdderAccumulator)
TPG_REGISTRY.register("subtracter", SubtracterAccumulator)
TPG_REGISTRY.register("multiplier", MultiplierAccumulator)
TPG_REGISTRY.register("lfsr", Lfsr)
TPG_REGISTRY.register("mp-lfsr", MultiPolynomialLfsr)

#: The three generators of the paper's Tables 1 and 2, in table order.
PAPER_TPGS: tuple[str, ...] = ("adder", "multiplier", "subtracter")


def tpg_names() -> list[str]:
    """All registered TPG names."""
    return TPG_REGISTRY.names()


def make_tpg(name: str, width: int) -> TestPatternGenerator:
    """Instantiate a registered TPG by name for a ``width``-bit UUT."""
    return TPG_REGISTRY.get(name)(width)
