"""LFSR-based TPGs, including the multi-polynomial reseeding generator.

Reseeding was born with LFSRs (Hellebrand et al. [3][4]): a seed loaded
into a linear feedback shift register expands into a pattern sequence.
The multi-polynomial variant stores a small bank of feedback polynomials
and lets each seed pick its polynomial through the input register — in
our triplet terms, ``sigma`` selects the polynomial and ``delta`` is the
seed, so the set-covering reseeding machinery applies unchanged.

Feedback polynomials are carried as :class:`TapSet` objects: the tap
indices plus the precomputed word mask both stepping paths share — the
scalar :meth:`~repro.tpg.base.TestPatternGenerator.next_state` XORs tap
bits one by one, the vectorized bank walk
(:func:`_lfsr_walk_values`) computes the same feedback for a whole seed
bank as ``parity(state & mask)`` with a logarithmic XOR fold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector
from repro.utils.kernels import kernel

#: Primitive-polynomial tap tables (Fibonacci form, taps as bit indices
#: contributing to the feedback XOR) for a range of widths.  For widths
#: not listed, a dense fallback polynomial is synthesised; it may not be
#: primitive (shorter period), which the reseeding flow tolerates.
_PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    2: (1, 0),
    3: (2, 1),
    4: (3, 2),
    5: (4, 2),
    6: (5, 4),
    7: (6, 5),
    8: (7, 5, 4, 3),
    9: (8, 4),
    10: (9, 6),
    11: (10, 8),
    12: (11, 10, 9, 3),
    13: (12, 11, 10, 7),
    14: (13, 12, 11, 1),
    15: (14, 13),
    16: (15, 14, 12, 3),
    17: (16, 13),
    18: (17, 10),
    19: (18, 17, 16, 13),
    20: (19, 16),
    24: (23, 22, 21, 16),
    28: (27, 24),
    32: (31, 21, 1, 0),
    40: (39, 37, 20, 18),
    48: (47, 46, 20, 19),
    64: (63, 62, 60, 59),
}


@dataclass(frozen=True)
class TapSet:
    """A compiled feedback polynomial: tap indices plus the word mask.

    ``fallback`` records provenance: ``True`` when the base polynomial
    was synthesised by the dense fallback shape (width absent from the
    primitive table), so callers can tell a maximal-period table entry
    from a may-be-shorter-period synthetic one.  ``mask_int`` is the
    OR of ``1 << tap`` — the vectorized walk computes the feedback bit
    of a whole seed bank as ``parity(state & mask)`` in a handful of
    numpy ops instead of one Python ``state.bit(tap)`` per tap.
    """

    taps: tuple[int, ...]
    width: int
    fallback: bool = False

    def __post_init__(self) -> None:
        if not self.taps or any(not 0 <= t < self.width for t in self.taps):
            raise ValueError(
                f"invalid tap set {self.taps} for width {self.width}"
            )
        if len(set(self.taps)) != len(self.taps):
            raise ValueError(f"duplicate taps in {self.taps}")
        # Not a dataclass field: derived, excluded from eq/repr.
        object.__setattr__(
            self, "mask_int", sum(1 << tap for tap in self.taps)
        )

    @classmethod
    def for_width(cls, width: int, variant: int = 0) -> "TapSet":
        """The tap set :func:`taps_for_width` would return, compiled.

        ``variant`` perturbs the base taps to build polynomial banks;
        variant 0 is the table entry (primitive where known).  Widths
        absent from the table take the synthesised fallback polynomial
        (``fallback=True``).
        """
        base = _PRIMITIVE_TAPS.get(width)
        fallback = base is None
        if base is None:
            # Fallback: x^n + x^(n/2) + 1 -like shape (deduped for tiny
            # widths).
            base = tuple(
                sorted({width - 1, max(0, width // 2 - 1)}, reverse=True)
            )
        if variant == 0:
            return cls(base, width, fallback)
        # Add one extra tap pair, wrapping inside the register.
        extra = (variant * 2 - 1) % max(1, width - 1)
        taps = set(base) ^ {extra, (extra + 1) % width}
        if not taps:
            taps = set(base)
        return cls(tuple(sorted(taps, reverse=True)), width, fallback)

    def feedback(self, value: int) -> int:
        """The feedback bit for one scalar state value."""
        return (value & self.mask_int).bit_count() & 1


def taps_for_width(width: int, variant: int = 0) -> tuple[int, ...]:
    """A feedback tap set for ``width``-bit LFSRs (tap indices only;
    :meth:`TapSet.for_width` returns the compiled form)."""
    return TapSet.for_width(width, variant).taps


def default_polynomials(width: int, count: int = 4) -> list[tuple[int, ...]]:
    """A bank of ``count`` distinct tap sets for a multi-poly LFSR."""
    bank: list[tuple[int, ...]] = []
    variant = 0
    while len(bank) < count:
        taps = taps_for_width(width, variant)
        if taps not in bank:
            bank.append(taps)
        variant += 1
        if variant > 4 * count:
            break
    return bank


# repro: allow[kernel-purity] fixed log2(64)=6-step XOR fold; shift count is independent of bank size
@kernel
def _parity_words(words: np.ndarray) -> np.ndarray:
    """Per-element parity (0/1) of a ``uint64`` array, via XOR folding."""
    for shift in (32, 16, 8, 4, 2, 1):
        words = words ^ (words >> np.uint64(shift))
    return words & np.uint64(1)


# repro: allow[kernel-purity] O(length) clock walk, never O(seeds); each step advances the whole seed bank
@kernel
def _lfsr_walk_values(
    deltas: np.ndarray, masks: np.ndarray | np.uint64, width: int, length: int
) -> np.ndarray:
    """The vectorized bank walk both LFSR classes share.

    ``masks`` is either one scalar tap mask (plain LFSR) or a per-seed
    mask array (multi-polynomial: each seed already resolved its
    polynomial).  Every clock is ~10 numpy ops over the whole bank:
    masked-parity feedback, shift, mask to width.
    """
    n_seeds = int(deltas.shape[0])
    out = np.empty((n_seeds, length), dtype=np.uint64)
    width_mask = np.uint64((1 << width) - 1)
    one = np.uint64(1)
    state = deltas.copy()
    for clock in range(length):
        out[:, clock] = state
        if clock + 1 == length:
            break
        feedback = _parity_words(state & masks)
        state = ((state << one) | feedback) & width_mask
    return out


class Lfsr(TestPatternGenerator):
    """A Fibonacci LFSR with a fixed feedback polynomial.

    ``sigma`` is ignored by the state update (a plain LFSR has no usable
    input register); it is accepted so the triplet interface stays
    uniform.
    """

    def __init__(self, width: int, taps: tuple[int, ...] | None = None) -> None:
        super().__init__(width)
        self.tapset = (
            TapSet(tuple(taps), width)
            if taps is not None
            else TapSet.for_width(width)
        )
        self.taps = self.tapset.taps

    @property
    def name(self) -> str:
        return "lfsr"

    def cache_token(self) -> str:
        return f"{super().cache_token()}:taps={self.taps}"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        shifted = (state.value << 1) | self.tapset.feedback(state.value)
        return BitVector(shifted, self.width)

    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray:
        return _lfsr_walk_values(
            deltas, np.uint64(self.tapset.mask_int), self.width, length
        )

    def suggest_sigma(self, rng) -> BitVector:
        return BitVector.zeros(self.width)  # unused by the update


class MultiPolynomialLfsr(TestPatternGenerator):
    """An LFSR with a polynomial bank selected by the input register.

    The low bits of ``sigma`` index the bank, mirroring the
    multiple-polynomial reseeding scheme of [3]: each triplet carries its
    polynomial choice alongside the seed.
    """

    def __init__(
        self, width: int, polynomials: list[tuple[int, ...]] | None = None
    ) -> None:
        super().__init__(width)
        if polynomials is not None:
            self.tapsets = [TapSet(tuple(p), width) for p in polynomials]
        else:
            self.tapsets = [
                TapSet(taps, width) for taps in default_polynomials(width)
            ]
        if not self.tapsets:
            raise ValueError("polynomial bank must be non-empty")
        self.polynomials = [tapset.taps for tapset in self.tapsets]

    @property
    def name(self) -> str:
        return "mp-lfsr"

    def cache_token(self) -> str:
        return f"{super().cache_token()}:polys={self.polynomials}"

    def polynomial_for(self, sigma: BitVector) -> tuple[int, ...]:
        """The tap set ``sigma`` selects."""
        return self.tapset_for(sigma).taps

    def tapset_for(self, sigma: BitVector) -> TapSet:
        """The compiled :class:`TapSet` ``sigma`` selects."""
        return self.tapsets[sigma.value % len(self.tapsets)]

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        tapset = self.tapset_for(sigma)
        shifted = (state.value << 1) | tapset.feedback(state.value)
        return BitVector(shifted, self.width)

    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray:
        bank = np.array(
            [tapset.mask_int for tapset in self.tapsets], dtype=np.uint64
        )
        selected = (sigmas % np.uint64(len(self.tapsets))).astype(np.int64)
        return _lfsr_walk_values(deltas, bank[selected], self.width, length)

    def suggest_sigma(self, rng) -> BitVector:
        return BitVector(rng.randrange(len(self.tapsets)), self.width)
