"""LFSR-based TPGs, including the multi-polynomial reseeding generator.

Reseeding was born with LFSRs (Hellebrand et al. [3][4]): a seed loaded
into a linear feedback shift register expands into a pattern sequence.
The multi-polynomial variant stores a small bank of feedback polynomials
and lets each seed pick its polynomial through the input register — in
our triplet terms, ``sigma`` selects the polynomial and ``delta`` is the
seed, so the set-covering reseeding machinery applies unchanged.
"""

from __future__ import annotations

from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector

#: Primitive-polynomial tap tables (Fibonacci form, taps as bit indices
#: contributing to the feedback XOR) for a range of widths.  For widths
#: not listed, a dense fallback polynomial is synthesised; it may not be
#: primitive (shorter period), which the reseeding flow tolerates.
_PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    2: (1, 0),
    3: (2, 1),
    4: (3, 2),
    5: (4, 2),
    6: (5, 4),
    7: (6, 5),
    8: (7, 5, 4, 3),
    9: (8, 4),
    10: (9, 6),
    11: (10, 8),
    12: (11, 10, 9, 3),
    13: (12, 11, 10, 7),
    14: (13, 12, 11, 1),
    15: (14, 13),
    16: (15, 14, 12, 3),
    17: (16, 13),
    18: (17, 10),
    19: (18, 17, 16, 13),
    20: (19, 16),
    24: (23, 22, 21, 16),
    28: (27, 24),
    32: (31, 21, 1, 0),
    40: (39, 37, 20, 18),
    48: (47, 46, 20, 19),
    64: (63, 62, 60, 59),
}


def taps_for_width(width: int, variant: int = 0) -> tuple[int, ...]:
    """A feedback tap set for ``width``-bit LFSRs.

    ``variant`` perturbs the base taps to build polynomial banks; variant
    0 is the table entry (primitive where known).
    """
    base = _PRIMITIVE_TAPS.get(width)
    if base is None:
        # Fallback: x^n + x^(n/2) + 1 -like shape (deduped for tiny widths).
        base = tuple(sorted({width - 1, max(0, width // 2 - 1)}, reverse=True))
    if variant == 0:
        return base
    # Add one extra tap pair, wrapping inside the register.
    extra = (variant * 2 - 1) % max(1, width - 1)
    taps = set(base) ^ {extra, (extra + 1) % width}
    if not taps:
        taps = set(base)
    return tuple(sorted(taps, reverse=True))


def default_polynomials(width: int, count: int = 4) -> list[tuple[int, ...]]:
    """A bank of ``count`` distinct tap sets for a multi-poly LFSR."""
    bank: list[tuple[int, ...]] = []
    variant = 0
    while len(bank) < count:
        taps = taps_for_width(width, variant)
        if taps not in bank:
            bank.append(taps)
        variant += 1
        if variant > 4 * count:
            break
    return bank


class Lfsr(TestPatternGenerator):
    """A Fibonacci LFSR with a fixed feedback polynomial.

    ``sigma`` is ignored by the state update (a plain LFSR has no usable
    input register); it is accepted so the triplet interface stays
    uniform.
    """

    def __init__(self, width: int, taps: tuple[int, ...] | None = None) -> None:
        super().__init__(width)
        self.taps = tuple(taps) if taps is not None else taps_for_width(width)
        if not self.taps or any(not 0 <= t < width for t in self.taps):
            raise ValueError(f"invalid tap set {self.taps} for width {width}")

    @property
    def name(self) -> str:
        return "lfsr"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        feedback = 0
        for tap in self.taps:
            feedback ^= state.bit(tap)
        shifted = (state.value << 1) | feedback
        return BitVector(shifted, self.width)

    def suggest_sigma(self, rng) -> BitVector:
        return BitVector.zeros(self.width)  # unused by the update


class MultiPolynomialLfsr(TestPatternGenerator):
    """An LFSR with a polynomial bank selected by the input register.

    The low bits of ``sigma`` index the bank, mirroring the
    multiple-polynomial reseeding scheme of [3]: each triplet carries its
    polynomial choice alongside the seed.
    """

    def __init__(
        self, width: int, polynomials: list[tuple[int, ...]] | None = None
    ) -> None:
        super().__init__(width)
        self.polynomials = (
            [tuple(p) for p in polynomials]
            if polynomials is not None
            else default_polynomials(width)
        )
        if not self.polynomials:
            raise ValueError("polynomial bank must be non-empty")
        for taps in self.polynomials:
            if not taps or any(not 0 <= t < width for t in taps):
                raise ValueError(f"invalid tap set {taps} for width {width}")

    @property
    def name(self) -> str:
        return "mp-lfsr"

    def polynomial_for(self, sigma: BitVector) -> tuple[int, ...]:
        """The tap set ``sigma`` selects."""
        return self.polynomials[sigma.value % len(self.polynomials)]

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        feedback = 0
        for tap in self.polynomial_for(sigma):
            feedback ^= state.bit(tap)
        shifted = (state.value << 1) | feedback
        return BitVector(shifted, self.width)

    def suggest_sigma(self, rng) -> BitVector:
        return BitVector(rng.randrange(len(self.polynomials)), self.width)
