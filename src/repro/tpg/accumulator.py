"""Accumulator-based TPGs (the paper's three generators).

An accumulator TPG holds the running value in its state register and
combines it with the (frozen) input register each clock:

* adder:        ``S <- (S + sigma) mod 2^n``  (arithmetic BIST classic)
* subtracter:   ``S <- (S - sigma) mod 2^n``
* multiplier:   ``S <- (S * sigma) mod 2^n``

These model the "accumulator-based units including arithmetic functions
such as adder, multiplier and subtracter, which are quite common in the
actual SoCs" of Section 4.

The batched walks (:meth:`~repro.tpg.base.TestPatternGenerator.
evolve_batch`) are pure ``uint64`` numpy arithmetic: numpy integer
overflow wraps modulo ``2^64``, and because ``2^width`` divides
``2^64`` for every ``width <= 64``, masking the wrapped result to
``width`` bits gives exactly the mod-``2^width`` walk of the scalar
model.  The add/sub walks even have closed forms (``delta ± t*sigma``),
so a whole ``(n_seeds, length)`` bank materialises in one broadcast
expression with no per-clock loop at all.
"""

from __future__ import annotations

import numpy as np

from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector
from repro.utils.kernels import kernel


class AdderAccumulator(TestPatternGenerator):
    """Additive accumulator: the state walks an arithmetic progression.

    With an odd ``sigma`` the progression visits all ``2^n`` states
    before repeating, which is what makes adder accumulators useful
    pattern generators.
    """

    @property
    def name(self) -> str:
        return "adder"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        return state + sigma

    @kernel
    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray:
        # Closed form: state_t = delta + t * sigma (mod 2^width).
        steps = np.arange(length, dtype=np.uint64)
        mask = np.uint64((1 << self.width) - 1)
        return (deltas[:, None] + steps[None, :] * sigmas[:, None]) & mask

    def suggest_sigma(self, rng) -> BitVector:
        # An odd increment is coprime with 2^n: maximal period.
        return BitVector.random(self.width, rng).set_bit(0, 1)


class SubtracterAccumulator(TestPatternGenerator):
    """Subtractive accumulator: the adder's mirror image."""

    @property
    def name(self) -> str:
        return "subtracter"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        return state - sigma

    @kernel
    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray:
        # Closed form: state_t = delta - t * sigma (mod 2^width); uint64
        # subtraction wraps, and the mask reduces mod 2^width.
        steps = np.arange(length, dtype=np.uint64)
        mask = np.uint64((1 << self.width) - 1)
        return (deltas[:, None] - steps[None, :] * sigmas[:, None]) & mask

    def suggest_sigma(self, rng) -> BitVector:
        return BitVector.random(self.width, rng).set_bit(0, 1)


class MultiplierAccumulator(TestPatternGenerator):
    """Multiplicative accumulator.

    An even multiplicand shifts zeros into the low bits every clock and
    the state collapses toward 0, so :meth:`suggest_sigma` always
    returns an odd value (the multiplicative group mod ``2^n``).
    """

    @property
    def name(self) -> str:
        return "multiplier"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        return state * sigma

    # repro: allow[kernel-purity] O(length) geometric walk, never O(patterns*width); each clock multiplies the whole seed bank
    @kernel
    def _evolve_batch_values(
        self, deltas: np.ndarray, sigmas: np.ndarray, length: int
    ) -> np.ndarray:
        # Geometric walk: one bank-wide multiply per clock.
        out = np.empty((deltas.shape[0], length), dtype=np.uint64)
        mask = np.uint64((1 << self.width) - 1)
        state = deltas.copy()
        for clock in range(length):
            out[:, clock] = state
            if clock + 1 < length:
                state = (state * sigmas) & mask
        return out

    def suggest_sigma(self, rng) -> BitVector:
        sigma = BitVector.random(self.width, rng).set_bit(0, 1)
        if self.width >= 2 and sigma.value == 1:
            # sigma = 1 freezes the state; nudge to 3 (still odd).
            sigma = sigma.set_bit(1, 1)
        return sigma
