"""Gate-level realisations of the accumulator TPGs.

The Functional BIST premise is that the TPG *is* existing mission
hardware.  This module makes that concrete: it synthesises the
combinational next-state logic of the adder/subtracter accumulators as
gate-level :class:`~repro.circuit.netlist.Circuit` objects (ripple-carry
structure), so the generator itself can be

* simulated with the same packed logic simulator as the UUT,
* checked for equivalence against the behavioural model
  (property-tested in ``tests/test_tpg_hardware.py``), and
* *tested* — the TPG is mission logic, so its own stuck-at faults can
  be targeted by the very flow it drives.

Netlist interface: inputs ``s0..s{n-1}`` (state register), ``g0..g{n-1}``
(sigma register); outputs ``n0..n{n-1}`` (next state).
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.sim.logic import CompiledCircuit
from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector


def adder_accumulator_netlist(width: int, name: str | None = None) -> Circuit:
    """A ripple-carry adder: ``next = state + sigma (mod 2^width)``.

    Full-adder cell per bit: sum = a ^ b ^ cin; cout = (a&b) | (cin&(a^b)).
    The final carry-out is discarded (modular wrap).
    """
    return _ripple_netlist(width, subtract=False, name=name or f"acc_add{width}")


def subtracter_accumulator_netlist(width: int, name: str | None = None) -> Circuit:
    """A ripple-borrow subtracter: ``next = state - sigma (mod 2^width)``.

    Implemented as ``state + ~sigma + 1`` (two's complement): the sigma
    bits are inverted and the LSB carry-in is constant 1.
    """
    return _ripple_netlist(width, subtract=True, name=name or f"acc_sub{width}")


def _ripple_netlist(width: int, subtract: bool, name: str) -> Circuit:
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    inputs = [f"s{i}" for i in range(width)] + [f"g{i}" for i in range(width)]
    outputs = [f"n{i}" for i in range(width)]
    gates: list[Gate] = []
    carry: str | None = None
    if subtract:
        gates.append(Gate("c_in", GateType.CONST1, ()))
        carry = "c_in"
    for bit in range(width):
        a = f"s{bit}"
        if subtract:
            gates.append(Gate(f"gb{bit}", GateType.NOT, (f"g{bit}",)))
            b = f"gb{bit}"
        else:
            b = f"g{bit}"
        half = f"h{bit}"  # a ^ b
        gates.append(Gate(half, GateType.XOR, (a, b)))
        if carry is None:  # bit 0 of the adder: no carry-in
            gates.append(Gate(f"n{bit}", GateType.BUF, (half,)))
            if width > 1:
                gates.append(Gate(f"c{bit}", GateType.AND, (a, b)))
                carry = f"c{bit}"
        else:
            gates.append(Gate(f"n{bit}", GateType.XOR, (half, carry)))
            if bit < width - 1:
                gates.append(Gate(f"ab{bit}", GateType.AND, (a, b)))
                gates.append(Gate(f"hc{bit}", GateType.AND, (half, carry)))
                gates.append(Gate(f"c{bit}", GateType.OR, (f"ab{bit}", f"hc{bit}")))
                carry = f"c{bit}"
    return Circuit(name, inputs, outputs, gates)


class NetlistTpg(TestPatternGenerator):
    """A TPG whose next-state function is a gate-level netlist.

    The netlist must expose the interface documented in the module
    docstring (``s*``/``g*`` inputs, ``n*`` outputs, all of ``width``).
    Evolution runs the compiled netlist once per clock, demonstrating
    behaviour/structure equivalence for the accumulators and letting
    arbitrary custom hardware act as a generator.
    """

    def __init__(self, netlist: Circuit, width: int) -> None:
        super().__init__(width)
        expected_inputs = [f"s{i}" for i in range(width)] + [
            f"g{i}" for i in range(width)
        ]
        expected_outputs = [f"n{i}" for i in range(width)]
        if list(netlist.inputs) != expected_inputs:
            raise ValueError(
                f"netlist inputs {netlist.inputs[:4]}... do not match the "
                f"s*/g* convention for width {width}"
            )
        if list(netlist.outputs) != expected_outputs:
            raise ValueError(
                f"netlist outputs {netlist.outputs[:4]}... do not match the "
                f"n* convention for width {width}"
            )
        self.netlist = netlist
        self._compiled = CompiledCircuit(netlist)

    @property
    def name(self) -> str:
        return f"netlist:{self.netlist.name}"

    def cache_token(self) -> str:
        # The netlist's *contents* define the sequences, so the cache
        # identity must cover the gates, not just the circuit name —
        # two same-named netlists may differ structurally.
        import hashlib
        import json

        digest = hashlib.sha256(
            json.dumps(
                sorted(
                    [gate.name, gate.gtype.name, list(gate.fanins)]
                    for gate in self.netlist.gates.values()
                )
            ).encode()
        ).hexdigest()[:16]
        return f"{super().cache_token()}:netlist={digest}"

    def next_state(self, state: BitVector, sigma: BitVector) -> BitVector:
        self._check_vector("state", state)
        self._check_vector("sigma", sigma)
        stimulus = state.concat(sigma)
        return self._compiled.simulate_patterns([stimulus])[0]

    def suggest_sigma(self, rng) -> BitVector:
        # Mirror the behavioural accumulators: odd increments maximise
        # the walk period for both add and subtract structures.
        return BitVector.random(self.width, rng).set_bit(0, 1)
