"""Fixed-width bit vectors and pattern packing helpers.

The simulators in :mod:`repro.sim` operate on *packed* patterns: the
values of one circuit node across 64 test patterns are stored in a single
``numpy.uint64`` word, so a vectorised gate evaluation processes 64
patterns at once.  This module provides

* :class:`BitVector` — an immutable fixed-width bit vector used for test
  patterns, TPG seeds and register values,
* :func:`pack_patterns` / :func:`unpack_words` — vectorized conversion
  between per-pattern bit vectors and the word-parallel layout (the
  scalar reference implementations survive as
  :func:`pack_patterns_scalar` / :func:`unpack_words_scalar` for the
  differential suite), and
* :class:`PackedPatterns` — a pattern sequence carried in packed form,
  so pattern sets are packed once per session instead of once per
  simulator call,
* :func:`pack_values` / :meth:`PackedPatterns.from_values` — the
  value-array fast path the batched TPG evolution uses (pattern values
  as a ``uint64`` numpy array straight to the packed layout, no
  :class:`BitVector` round trip), and
* :func:`concat_packed` — in-layout concatenation of packed sequences
  (vectorized funnel shifts, no unpack/repack), and
* :class:`PackedPlanes` — the **three-valued** carrier: two bit-planes
  per signal (``value`` + ``care``) encoding 0/1/X at the same word
  parallelism, losslessly round-tripping with :class:`PackedPatterns`
  for X-free data (:meth:`PackedPlanes.from_packed` /
  :meth:`PackedPlanes.to_packed`).

The layout invariants are documented in ``docs/internals-bitpacking.md``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.kernels import kernel

WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1


class BitVector:
    """An immutable bit vector of fixed ``width``.

    Bit 0 is the least-significant bit.  Instances behave like small
    unsigned integers that remember their width: arithmetic used by the
    accumulator TPGs (``+``, ``-``, ``*``) wraps modulo ``2**width``.

    >>> v = BitVector(0b1010, 4)
    >>> v[1], v[0]
    (1, 0)
    >>> (v + BitVector(0b0110, 4)).value
    0
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        self._width = width
        self._value = value & ((1 << width) - 1)

    @property
    def value(self) -> int:
        """The integer value of the vector."""
        return self._value

    @property
    def width(self) -> int:
        """The number of bits in the vector."""
        return self._width

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Build a vector from a bit sequence, ``bits[0]`` being bit 0."""
        if not bits:
            raise ValueError("bits must be non-empty")
        value = 0
        for position, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"bit {position} is {bit!r}, expected 0 or 1")
            value |= bit << position
        return cls(value, len(bits))

    @classmethod
    def from_string(cls, text: str) -> "BitVector":
        """Parse a binary string, most-significant bit first.

        >>> BitVector.from_string("1010").value
        10
        """
        stripped = text.strip().replace("_", "")
        if not stripped or any(c not in "01" for c in stripped):
            raise ValueError(f"not a binary string: {text!r}")
        return cls(int(stripped, 2), len(stripped))

    @classmethod
    def zeros(cls, width: int) -> "BitVector":
        """The all-zero vector of the given width."""
        return cls(0, width)

    @classmethod
    def ones(cls, width: int) -> "BitVector":
        """The all-one vector of the given width."""
        return cls((1 << width) - 1, width)

    @classmethod
    def random(cls, width: int, rng) -> "BitVector":
        """A uniformly random vector drawn from ``rng`` (an RngStream or
        :class:`random.Random`-compatible object)."""
        return cls(rng.getrandbits(width), width)

    def bit(self, index: int) -> int:
        """The bit at ``index`` (0 = LSB)."""
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range for width {self._width}")
        return (self._value >> index) & 1

    def __getitem__(self, index: int) -> int:
        return self.bit(index)

    def bits(self) -> list[int]:
        """All bits as a list, index 0 first (LSB first)."""
        return [(self._value >> i) & 1 for i in range(self._width)]

    def set_bit(self, index: int, bit: int) -> "BitVector":
        """A copy with bit ``index`` set to ``bit``."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range for width {self._width}")
        if bit:
            return BitVector(self._value | (1 << index), self._width)
        return BitVector(self._value & ~(1 << index), self._width)

    def popcount(self) -> int:
        """Number of set bits."""
        return self._value.bit_count()

    def concat(self, other: "BitVector") -> "BitVector":
        """Concatenate: ``self`` occupies the low bits of the result."""
        return BitVector(
            self._value | (other._value << self._width), self._width + other._width
        )

    def slice(self, low: int, width: int) -> "BitVector":
        """Extract ``width`` bits starting at bit ``low``."""
        if low < 0 or width <= 0 or low + width > self._width:
            raise ValueError(
                f"slice [{low}:{low + width}) out of range for width {self._width}"
            )
        return BitVector((self._value >> low) & ((1 << width) - 1), width)

    def resized(self, width: int) -> "BitVector":
        """Zero-extend or truncate to ``width`` bits."""
        return BitVector(self._value, width)

    def _check_width(self, other: "BitVector") -> None:
        if self._width != other._width:
            raise ValueError(f"width mismatch: {self._width} vs {other._width}")

    def __add__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value + other._value, self._width)

    def __sub__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector((self._value - other._value) % (1 << self._width), self._width)

    def __mul__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value * other._value, self._width)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value & other._value, self._width)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value | other._value, self._width)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value ^ other._value, self._width)

    def __invert__(self) -> "BitVector":
        return BitVector(~self._value & ((1 << self._width) - 1), self._width)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._value == other._value and self._width == other._width

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __len__(self) -> int:
        return self._width

    def __iter__(self) -> Iterator[int]:
        return iter(self.bits())

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"BitVector(0b{self.to_string()}, width={self._width})"

    def to_string(self) -> str:
        """Binary string, most-significant bit first."""
        return format(self._value, f"0{self._width}b")


def n_words_for(n_patterns: int) -> int:
    """Number of 64-bit words needed for ``n_patterns`` patterns."""
    return (n_patterns + WORD_BITS - 1) // WORD_BITS


@kernel
def tail_mask(n_patterns: int) -> np.ndarray:
    """Per-word mask of valid pattern bits for ``n_patterns`` patterns."""
    n_words = n_words_for(n_patterns)
    mask = np.full(n_words, np.uint64(_WORD_MASK), dtype=np.uint64)
    tail = n_patterns % WORD_BITS
    if tail and n_words:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_patterns_scalar(patterns: Sequence[BitVector], width: int) -> np.ndarray:
    """Reference scalar implementation of :func:`pack_patterns`.

    One Python-level bit test per (pattern, input bit) — obviously
    correct, and kept as the oracle the vectorized implementation is
    differentially tested against.
    """
    if not patterns:
        return np.zeros((width, 0), dtype=np.uint64)
    n_words = (len(patterns) + WORD_BITS - 1) // WORD_BITS
    out = np.zeros((width, n_words), dtype=np.uint64)
    for index, pattern in enumerate(patterns):
        if pattern.width != width:
            raise ValueError(
                f"pattern {index} has width {pattern.width}, expected {width}"
            )
        word, bit = divmod(index, WORD_BITS)
        value = pattern.value
        for input_bit in range(width):
            if (value >> input_bit) & 1:
                out[input_bit, word] |= np.uint64(1 << bit)
    return out


def unpack_words_scalar(words: np.ndarray, n_patterns: int) -> list[BitVector]:
    """Reference scalar implementation of :func:`unpack_words`."""
    width = words.shape[0]
    patterns: list[BitVector] = []
    for index in range(n_patterns):
        word, bit = divmod(index, WORD_BITS)
        value = 0
        for input_bit in range(width):
            if (int(words[input_bit, word]) >> bit) & 1:
                value |= 1 << input_bit
        patterns.append(BitVector(value, width))
    return patterns


@kernel
def pack_values(values: np.ndarray, width: int) -> np.ndarray:
    """Pack a ``uint64`` value-per-pattern array into word-parallel rows.

    The fast path behind :meth:`PackedPatterns.from_values`: batched TPG
    evolution produces pattern *values* as a numpy array, and this
    converts them straight to the ``(width, n_words)`` layout of
    :func:`pack_patterns` without materialising ``BitVector`` objects.
    Bit-identical to ``pack_patterns(ints_to_bitvectors(values, width),
    width)`` for every ``width <= 64`` (the ``uint64`` carrier limit;
    wider banks must go through :func:`pack_patterns`).

    Values wider than ``width`` are rejected — the same contract as the
    per-pattern width check of :func:`pack_patterns`.
    """
    if not 1 <= width <= WORD_BITS:
        raise ValueError(f"pack_values supports widths 1..64, got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
    n_patterns = int(values.size)
    if n_patterns == 0:
        return np.zeros((width, 0), dtype=np.uint64)
    if width < WORD_BITS and bool(
        (values >> np.uint64(width)).any()
    ):
        bad = int(np.flatnonzero(values >> np.uint64(width))[0])
        raise ValueError(
            f"pattern {bad} value {int(values[bad])} does not fit width {width}"
        )
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    # (n_patterns, 64) bit matrix, LSB first — mirrors pack_patterns'
    # little-endian byte serialisation.
    bits = np.unpackbits(
        values.astype(np.dtype("<u8"), copy=False).view(np.uint8).reshape(n_patterns, 8),
        axis=1,
        bitorder="little",
    )[:, :width]
    padded = np.zeros((n_words * WORD_BITS, width), dtype=np.uint8)
    padded[:n_patterns] = bits
    packed = np.packbits(padded, axis=0, bitorder="little")
    return (
        np.ascontiguousarray(packed.T)
        .view(np.dtype("<u8"))
        .astype(np.uint64, copy=False)
    )


def pack_patterns(patterns: Sequence[BitVector], width: int) -> np.ndarray:
    """Pack per-pattern bit vectors into word-parallel node words.

    Returns an array of shape ``(width, n_words)`` with dtype ``uint64``:
    ``result[b, w]`` holds bit ``b`` of patterns ``64*w .. 64*w+63`` (one
    pattern per word bit, pattern ``64*w`` in bit 0 of the word).

    Patterns narrower or wider than ``width`` are rejected.

    Vectorized: pattern values are serialised to a little-endian byte
    matrix in one pass, then transposed bit-by-bit with
    ``np.unpackbits`` / ``np.packbits`` — no per-(pattern, bit) Python
    loop.  Bit-identical to :func:`pack_patterns_scalar`.
    """
    if not patterns:
        return np.zeros((width, 0), dtype=np.uint64)
    n_patterns = len(patterns)
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    n_bytes = (width + 7) // 8
    for index, pattern in enumerate(patterns):
        if pattern.width != width:
            raise ValueError(
                f"pattern {index} has width {pattern.width}, expected {width}"
            )
    raw = b"".join(p._value.to_bytes(n_bytes, "little") for p in patterns)
    byte_matrix = np.frombuffer(raw, dtype=np.uint8).reshape(n_patterns, n_bytes)
    # (n_patterns, width): bits[i, b] = bit b of pattern i.
    bits = np.unpackbits(byte_matrix, axis=1, bitorder="little")[:, :width]
    padded = np.zeros((n_words * WORD_BITS, width), dtype=np.uint8)
    padded[:n_patterns] = bits
    # Pack along the pattern axis: byte j of column b covers patterns
    # 8j..8j+7; 8 consecutive bytes assemble one little-endian word.
    packed = np.packbits(padded, axis=0, bitorder="little")
    return (
        np.ascontiguousarray(packed.T)
        .view(np.dtype("<u8"))
        .astype(np.uint64, copy=False)
    )


def unpack_words(words: np.ndarray, n_patterns: int) -> list[BitVector]:
    """Inverse of :func:`pack_patterns`.

    ``words`` has shape ``(width, n_words)``; the result is ``n_patterns``
    bit vectors of width ``words.shape[0]``.  Vectorized like
    :func:`pack_patterns`; bit-identical to :func:`unpack_words_scalar`.
    """
    width = words.shape[0]
    if n_patterns == 0:
        return []
    if n_patterns > words.shape[1] * WORD_BITS:
        raise ValueError(
            f"{n_patterns} patterns do not fit in {words.shape[1]} words"
        )
    byte_view = (
        np.ascontiguousarray(words)
        .astype(np.dtype("<u8"), copy=False)
        .view(np.uint8)
        .reshape(width, -1)
    )
    # (width, n_patterns) -> (n_patterns, width): bit b of pattern i.
    bits = np.unpackbits(byte_view, axis=1, bitorder="little")[:, :n_patterns]
    packed = np.packbits(bits.T, axis=1, bitorder="little")
    row_bytes = packed.tobytes()
    n_bytes = packed.shape[1]
    return [
        BitVector(
            int.from_bytes(row_bytes[i * n_bytes : (i + 1) * n_bytes], "little"),
            width,
        )
        for i in range(n_patterns)
    ]


class PackedPatterns:
    """A pattern sequence in its word-parallel packed form.

    The simulators consume patterns as ``(width, n_words)`` ``uint64``
    words; packing a ``Sequence[BitVector]`` is pure conversion
    overhead, so callers that reuse one pattern sequence across many
    queries (sessions, dictionaries, signature bisection) pack **once**
    and hand the same :class:`PackedPatterns` to every call.

    Instances are treated as immutable: the word array is shared between
    views, never copied defensively, and must not be written to.
    """

    __slots__ = ("words", "n_patterns", "width")

    def __init__(self, words: np.ndarray, n_patterns: int) -> None:
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        if not 0 <= n_patterns <= words.shape[1] * WORD_BITS:
            raise ValueError(
                f"{n_patterns} patterns do not fit in {words.shape[1]} words"
            )
        self.words = words
        self.n_patterns = n_patterns
        self.width = int(words.shape[0])

    @classmethod
    def from_patterns(
        cls, patterns: Sequence[BitVector], width: int
    ) -> "PackedPatterns":
        """Pack ``patterns`` once (validating widths against ``width``)."""
        return cls(pack_patterns(list(patterns), width), len(patterns))

    @classmethod
    def from_values(cls, values: np.ndarray, width: int) -> "PackedPatterns":
        """Pack a ``uint64`` value array (one value per pattern) without
        round-tripping through :class:`BitVector` objects — the carrier
        the batched TPG evolution (:meth:`repro.tpg.base.
        TestPatternGenerator.evolve_batch`) hands to the simulators.
        Bit-identical to :meth:`from_patterns` on the same integers;
        ``width`` must be <= 64 (the ``uint64`` value limit)."""
        values = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
        return cls(pack_values(values, width), int(values.size))

    @property
    def n_words(self) -> int:
        """Number of 64-pattern words per input row."""
        return int(self.words.shape[1])

    def tail_mask(self) -> np.ndarray:
        """Per-word mask of valid pattern bits (one entry per buffer
        word — trailing all-zero mask words when the buffer holds more
        words than ``n_patterns`` needs)."""
        needed = n_words_for(self.n_patterns)
        if needed == self.n_words:
            return tail_mask(self.n_patterns)
        mask = np.zeros(self.n_words, dtype=np.uint64)
        mask[:needed] = tail_mask(self.n_patterns)
        return mask

    @kernel
    def slice(self, start: int, stop: int) -> "PackedPatterns":
        """The packed form of ``patterns[start:stop]``.

        Word-aligned slices are views; unaligned slices funnel the bits
        down with vectorized word shifts (no unpack/repack round trip).
        """
        if not 0 <= start <= stop <= self.n_patterns:
            raise ValueError(
                f"slice [{start}:{stop}) out of range for {self.n_patterns} patterns"
            )
        n_sliced = stop - start
        if n_sliced == 0:
            return PackedPatterns(
                np.zeros((self.width, 0), dtype=np.uint64), 0
            )
        word_start, bit_start = divmod(start, WORD_BITS)
        n_out = (n_sliced + WORD_BITS - 1) // WORD_BITS
        if bit_start == 0:
            return PackedPatterns(
                self.words[:, word_start : word_start + n_out], n_sliced
            )
        lo = self.words[:, word_start : word_start + n_out]
        out = lo >> np.uint64(bit_start)
        hi = self.words[:, word_start + 1 : word_start + n_out + 1]
        if hi.shape[1]:
            out[:, : hi.shape[1]] |= hi << np.uint64(WORD_BITS - bit_start)
        return PackedPatterns(out, n_sliced)

    def unpack(self) -> list[BitVector]:
        """The patterns back as :class:`BitVector` objects."""
        return unpack_words(self.words, self.n_patterns)

    def __len__(self) -> int:
        return self.n_patterns

    def __bool__(self) -> bool:
        return self.n_patterns > 0

    def __repr__(self) -> str:
        return (
            f"PackedPatterns(n_patterns={self.n_patterns}, width={self.width})"
        )


# repro: allow[kernel-purity] O(pieces) funnel-shift walk, never O(patterns); each piece ORs in word-parallel
@kernel
def concat_packed(pieces: Sequence[PackedPatterns]) -> PackedPatterns:
    """Concatenate packed pattern sequences without unpacking.

    The result holds the patterns of every piece in order — exactly
    ``PackedPatterns.from_patterns(p0 + p1 + ..., width)`` — assembled
    with vectorized word shifts.  Pieces whose pattern count is not a
    word multiple land at unaligned bit offsets; their words are OR-ed
    in as a shifted low/high pair, the same funnel-shift technique as
    :meth:`PackedPatterns.slice`.  Tail bits beyond each piece's
    ``n_patterns`` are masked off first, so slices of larger banks (the
    per-seed rows :func:`repro.reseeding.triplet.packed_test_sets`
    yields) concatenate safely.
    """
    pieces = list(pieces)
    if not pieces:
        raise ValueError("concat_packed needs at least one piece")
    width = pieces[0].width
    for piece in pieces:
        if piece.width != width:
            raise ValueError(
                f"width mismatch in concat_packed: {piece.width} vs {width}"
            )
    pieces = [piece for piece in pieces if piece.n_patterns]
    if not pieces:
        return PackedPatterns(np.zeros((width, 0), dtype=np.uint64), 0)
    total = sum(piece.n_patterns for piece in pieces)
    out = np.zeros((width, n_words_for(total)), dtype=np.uint64)
    offset = 0
    for piece in pieces:
        needed = n_words_for(piece.n_patterns)
        words = piece.words[:, :needed] & tail_mask(piece.n_patterns)
        word_start, bit_start = divmod(offset, WORD_BITS)
        if bit_start == 0:
            out[:, word_start : word_start + needed] |= words
        else:
            shift = np.uint64(bit_start)
            out[:, word_start : word_start + needed] |= words << shift
            spill = words >> np.uint64(WORD_BITS - bit_start)
            hi = out[:, word_start + 1 : word_start + 1 + needed]
            hi |= spill[:, : hi.shape[1]]
        offset += piece.n_patterns
    return PackedPatterns(out, total)


#: Three-valued X code in the unpacked (per-pattern) code views: a code
#: array holds 0, 1, or ``X_CODE`` per (input bit, pattern).
X_CODE = 2


@kernel
def _pack_bit_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(width, n_patterns)`` 0/1 byte matrix into the
    ``(width, n_words)`` ``uint64`` word layout (pattern ``64*w + k``
    at bit ``k`` of word ``w``)."""
    width, n_patterns = bits.shape
    n_words = n_words_for(n_patterns) or 1
    padded = np.zeros((width, n_words * WORD_BITS), dtype=np.uint8)
    padded[:, :n_patterns] = bits
    packed = np.packbits(padded, axis=1, bitorder="little")
    return (
        np.ascontiguousarray(packed)
        .view(np.dtype("<u8"))
        .astype(np.uint64, copy=False)
    )


@kernel
def _unpack_bit_rows(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`_pack_bit_rows`: word rows back to a
    ``(width, n_patterns)`` 0/1 byte matrix."""
    width = words.shape[0]
    byte_view = (
        np.ascontiguousarray(words)
        .astype(np.dtype("<u8"), copy=False)
        .view(np.uint8)
        .reshape(width, -1)
    )
    return np.unpackbits(byte_view, axis=1, bitorder="little")[:, :n_patterns]


class PackedPlanes:
    """A three-valued (0/1/X) pattern sequence as paired bit-planes.

    Each signal row carries **two** ``uint64`` planes in the
    :class:`PackedPatterns` word layout:

    * ``value`` — the value bit (meaningful only where care is set);
    * ``care``  — the care bit (1 = known 0/1, 0 = unknown X);

    with the invariant ``value & ~care == 0`` (X lanes carry value 0) —
    the same encoding as the batch PODEM's five-valued lanes
    (:mod:`repro.atpg.values5`), here along the *pattern* axis.  Like
    :class:`PackedPatterns`, instances are immutable by convention:
    plane arrays are shared between views and must not be written to,
    and bits beyond ``n_patterns`` in the final word are unspecified —
    consumers mask with :meth:`tail_mask`.
    """

    __slots__ = ("value", "care", "n_patterns", "width")

    def __init__(
        self, value: np.ndarray, care: np.ndarray, n_patterns: int
    ) -> None:
        value = np.asarray(value, dtype=np.uint64)
        care = np.asarray(care, dtype=np.uint64)
        if value.ndim != 2 or value.shape != care.shape:
            raise ValueError(
                f"plane shapes must match and be 2-D, got {value.shape} vs {care.shape}"
            )
        if not 0 <= n_patterns <= value.shape[1] * WORD_BITS:
            raise ValueError(
                f"{n_patterns} patterns do not fit in {value.shape[1]} words"
            )
        if bool(np.any(value & ~care)):
            raise ValueError(
                "plane invariant violated: value bits set on X lanes "
                "(value & ~care != 0)"
            )
        self.value = value
        self.care = care
        self.n_patterns = n_patterns
        self.width = int(value.shape[0])

    @classmethod
    def from_packed(cls, packed: PackedPatterns) -> "PackedPlanes":
        """Lift a 2-valued packed sequence: every valid pattern bit
        becomes a known 0/1 (care = 1), tail bits become X.  Lossless —
        :meth:`to_packed` returns the exact words back."""
        mask = packed.tail_mask()
        care = np.broadcast_to(mask, packed.words.shape).copy()
        return cls(packed.words & mask, care, packed.n_patterns)

    @classmethod
    def from_codes(cls, codes: np.ndarray) -> "PackedPlanes":
        """Pack a ``(width, n_patterns)`` three-valued code matrix
        (0/1/:data:`X_CODE`) into planes.  Inverse of :meth:`to_codes`;
        bit-identical to :func:`planes_from_codes_scalar`."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D, got shape {codes.shape}")
        if bool(np.any(codes > X_CODE)):
            raise ValueError(f"three-valued codes must be 0/1/{X_CODE}")
        v = _pack_bit_rows((codes == 1).astype(np.uint8))
        c = _pack_bit_rows((codes != X_CODE).astype(np.uint8))
        return cls(v, c, int(codes.shape[1]))

    def to_codes(self) -> np.ndarray:
        """The planes back as a ``(width, n_patterns)`` code matrix."""
        v = _unpack_bit_rows(self.value, self.n_patterns)
        c = _unpack_bit_rows(self.care, self.n_patterns)
        return np.where(c.astype(bool), v, np.uint8(X_CODE)).astype(np.uint8)

    def to_packed(self) -> PackedPatterns:
        """Drop back to the 2-valued carrier.

        Only valid for X-free data: every valid pattern bit must be a
        known 0/1.  Raises :class:`ValueError` when any X survives, so
        an unknown can never silently decay to a hard 0.
        """
        mask = self.tail_mask()
        if bool(np.any((self.care & mask) != mask)):
            raise ValueError(
                f"{self.x_count()} X lanes present; to_packed() requires "
                "fully known (2-valued) data"
            )
        return PackedPatterns(self.value & mask, self.n_patterns)

    @property
    def n_words(self) -> int:
        """Number of 64-pattern words per plane row."""
        return int(self.value.shape[1])

    def tail_mask(self) -> np.ndarray:
        """Per-word mask of valid pattern bits (see
        :meth:`PackedPatterns.tail_mask`)."""
        needed = n_words_for(self.n_patterns)
        if needed == self.n_words:
            return tail_mask(self.n_patterns)
        mask = np.zeros(self.n_words, dtype=np.uint64)
        mask[:needed] = tail_mask(self.n_patterns)
        return mask

    def x_count(self) -> int:
        """Number of X lanes across all rows and valid patterns."""
        unknown = ~self.care & self.tail_mask()
        return int(
            np.unpackbits(
                np.ascontiguousarray(unknown).view(np.uint8), bitorder="little"
            ).sum()
        )

    def __len__(self) -> int:
        return self.n_patterns

    def __bool__(self) -> bool:
        return self.n_patterns > 0

    def __repr__(self) -> str:
        return (
            f"PackedPlanes(n_patterns={self.n_patterns}, width={self.width}, "
            f"x_count={self.x_count()})"
        )


def planes_from_codes_scalar(codes: np.ndarray) -> "PackedPlanes":
    """Reference scalar implementation of :meth:`PackedPlanes.from_codes`.

    One Python-level bit test per (row, pattern) — obviously correct,
    kept as the oracle for the vectorized packer.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    width, n_patterns = codes.shape
    n_words = n_words_for(n_patterns) or 1
    value = np.zeros((width, n_words), dtype=np.uint64)
    care = np.zeros((width, n_words), dtype=np.uint64)
    for row in range(width):
        for index in range(n_patterns):
            word, bit = divmod(index, WORD_BITS)
            code = int(codes[row, index])
            if code == 1:
                value[row, word] |= np.uint64(1 << bit)
            if code != X_CODE:
                care[row, word] |= np.uint64(1 << bit)
    return PackedPlanes(value, care, n_patterns)


#: What simulator pattern arguments accept: an unpacked sequence or the
#: pre-packed form.
PatternsLike = Sequence[BitVector] | PackedPatterns


def as_packed(patterns: PatternsLike, width: int) -> PackedPatterns:
    """Coerce a pattern argument to :class:`PackedPatterns` (validating
    the width either way)."""
    if isinstance(patterns, PackedPatterns):
        if patterns.width != width:
            raise ValueError(
                f"packed patterns have width {patterns.width}, expected {width}"
            )
        return patterns
    return PackedPatterns.from_patterns(patterns, width)


#: What 3-valued simulator arguments accept: true planes, or any
#: 2-valued pattern form (lifted X-free via ``PackedPlanes.from_packed``).
PlanesLike = PackedPlanes | PackedPatterns | Sequence[BitVector]


def as_planes(patterns: PlanesLike, width: int) -> PackedPlanes:
    """Coerce a pattern argument to :class:`PackedPlanes` (validating
    the width either way).  2-valued input lifts X-free."""
    if isinstance(patterns, PackedPlanes):
        if patterns.width != width:
            raise ValueError(
                f"packed planes have width {patterns.width}, expected {width}"
            )
        return patterns
    return PackedPlanes.from_packed(as_packed(patterns, width))


def ints_to_bitvectors(values: Iterable[int], width: int) -> list[BitVector]:
    """Convenience: wrap integers as width-``width`` bit vectors."""
    return [BitVector(v, width) for v in values]
