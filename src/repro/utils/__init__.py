"""Shared low-level utilities: bit vectors, RNG streams, ASCII tables."""

from repro.utils.bitvec import BitVector, pack_patterns, unpack_words
from repro.utils.registry import Registry, UnknownComponentError
from repro.utils.rng import RngStream, derive_seed
from repro.utils.tables import AsciiTable

__all__ = [
    "AsciiTable",
    "BitVector",
    "Registry",
    "RngStream",
    "UnknownComponentError",
    "derive_seed",
    "pack_patterns",
    "unpack_words",
]
