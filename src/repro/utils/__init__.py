"""Shared low-level utilities: bit vectors, RNG streams, ASCII tables."""

from repro.utils.bitvec import (
    BitVector,
    PackedPatterns,
    as_packed,
    pack_patterns,
    unpack_words,
)
from repro.utils.registry import Registry, UnknownComponentError
from repro.utils.rng import RngStream, derive_seed
from repro.utils.tables import AsciiTable

__all__ = [
    "AsciiTable",
    "BitVector",
    "PackedPatterns",
    "Registry",
    "RngStream",
    "UnknownComponentError",
    "as_packed",
    "derive_seed",
    "pack_patterns",
    "unpack_words",
]
