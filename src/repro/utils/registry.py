"""Named-component registries with uniform lookup errors.

The library dispatches several families of pluggable components by
name: test pattern generators (``repro.tpg.registry``), covering
solvers (``repro.setcover.registry``) and flow stages
(``repro.flow.stages``).  Before this module each family invented its
own lookup error (``make_tpg`` raised a bare ``KeyError`` while the
cover ``method=`` path raised ``ValueError``), so callers could not
handle "unknown component" uniformly.  :class:`Registry` gives every
family the same ``register`` / ``names`` / ``create`` surface, and
:class:`UnknownComponentError` — a subclass of *both* ``KeyError`` and
``ValueError`` for backwards compatibility — carries a "did you mean"
suggestion computed from the registered names.
"""

from __future__ import annotations

import difflib
from typing import Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class UnknownComponentError(KeyError, ValueError):
    """An unregistered component name was requested.

    Subclasses both ``KeyError`` (the historical ``make_tpg`` contract)
    and ``ValueError`` (the historical ``solve_cover(method=...)``
    contract) so existing ``except``/``pytest.raises`` sites keep
    working while new code can catch the precise type.
    """

    def __init__(
        self, kind: str, name: str, known: Iterable[str]
    ) -> None:
        known = sorted(known)
        message = f"unknown {kind} {name!r}; known: {', '.join(known) or '(none)'}"
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.5)
        if suggestions:
            message += f" — did you mean {' or '.join(map(repr, suggestions))}?"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.known = known
        self.suggestions = suggestions

    def __str__(self) -> str:
        # KeyError.__str__ wraps the message in quotes; report it plainly.
        return self.args[0]


class Registry(Generic[T]):
    """A name -> factory mapping with uniform error reporting.

    ``kind`` names the component family in error messages ("TPG",
    "cover solver", "stage", ...).  The mapping API (``in``, ``len``,
    iteration, ``[]``) mirrors a plain dict so existing callers of the
    module-level registry dicts keep working.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, T] = {}

    def register(self, name: str, factory: T) -> T:
        """Register ``factory`` under ``name`` (last registration wins).

        Returns the factory so the method doubles as a decorator body.
        """
        self._factories[name] = factory
        return factory

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._factories)

    def get(self, name: str) -> T:
        """The factory for ``name``; raises :class:`UnknownComponentError`
        (with suggestions) when unregistered."""
        try:
            return self._factories[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self._factories) from None

    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)
