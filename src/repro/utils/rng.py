"""Deterministic, named random-number streams.

Every stochastic component of the library (sigma selection in the
Initial Reseeding Builder, the synthetic circuit generator, the GATSBY
genetic algorithm, the GRASP metaheuristic, ...) draws from its own
*named* stream derived from a master seed.  Two consequences:

* experiments are reproducible bit-for-bit given the master seed, and
* adding randomness to one component never perturbs another component's
  stream (no shared-global-state coupling).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *names: str | int) -> int:
    """Derive a child seed from ``master_seed`` and a path of names.

    The derivation is a SHA-256 hash, so child seeds are statistically
    independent and stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngStream(random.Random):
    """A named deterministic random stream.

    ``RngStream(seed, "gatsby", "mutation")`` always yields the same
    sequence for the same arguments.  Inherits the full
    :class:`random.Random` API (``getrandbits``, ``randrange``,
    ``choice``, ``shuffle``, ``sample``, ...).
    """

    def __init__(self, master_seed: int, *names: str | int) -> None:
        self._names = tuple(names)
        self._master_seed = master_seed
        super().__init__(derive_seed(master_seed, *names))

    def child(self, *names: str | int) -> "RngStream":
        """A sub-stream further namespaced under this stream."""
        return RngStream(self._master_seed, *self._names, *names)

    def __repr__(self) -> str:
        path = "/".join(str(n) for n in self._names) or "<root>"
        return f"RngStream(seed={self._master_seed}, path={path})"
