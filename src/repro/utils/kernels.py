"""The packed-kernel registry: marking the word-parallel hot paths.

The repo's performance story rests on a convention: the functions that
touch ``uint64`` bit-planes (gate evaluation, plane algebra, pattern
packing, bank evolution) must stay **word-parallel** — numpy calls over
whole arrays, no Python-level per-element work.  Until now that
convention lived in docstrings; this module makes it declarative:

* decorate a hot-path function with :func:`kernel` and it lands in
  :data:`KERNELS` (a plain :class:`~repro.utils.registry.Registry`
  keyed by dotted name), and
* the static-analysis pass (``repro check``, rule ``kernel-purity``)
  discovers the decorator **syntactically** and rejects Python-level
  loops, ``int()`` scalarization and ``.tolist()`` inside any decorated
  function — see ``docs/static-analysis.md``.

Scalar reference implementations (``*_scalar`` oracles kept for the
differential suites) must *not* be decorated; the rule enforces that
naming convention too.  The decorator itself is an identity function —
registration costs one dict insert at import time and nothing at call
time, so decorating a kernel cannot slow it down.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.utils.registry import Registry

F = TypeVar("F", bound=Callable)

__all__ = ["KERNELS", "kernel"]

#: Every registered packed kernel, keyed by ``module.qualname``.
KERNELS: Registry[Callable] = Registry("packed kernel")


def kernel(func: F) -> F:
    """Register ``func`` as a packed word-parallel kernel.

    Pure identity at call time; the registration makes the function
    discoverable (``KERNELS.names()``) and opts it into the
    ``kernel-purity`` and ``dtype-discipline`` static-analysis rules.
    """
    KERNELS.register(f"{func.__module__}.{func.__qualname__}", func)
    return func
