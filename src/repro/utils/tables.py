"""Minimal ASCII table rendering for experiment reports.

The experiment drivers (:mod:`repro.experiments`) print the same rows
the paper's tables report; this module renders them legibly without any
third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class AsciiTable:
    """Accumulate rows, then render an aligned ASCII table.

    >>> t = AsciiTable(["circuit", "#triplets"])
    >>> t.add_row(["c880", 5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    +---------+-----------+
    | circuit | #triplets |
    +---------+-----------+
    | c880    |         5 |
    +---------+-----------+
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.headers = [str(h) for h in headers]
        self.title = title
        self._rows: list[list[str]] = []
        self._numeric: list[bool] = [True] * len(self.headers)

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; length must match the headers."""
        cells = ["" if cell is None else _format_cell(cell) for cell in row]
        raw = list(row)
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        for index, cell in enumerate(raw):
            if cell is not None and not isinstance(cell, (int, float)):
                self._numeric[index] = False
        self._rows.append(cells)

    @property
    def rows(self) -> list[list[str]]:
        """The formatted rows added so far."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """The table as a multi-line string."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(separator)
        lines.append(
            "| " + " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)) + " |"
        )
        lines.append(separator)
        for row in self._rows:
            cells = []
            for index, (cell, width) in enumerate(zip(row, widths)):
                if self._numeric[index]:
                    cells.append(cell.rjust(width))
                else:
                    cells.append(cell.ljust(width))
            lines.append("| " + " | ".join(cells) + " |")
        lines.append(separator)
        return "\n".join(lines)

    def render_csv(self) -> str:
        """The table as comma-separated values (headers first)."""
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self._rows)
        return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str,
    y_label: str,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render an (x, y) series as a crude ASCII scatter plot.

    Used by the Figure-2 driver to show the reseedings-vs-test-length
    trade-off curve in the terminal.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if not xs:
        return "(empty series)"
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [f"{y_label} (top={y_max:g}, bottom={y_min:g})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    return "\n".join(lines)
