"""The ``python -m repro`` command-line interface.

Subcommands:

* ``catalog`` — list the benchmark circuits and their statistics
  (``--json`` for machine-readable output);
* ``run``     — execute the full reseeding flow for one circuit/TPG and
  print the per-triplet report (``--json`` for the schema-versioned
  result document);
* ``sweep``   — run the circuits x TPGs x configs grid through the
  :func:`repro.flow.sweep.sweep` orchestrator, with optional artifact
  cache and process pool;
* ``atpg``    — run the ATPG substrate alone;
* ``diagnose`` — inject known stuck-at faults, capture the fail log,
  and run the diagnosis subsystem (effect-cause, dictionary, or
  signature-only MISR bisection) against it;
* ``check``   — run the repo's own AST-based static-analysis rules
  (kernel purity, dtype discipline, asyncio hygiene, telemetry
  consistency, schema-kind coverage, public-API drift, docs links);
* ``table1`` / ``table2`` / ``figure2`` — the experiment drivers
  (equivalent to ``python -m repro.experiments.<name>``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.circuits import CATALOG, load_circuit
from repro.utils.tables import AsciiTable


def _cmd_catalog(args: argparse.Namespace) -> int:
    """``repro catalog`` — the benchmark circuits and their statistics.

    Examples::

        python -m repro catalog          # ASCII table
        python -m repro catalog --json   # machine-readable entries
    """
    if args.json:
        entries = [
            {
                "name": entry.name,
                "inputs": entry.n_inputs,
                "outputs": entry.n_outputs,
                "dffs": entry.n_dffs,
                "gates": entry.n_gates,
                "sequential": entry.is_sequential,
                "embedded": entry.embedded,
            }
            for entry in CATALOG.values()
        ]
        print(json.dumps(entries, indent=2))
        return 0
    table = AsciiTable(
        ["name", "PI", "PO", "FF", "gates", "kind", "source"],
        title="Benchmark catalog (ISCAS'85 / ISCAS'89 size classes)",
    )
    for entry in CATALOG.values():
        table.add_row(
            [
                entry.name,
                entry.n_inputs,
                entry.n_outputs,
                entry.n_dffs or "-",
                entry.n_gates,
                "sequential" if entry.is_sequential else "combinational",
                "embedded" if entry.embedded else "synthetic",
            ]
        )
    print(table.render())
    return 0


def _trace_telemetry(args: argparse.Namespace, root_name: str, **attrs):
    """When ``--trace`` is set, build tracing telemetry and open a root
    span wrapping the whole command (so the flow's child spans account
    for its wall time); returns ``(telemetry, root_span)``."""
    if not getattr(args, "trace", None):
        return None, None
    from repro.obs import Telemetry

    telemetry = Telemetry.on(trace=True)
    root = telemetry.tracer.span(root_name, **attrs)
    root.__enter__()
    return telemetry, root


def _traced_section(telemetry, name: str, **attrs):
    """A child span when tracing, a no-op context otherwise — used to
    account for command work that happens outside the flow stages
    (circuit load, fail-log synthesis) so the tree covers the command's
    whole wall time."""
    if telemetry is None:
        import contextlib

        return contextlib.nullcontext()
    return telemetry.tracer.span(name, **attrs)


def _finish_trace(telemetry, root, path: str) -> None:
    """Close the root span and write the trace document to ``path``."""
    from pathlib import Path

    from repro.obs.export import trace_document

    root.__exit__(None, None, None)
    document = trace_document(telemetry.tracer)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    print(
        f"trace {document['trace_id']} written to {path} "
        f"(render with: python -m repro trace {path})",
        file=sys.stderr,
    )


def _pipeline_config_from_args(args: argparse.Namespace):
    from repro.flow.pipeline import PipelineConfig

    return PipelineConfig(
        seed=args.seed,
        evolution_length=args.evolution_length,
        cover_method=args.method,
        max_random_patterns=args.max_random_patterns,
        backtrack_limit=args.backtrack_limit,
        atpg_engine=args.atpg_engine,
        grasp_iterations=args.grasp_iterations,
        matrix_workers=args.workers,
        values=args.values,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    """``repro run`` — the full reseeding flow for one circuit/TPG.

    Examples::

        python -m repro run --circuit s1238 --tpg adder --evolution-length 32
        python -m repro run --circuit c880 --tpg mp-lfsr --cache .repro-cache --json
        python -m repro run --circuit s953 --uniform   # + shared-T refinement
    """
    from repro.flow.report import solution_report
    from repro.flow.session import Session
    from repro.reseeding.uniform import storage_comparison, uniformize_solution

    config = _pipeline_config_from_args(args)
    telemetry, root = _trace_telemetry(
        args, "repro.run", circuit=args.circuit, tpg=args.tpg
    )
    with _traced_section(telemetry, "session.setup", circuit=args.circuit):
        session = Session.from_name(
            args.circuit,
            scale=args.scale,
            config=config,
            cache=args.cache,
            telemetry=telemetry,
        )
    with _traced_section(telemetry, "session.run", tpg=args.tpg):
        result = session.run(args.tpg)
    if args.uniform:
        uniform = uniformize_solution(result.trimmed)
        comparison = storage_comparison(result.trimmed, uniform)
    if telemetry is not None:
        _finish_trace(telemetry, root, args.trace)
    if args.json:
        payload = result.to_dict()
        if args.uniform:
            # Extra top-level key; from_dict ignores it, so the document
            # still round-trips as a pipeline_result.
            payload["uniform"] = {
                "shared_length": uniform.shared_length,
                **comparison,
            }
        print(json.dumps(payload, indent=2))
        return 0
    print(solution_report(result))
    if args.uniform:
        print(
            "\nuniform-T refinement: shared T = "
            f"{uniform.shared_length}, ROM "
            f"{comparison['variable_t_bits']} -> {comparison['uniform_t_bits']} bits, "
            f"test length {comparison['variable_t_test_length']} -> "
            f"{comparison['uniform_t_test_length']}"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep`` — a circuits x TPGs x evolution-lengths grid.

    Examples::

        python -m repro sweep --circuits c880 s1238 --tpgs adder multiplier \\
            --evolution-lengths 16 32 64 --cache .repro-cache --workers 2
        python -m repro sweep --circuits s420 --tpgs adder --csv
    """
    from repro.flow.pipeline import PipelineConfig
    from repro.flow.session import ArtifactCache
    from repro.flow.sweep import sweep

    base = PipelineConfig(
        seed=args.seed,
        cover_method=args.method,
        max_random_patterns=args.max_random_patterns,
        backtrack_limit=args.backtrack_limit,
        atpg_engine=args.atpg_engine,
        grasp_iterations=args.grasp_iterations,
    )
    cache = ArtifactCache(args.cache) if args.cache else None
    grid = sweep(
        args.circuits,
        args.tpgs,
        base_config=base,
        evolution_lengths=args.evolution_lengths,
        scale=args.scale,
        cache=cache,
        workers=args.workers,
    )
    if args.json:
        document = {
            "circuits": args.circuits,
            "tpgs": args.tpgs,
            "evolution_lengths": args.evolution_lengths,
            "scale": args.scale,
            "seed": args.seed,
            "cells": [
                {
                    "circuit": o.circuit,
                    "tpg": o.tpg,
                    "evolution_length": o.config.evolution_length,
                    "n_triplets": o.result.n_triplets,
                    "test_length": o.result.test_length,
                    "n_necessary": o.result.n_necessary,
                    "n_from_solver": o.result.n_from_solver,
                    "from_cache": o.from_cache,
                    "seconds": round(o.seconds, 4),
                }
                for o in grid
            ],
            "cache": cache.stats() if cache else None,
        }
        print(json.dumps(document, indent=2))
        return 0
    table = AsciiTable(
        ["circuit", "TPG", "T", "#Triplets", "TestLength", "cached", "seconds"],
        title="Sweep: circuits x TPGs x configs",
    )
    for outcome in grid:
        table.add_row(
            [
                outcome.circuit,
                outcome.tpg,
                outcome.config.evolution_length,
                outcome.result.n_triplets,
                outcome.result.test_length,
                "yes" if outcome.from_cache else "-",
                f"{outcome.seconds:.2f}",
            ]
        )
    print(table.render_csv() if args.csv else table.render())
    print(f"\n{grid.n_cached}/{len(grid)} cells served from the artifact cache")
    if cache is not None:
        stats = cache.stats()
        print(f"cache: {stats['hits']} hits, {stats['misses']} misses")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    """``repro atpg`` — the deterministic test-generation substrate alone.

    Examples::

        python -m repro atpg --circuit c880
        python -m repro atpg --circuit s420 --patterns   # print the test set
        python -m repro atpg --circuit s1238 --engine recursive
    """
    from repro.atpg.engine import AtpgEngine

    circuit = load_circuit(args.circuit, scale=args.scale)
    engine = AtpgEngine(circuit, seed=args.seed, engine=args.engine)
    result = engine.run()
    print(result.summary())
    if args.patterns:
        for pattern in result.test_set:
            print(pattern.to_string())
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    """``repro diagnose`` — inject faults, capture the fail log, diagnose.

    Examples::

        python -m repro diagnose --circuit c880 --top-k 5
        python -m repro diagnose --circuit c880 --signature-only    # MISR bisection
        python -m repro diagnose --circuit c880 --method dictionary --cache .repro-cache
        python -m repro diagnose --circuit c880 --fault 'g27->g28.1/SA0' --json
    """
    from repro.diagnosis import (
        choose_faults,
        fault_representatives,
        make_fail_log,
        parse_fault,
    )
    from repro.faults.collapse import collapse_faults
    from repro.flow.session import Session
    from repro.utils.bitvec import BitVector
    from repro.utils.rng import RngStream

    telemetry, root = _trace_telemetry(
        args, "repro.diagnose", circuit=args.circuit
    )
    with _traced_section(telemetry, "session.setup", circuit=args.circuit):
        session = Session.from_name(
            args.circuit, scale=args.scale, cache=args.cache, telemetry=telemetry
        )
    with _traced_section(telemetry, "diagnose.prepare"):
        circuit = session.circuit
        faults = collapse_faults(circuit)
        rng = RngStream(args.seed, "diagnose", circuit.name)
        patterns = [
            BitVector.random(circuit.n_inputs, rng) for _ in range(args.patterns)
        ]
        if args.fault:
            injected = tuple(parse_fault(spec) for spec in args.fault)
        else:
            # Draw from the faults this pattern set actually detects, so
            # the synthetic scenario always produces a non-empty fail log.
            detected = session.simulator.detected(patterns, faults)
            detectable = [f for f, flag in zip(faults, detected) if flag]
            if not detectable:
                print(
                    "no detectable faults under this pattern set", file=sys.stderr
                )
                return 1
            injected = choose_faults(detectable, args.faults, rng.child("pick"))
        fail_log = make_fail_log(
            circuit, patterns, injected, session.simulator.compiled
        )
    method = "signature" if args.signature_only else args.method
    with _traced_section(telemetry, "session.diagnose", method=method):
        result = session.diagnose(
            fail_log,
            method=method,
            faults=faults,
            top_k=args.top_k,
            min_window=args.min_window,
        )
    if telemetry is not None:
        _finish_trace(telemetry, root, args.trace)
    representatives = fault_representatives(circuit)
    ranks = {
        str(fault): result.rank_of(representatives.get(fault, fault))
        for fault in injected
    }
    if args.json:
        payload = result.to_dict()
        payload["injected"] = [str(fault) for fault in injected]
        payload["injected_ranks"] = ranks
        print(json.dumps(payload, indent=2))
        return 0
    print(result.summary())
    table = AsciiTable(
        ["rank", "fault", "score", "match", "mispredict", "miss", "responses"],
        title=f"{circuit.name}: top {len(result.candidates)} candidates ({result.mode})",
    )
    for rank, candidate in enumerate(result.candidates, start=1):
        table.add_row(
            [
                rank,
                str(candidate.fault),
                candidate.score,
                candidate.n_match,
                candidate.n_mispredicted,
                candidate.n_missed,
                "-" if candidate.n_response_match is None
                else candidate.n_response_match,
            ]
        )
    print(table.render())
    for fault in injected:
        rank = ranks[str(fault)]
        print(
            f"injected {fault}: "
            + (f"ranked #{rank}" if rank else f"not in top {args.top_k}")
        )
    if result.window is not None:
        total = max(result.n_patterns, 1)
        print(
            f"bisection: window [{result.window[0]}, {result.window[1]}), "
            f"{result.oracle_queries} oracle queries, "
            f"{result.patterns_resimulated}/{result.n_patterns} patterns "
            f"re-simulated ({100 * result.patterns_resimulated / total:.1f}%)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — BIST diagnosis as a batching HTTP service.

    Examples::

        python -m repro serve --port 8731 --store .repro-store
        python -m repro serve --host 0.0.0.0 --batch-window-ms 25 --max-batch 64
        python -m repro serve --metrics   # Prometheus text at GET /metrics

    Stop with SIGTERM (or Ctrl-C): the worker drains — finishes every
    accepted request, flushes responses — and exits 0.
    """
    from repro.serve import ServeConfig, run

    return run(
        ServeConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            timeout_ms=args.timeout_ms,
            store=args.store,
            metrics=args.metrics,
        )
    )


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro check`` — the repo's own static-analysis rule engine.

    Examples::

        python -m repro check                       # all rules, human output
        python -m repro check --json                # machine-readable report
        python -m repro check --rule kernel-purity  # one rule (repeatable)
        python -m repro check --update-baseline     # accept current findings
    """
    from pathlib import Path

    from repro.analysis import BASELINE_NAME, run_check, save_baseline
    from repro.utils.registry import UnknownComponentError

    root = Path(args.root).resolve()
    baseline = Path(args.baseline) if args.baseline else root / BASELINE_NAME
    try:
        if args.update_baseline:
            # Baseline nothing: run with an empty baseline, save what remains.
            report = run_check(root, rules=args.rule, baseline_path=None)
            count = save_baseline(baseline, report.findings)
            print(f"baseline {baseline}: {count} entries")
            return 0
        report = run_check(
            root,
            rules=args.rule,
            baseline_path=baseline if baseline.exists() else None,
        )
    except UnknownComponentError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace`` — render a ``--trace`` document as a profile table.

    Examples::

        python -m repro run --circuit s420 --tpg adder --trace trace.json
        python -m repro trace trace.json
    """
    from pathlib import Path

    from repro.obs.export import profile_table, validate_trace_document

    document = validate_trace_document(json.loads(Path(args.file).read_text()))
    print(profile_table(document))
    return 0


def _delegate(module_main):
    def runner(args: argparse.Namespace) -> int:
        module_main(args.rest)
        return 0

    return runner


def _add_flow_knobs(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by ``run`` and ``sweep`` (the PipelineConfig surface)."""
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=2001)
    parser.add_argument(
        "--method",
        default="auto",
        choices=["auto", "ilp", "bnb", "grasp", "greedy"],
        help="covering solver",
    )
    parser.add_argument(
        "--max-random-patterns",
        type=int,
        default=4096,
        help="ATPG random-phase pattern budget (default 4096)",
    )
    parser.add_argument(
        "--backtrack-limit",
        type=int,
        default=250,
        help="PODEM backtrack limit per fault (default 250)",
    )
    parser.add_argument(
        "--atpg-engine",
        default="batch",
        choices=["batch", "recursive"],
        help="deterministic top-off engine: fault-parallel batch PODEM "
        "(default) or the scalar recursive oracle",
    )
    parser.add_argument(
        "--values",
        type=int,
        default=2,
        choices=[2, 3],
        help="logic value system: 2 (default) or 3 (0/1/X planes — "
        "pessimistic detection, X-masked MISR signatures)",
    )
    parser.add_argument(
        "--grasp-iterations",
        type=int,
        default=30,
        help="GRASP restarts when the metaheuristic solver runs (default 30)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width (Detection Matrix rows for `run`, "
        "circuits for `sweep`; default serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="artifact-cache directory: warm runs skip ATPG and matrices",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the report/table",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="list benchmark circuits")
    catalog.add_argument(
        "--json", action="store_true", help="emit the catalog as JSON"
    )
    catalog.set_defaults(func=_cmd_catalog)

    run = sub.add_parser("run", help="run the reseeding flow")
    run.add_argument("--circuit", required=True)
    run.add_argument("--tpg", default="adder")
    run.add_argument("--evolution-length", type=int, default=32)
    _add_flow_knobs(run)
    run.add_argument(
        "--uniform",
        action="store_true",
        help="also report the uniform-T (shared length) refinement",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a span-tree trace document (render with `repro trace`)",
    )
    run.set_defaults(func=_cmd_run)

    sweep_cmd = sub.add_parser(
        "sweep", help="run a circuits x TPGs x configs grid"
    )
    sweep_cmd.add_argument("--circuits", nargs="+", required=True)
    sweep_cmd.add_argument(
        "--tpgs",
        nargs="+",
        default=["adder"],
        help="TPG names (default: adder)",
    )
    sweep_cmd.add_argument(
        "--evolution-lengths",
        nargs="+",
        type=int,
        default=[32],
        metavar="T",
        help="one flow config per evolution length (default: 32)",
    )
    _add_flow_knobs(sweep_cmd)
    sweep_cmd.add_argument(
        "--csv", action="store_true", help="emit CSV instead of an ASCII table"
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    diagnose = sub.add_parser(
        "diagnose", help="diagnose an injected-fault BIST fail log"
    )
    diagnose.add_argument("--circuit", required=True)
    diagnose.add_argument("--scale", type=float, default=1.0)
    diagnose.add_argument("--seed", type=int, default=2001)
    diagnose.add_argument(
        "--patterns",
        type=int,
        default=256,
        help="random test patterns applied in the session (default 256)",
    )
    diagnose.add_argument(
        "--faults",
        type=int,
        default=1,
        help="number of random detectable faults to inject (default 1)",
    )
    diagnose.add_argument(
        "--fault",
        action="append",
        metavar="SPEC",
        help="inject an explicit fault ('net/SA0' or 'net->gate.pin/SA1'); "
        "repeatable, overrides --faults",
    )
    diagnose.add_argument(
        "--method",
        default="effect_cause",
        choices=["effect_cause", "dictionary", "signature", "multiplet"],
        help="diagnosis engine (default effect_cause)",
    )
    diagnose.add_argument(
        "--signature-only",
        action="store_true",
        help="BIST signature mode: bisect with MISR prefix probes, "
        "diagnose only the localised window (same as --method signature)",
    )
    diagnose.add_argument(
        "--min-window",
        type=int,
        default=None,
        help="bisection stops when the window reaches this many patterns",
    )
    diagnose.add_argument(
        "--top-k", type=int, default=10, help="candidates reported (default 10)"
    )
    diagnose.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="artifact-cache directory: warm runs load the fault dictionary",
    )
    diagnose.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned diagnosis result as JSON",
    )
    diagnose.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a span-tree trace document (render with `repro trace`)",
    )
    diagnose.set_defaults(func=_cmd_diagnose)

    atpg = sub.add_parser("atpg", help="run the ATPG substrate alone")
    atpg.add_argument("--circuit", required=True)
    atpg.add_argument("--scale", type=float, default=0.25)
    atpg.add_argument("--seed", type=int, default=2001)
    atpg.add_argument(
        "--engine",
        default="batch",
        choices=["batch", "recursive"],
        help="deterministic top-off engine (default batch)",
    )
    atpg.add_argument(
        "--patterns", action="store_true", help="print the test patterns"
    )
    atpg.set_defaults(func=_cmd_atpg)

    serve = sub.add_parser(
        "serve", help="serve diagnosis/ATPG/sweep over HTTP with batching"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8731, help="TCP port (0 for ephemeral)"
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=10.0,
        help="how long to hold a request for batch companions (default 10)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most requests fused into one compute pass (default 32)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="bounded request queue; beyond it, shed with 429 (default 256)",
    )
    serve.add_argument(
        "--timeout-ms",
        type=int,
        default=30_000,
        help="default per-request deadline (default 30000)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="shared artifact-store directory (mountable by many workers)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="expose Prometheus text metrics at GET /metrics",
    )
    serve.set_defaults(func=_cmd_serve)

    check = sub.add_parser(
        "check", help="run the repo's static-analysis rules"
    )
    check.add_argument(
        "--root", default=".", help="repository root to analyse (default: cwd)"
    )
    check.add_argument(
        "--rule",
        action="append",
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: all registered rules)",
    )
    check.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of accepted findings "
        "(default: <root>/.repro-baseline.json when present)",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the schema-versioned check report as JSON",
    )
    check.set_defaults(func=_cmd_check)

    trace = sub.add_parser(
        "trace", help="render a --trace span document as a profile table"
    )
    trace.add_argument("file", help="trace JSON written by run/diagnose --trace")
    trace.set_defaults(func=_cmd_trace)

    for name in ("table1", "table2", "figure2"):
        experiment = sub.add_parser(
            name, help=f"regenerate the paper's {name}", add_help=False
        )
        experiment.add_argument("rest", nargs=argparse.REMAINDER)
        if name == "table1":
            from repro.experiments.table1 import main as table1_main

            experiment.set_defaults(func=_delegate(table1_main))
        elif name == "table2":
            from repro.experiments.table2 import main as table2_main

            experiment.set_defaults(func=_delegate(table2_main))
        else:
            from repro.experiments.figure2 import main as figure2_main

            experiment.set_defaults(func=_delegate(figure2_main))
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Delegate experiment subcommands wholesale: argparse's REMAINDER no
    # longer swallows unrecognised options after the subcommand name
    # (python/cpython#61252), so route around the top-level parser.  The
    # build_parser() stubs for these names exist for `repro -h` only.
    if argv and argv[0] in ("table1", "table2", "figure2"):
        from repro.experiments.figure2 import main as figure2_main
        from repro.experiments.table1 import main as table1_main
        from repro.experiments.table2 import main as table2_main

        delegate = {
            "table1": table1_main,
            "table2": table2_main,
            "figure2": figure2_main,
        }[argv[0]]
        delegate(argv[1:])
        return 0
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
