"""The ``python -m repro`` command-line interface.

Subcommands:

* ``catalog`` — list the benchmark circuits and their statistics;
* ``run``     — execute the full reseeding pipeline for one circuit/TPG
  and print the per-triplet report;
* ``atpg``    — run the ATPG substrate alone;
* ``table1`` / ``table2`` / ``figure2`` — the experiment drivers
  (equivalent to ``python -m repro.experiments.<name>``).
"""

from __future__ import annotations

import argparse
import sys

from repro.circuits import CATALOG, load_circuit
from repro.utils.tables import AsciiTable


def _cmd_catalog(args: argparse.Namespace) -> int:
    table = AsciiTable(
        ["name", "PI", "PO", "FF", "gates", "kind", "source"],
        title="Benchmark catalog (ISCAS'85 / ISCAS'89 size classes)",
    )
    for entry in CATALOG.values():
        table.add_row(
            [
                entry.name,
                entry.n_inputs,
                entry.n_outputs,
                entry.n_dffs or "-",
                entry.n_gates,
                "sequential" if entry.is_sequential else "combinational",
                "embedded" if entry.embedded else "synthetic",
            ]
        )
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.flow.pipeline import PipelineConfig, ReseedingPipeline
    from repro.flow.report import solution_report
    from repro.reseeding.uniform import storage_comparison, uniformize_solution

    circuit = load_circuit(args.circuit, scale=args.scale)
    config = PipelineConfig(
        seed=args.seed,
        evolution_length=args.evolution_length,
        cover_method=args.method,
    )
    result = ReseedingPipeline(circuit, args.tpg, config).run()
    print(solution_report(result))
    if args.uniform:
        uniform = uniformize_solution(result.trimmed)
        comparison = storage_comparison(result.trimmed, uniform)
        print(
            "\nuniform-T refinement: shared T = "
            f"{uniform.shared_length}, ROM "
            f"{comparison['variable_t_bits']} -> {comparison['uniform_t_bits']} bits, "
            f"test length {comparison['variable_t_test_length']} -> "
            f"{comparison['uniform_t_test_length']}"
        )
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.atpg.engine import AtpgEngine

    circuit = load_circuit(args.circuit, scale=args.scale)
    engine = AtpgEngine(circuit, seed=args.seed)
    result = engine.run()
    print(result.summary())
    if args.patterns:
        for pattern in result.test_set:
            print(pattern.to_string())
    return 0


def _delegate(module_main):
    def runner(args: argparse.Namespace) -> int:
        module_main(args.rest)
        return 0

    return runner


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser("catalog", help="list benchmark circuits")
    catalog.set_defaults(func=_cmd_catalog)

    run = sub.add_parser("run", help="run the reseeding pipeline")
    run.add_argument("--circuit", required=True)
    run.add_argument("--tpg", default="adder")
    run.add_argument("--scale", type=float, default=0.25)
    run.add_argument("--seed", type=int, default=2001)
    run.add_argument("--evolution-length", type=int, default=32)
    run.add_argument(
        "--method",
        default="auto",
        choices=["auto", "ilp", "bnb", "grasp", "greedy"],
        help="covering solver",
    )
    run.add_argument(
        "--uniform",
        action="store_true",
        help="also report the uniform-T (shared length) refinement",
    )
    run.set_defaults(func=_cmd_run)

    atpg = sub.add_parser("atpg", help="run the ATPG substrate alone")
    atpg.add_argument("--circuit", required=True)
    atpg.add_argument("--scale", type=float, default=0.25)
    atpg.add_argument("--seed", type=int, default=2001)
    atpg.add_argument(
        "--patterns", action="store_true", help="print the test patterns"
    )
    atpg.set_defaults(func=_cmd_atpg)

    for name in ("table1", "table2", "figure2"):
        experiment = sub.add_parser(
            name, help=f"regenerate the paper's {name}", add_help=False
        )
        experiment.add_argument("rest", nargs=argparse.REMAINDER)
        if name == "table1":
            from repro.experiments.table1 import main as table1_main

            experiment.set_defaults(func=_delegate(table1_main))
        elif name == "table2":
            from repro.experiments.table2 import main as table2_main

            experiment.set_defaults(func=_delegate(table2_main))
        else:
            from repro.experiments.figure2 import main as figure2_main

            experiment.set_defaults(func=_delegate(figure2_main))
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
