"""The Detection Matrix (paper Section 3).

``D`` has one row per candidate triplet and one column per target fault;
``D[i, j] = 1`` iff some pattern of triplet ``i``'s test set detects
fault ``j``.  The optimal-reseeding problem is then::

    minimize   sum(x)
    subject to D^T x >= 1,   x in {0,1}^M

i.e. unate set covering over the rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.reseeding.triplet import EvolveBatch, Triplet, packed_test_sets
from repro.sim.batch import BatchFaultSimulator, parallel_detection_rows
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator


@dataclass
class DetectionMatrix:
    """Rows = triplets, columns = faults, boolean detection entries."""

    triplets: list[Triplet]
    faults: list[Fault]
    matrix: np.ndarray  # bool, shape (n_triplets, n_faults)

    def __post_init__(self) -> None:
        expected = (len(self.triplets), len(self.faults))
        if self.matrix.shape != expected:
            raise ValueError(
                f"matrix shape {self.matrix.shape} != (triplets, faults) {expected}"
            )
        if self.matrix.dtype != np.bool_:
            self.matrix = self.matrix.astype(bool)

    @property
    def n_triplets(self) -> int:
        """Row count (the paper's #Triplets, = |ATPGTS| initially)."""
        return len(self.triplets)

    @property
    def n_faults(self) -> int:
        """Column count (the paper's #Faults)."""
        return len(self.faults)

    @property
    def shape(self) -> tuple[int, int]:
        """(n_triplets, n_faults) — Table 2's 'Initial Matrix' column."""
        return (self.n_triplets, self.n_faults)

    def covers_all_faults(self) -> bool:
        """True iff every fault column has at least one detecting row
        (the guarantee the initial reseeding is built to provide)."""
        if self.n_faults == 0:
            return True
        return bool(self.matrix.any(axis=0).all())

    def undetected_faults(self) -> list[Fault]:
        """Faults no candidate triplet detects (must be empty for a
        well-formed initial reseeding)."""
        if self.n_triplets == 0:
            return list(self.faults)
        covered = self.matrix.any(axis=0)
        return [f for f, hit in zip(self.faults, covered) if not hit]

    def density(self) -> float:
        """Fraction of 1 entries (a difficulty indicator for covering)."""
        if self.matrix.size == 0:
            return 0.0
        return float(self.matrix.mean())

    def triplet_fault_sets(self) -> list[set[int]]:
        """Per-row sets of covered fault column indices (F(triplet_i))."""
        return [set(np.flatnonzero(self.matrix[i])) for i in range(self.n_triplets)]


def build_detection_matrix(
    circuit: Circuit,
    tpg: TestPatternGenerator,
    triplets: list[Triplet],
    faults: list[Fault],
    simulator: BatchFaultSimulator | None = None,
    workers: int | None = None,
    evolve: EvolveBatch | None = None,
) -> DetectionMatrix:
    """Fault-simulate every triplet's test set over ``faults``.

    This is the only simulation-heavy step of the set-covering approach —
    the paper's point that "the number of fault simulations is reduced
    and limited to the construction of the Detection Matrix".  The
    candidate-seed bank is evolved in one word-parallel
    :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch` call per
    shared length (:func:`~repro.reseeding.triplet.packed_test_sets`),
    so the rows reach the simulator already packed — no per-pattern
    Python loop, no re-packing (``evolve`` swaps in the session's
    caching provider).  Rows are streamed through
    :meth:`BatchFaultSimulator.detection_matrix_rows`,
    which packs them word-aligned into chunks — every row reuses the
    same cached cone-union schedules, and a whole chunk of rows shares
    one fault-free simulation and one ``detect_words`` per fault batch.
    ``workers=N`` opts in to row-parallel construction over a process
    pool: the packed rows and pre-built plans are shared with the
    workers (``multiprocessing.shared_memory`` / fork inheritance), so
    jobs carry only row ranges; the result is identical to the serial
    path.
    """
    pattern_sets = packed_test_sets(tpg, triplets, evolve=evolve)
    if workers is not None and workers > 1:
        matrix = parallel_detection_rows(circuit, pattern_sets, faults, workers)
    else:
        simulator = simulator or FaultSimulator(circuit)
        matrix = np.zeros((len(triplets), len(faults)), dtype=bool)
        for row, values in enumerate(
            simulator.detection_matrix_rows(pattern_sets, faults)
        ):
            matrix[row, :] = values
    return DetectionMatrix(list(triplets), list(faults), matrix)
