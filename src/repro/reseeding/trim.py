"""Test-length trimming (paper Section 4).

"The global test length reported in Table 1 is computed deleting from
each test set TS_i the last subsequence of patterns not contributing to
the fault coverage AFC_i": after the covering pass fixes *which*
triplets run, each triplet only needs to evolve until the last pattern
that first-detects some still-undetected fault.  Later patterns add
nothing and are cut, shortening the global test length without touching
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.reseeding.triplet import (
    EvolveBatch,
    ReseedingSolution,
    Triplet,
    packed_test_sets,
)
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator


@dataclass(frozen=True)
class TrimmedSolution:
    """A reseeding solution with per-triplet trimmed lengths.

    ``delta_coverage[i]`` is the number of faults triplet ``i`` newly
    detects in sequence order (the paper's AFC_i, as a fault count).
    """

    solution: ReseedingSolution
    delta_coverage: tuple[int, ...]
    undetected: tuple[Fault, ...]

    @property
    def test_length(self) -> int:
        """Global test length after trimming."""
        return self.solution.test_length

    @property
    def n_triplets(self) -> int:
        """Triplet count (unchanged by trimming)."""
        return self.solution.n_triplets


def trim_solution(
    circuit: Circuit,
    tpg: TestPatternGenerator,
    triplets: list[Triplet],
    faults: list[Fault],
    simulator: BatchFaultSimulator | None = None,
    evolve: EvolveBatch | None = None,
) -> TrimmedSolution:
    """Trim each triplet to its last useful pattern, in sequence order.

    The selected triplets' test sets are evolved up front as one
    seed-axis :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch`
    bank per shared length (``evolve`` swaps in the session's caching
    provider) and fed to the simulator in packed form.  Processing
    triplets in the given order with fault dropping: for each
    triplet, find the first-detection index of every still-undetected
    fault; the triplet's trimmed length is ``1 + max`` of those indices
    (at least 1, since the seed pattern itself is always applied).
    Coverage over ``faults`` is exactly preserved (property-tested).
    """
    simulator = simulator or FaultSimulator(circuit)
    remaining = list(faults)
    trimmed: list[Triplet] = []
    deltas: list[int] = []
    pattern_rows = packed_test_sets(tpg, triplets, evolve=evolve)
    for triplet, patterns in zip(triplets, pattern_rows):
        if not remaining or not patterns:
            trimmed.append(triplet.with_length(min(1, triplet.length)))
            deltas.append(0)
            continue
        first_hits = simulator.first_detection_index(patterns, remaining)
        hit_indices = [i for i in first_hits if i is not None]
        if not hit_indices:
            # The covering pass should never select a useless triplet,
            # but tolerate it: keep only the seed pattern.
            trimmed.append(triplet.with_length(min(1, triplet.length)))
            deltas.append(0)
            continue
        keep_length = max(hit_indices) + 1
        trimmed.append(triplet.with_length(keep_length))
        deltas.append(len(hit_indices))
        remaining = [
            fault for fault, hit in zip(remaining, first_hits) if hit is None
        ]
    return TrimmedSolution(
        ReseedingSolution.from_list(trimmed), tuple(deltas), tuple(remaining)
    )
