"""The Initial Reseeding Builder (paper Section 3.1 and Figure 1).

Builds the starting reseeding ``T`` from the ATPG test set: one
candidate triplet per ATPG pattern ``p_i`` with ``delta = p_i``, a
randomly selected ``sigma`` (per-TPG sanitised), and a single evolution
length ``T`` "experimentally tuned and applied to all the triplets".
Because each triplet's first emitted pattern is its own ``delta``, the
union of the candidate test sets contains ``ATPGTS`` itself, so the
initial reseeding detects all of ``F`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.engine import AtpgResult
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.reseeding.detection_matrix import DetectionMatrix, build_detection_matrix
from repro.reseeding.triplet import Triplet
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


@dataclass
class InitialReseeding:
    """The candidate triplet pool ``T`` plus its Detection Matrix."""

    triplets: list[Triplet]
    detection_matrix: DetectionMatrix
    evolution_length: int

    @property
    def n_triplets(self) -> int:
        """|T| — equals the ATPG test length by construction."""
        return len(self.triplets)


class InitialReseedingBuilder:
    """Builds ``T`` and the Detection Matrix for one circuit + TPG."""

    def __init__(
        self,
        circuit: Circuit,
        tpg: TestPatternGenerator,
        seed: int = 2001,
        simulator: FaultSimulator | None = None,
    ) -> None:
        if tpg.width != circuit.n_inputs:
            raise ValueError(
                f"TPG width {tpg.width} != circuit input count {circuit.n_inputs}"
            )
        self.circuit = circuit
        self.tpg = tpg
        self.seed = seed
        self.simulator = simulator or FaultSimulator(circuit)

    def build(
        self,
        atpg_patterns: list[BitVector],
        faults: list[Fault],
        evolution_length: int = 64,
        workers: int | None = None,
        evolve=None,
    ) -> InitialReseeding:
        """One candidate triplet per ATPG pattern, plus the matrix.

        The whole candidate pool shares one evolution length, so the
        matrix rows come from a single seed-axis
        :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch` bank
        (``evolve`` swaps in a caching provider, see
        :data:`~repro.reseeding.triplet.EvolveBatch`).
        ``workers=N`` opts in to row-parallel matrix construction.
        Raises if the resulting matrix does not cover every fault —
        that would violate the construction invariant (pattern 0 of each
        evolution is the ATPG pattern itself).
        """
        if evolution_length < 1:
            raise ValueError("evolution_length must be >= 1")
        rng = RngStream(self.seed, "initial-reseeding", self.circuit.name, self.tpg.name)
        triplets = [
            Triplet(pattern, self.tpg.suggest_sigma(rng), evolution_length)
            for pattern in atpg_patterns
        ]
        matrix = build_detection_matrix(
            self.circuit,
            self.tpg,
            triplets,
            faults,
            simulator=self.simulator,
            workers=workers,
            evolve=evolve,
        )
        missing = matrix.undetected_faults()
        if missing:
            raise AssertionError(
                f"initial reseeding misses {len(missing)} faults "
                f"(e.g. {missing[0]}); ATPGTS should cover F completely"
            )
        return InitialReseeding(triplets, matrix, evolution_length)

    def build_from_atpg(
        self,
        atpg_result: AtpgResult,
        evolution_length: int = 64,
        workers: int | None = None,
        evolve=None,
    ) -> InitialReseeding:
        """Convenience overload taking an :class:`AtpgResult` directly."""
        return self.build(
            atpg_result.test_set,
            atpg_result.target_faults,
            evolution_length,
            workers=workers,
            evolve=evolve,
        )
