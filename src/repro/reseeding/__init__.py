"""Reseeding construction: triplets, the Initial Reseeding Builder and
the Detection Matrix (paper Sections 2, 3 and 3.1)."""

from repro.reseeding.triplet import Triplet, ReseedingSolution, packed_test_sets
from repro.reseeding.detection_matrix import DetectionMatrix, build_detection_matrix
from repro.reseeding.initial import InitialReseedingBuilder, InitialReseeding
from repro.reseeding.trim import trim_solution, TrimmedSolution
from repro.reseeding.uniform import (
    UniformSolution,
    storage_comparison,
    uniformize_solution,
)

__all__ = [
    "DetectionMatrix",
    "InitialReseeding",
    "InitialReseedingBuilder",
    "ReseedingSolution",
    "TrimmedSolution",
    "Triplet",
    "UniformSolution",
    "build_detection_matrix",
    "packed_test_sets",
    "storage_comparison",
    "trim_solution",
    "uniformize_solution",
]
