"""Triplets and reseeding solutions.

A triplet ``(delta, sigma, T)`` fully determines one TPG evolution and
hence one test set ``TS_i`` (Section 2).  A reseeding solution is an
ordered set of triplets applied sequentially; its global test length is
the sum of the triplet lengths and its storage cost (the area-overhead
proxy the paper minimises) is the triplet count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector


@dataclass(frozen=True)
class Triplet:
    """One TPG seeding: state seed ``delta``, frozen input ``sigma``,
    evolution length ``length`` (the paper's T_i)."""

    delta: BitVector
    sigma: BitVector
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"triplet length must be >= 0, got {self.length}")

    def test_set(self, tpg: TestPatternGenerator) -> list[BitVector]:
        """The patterns this triplet produces on ``tpg``."""
        return tpg.evolve(self.delta, self.sigma, self.length)

    def with_length(self, length: int) -> "Triplet":
        """The same seeding truncated/extended to ``length`` clocks."""
        return Triplet(self.delta, self.sigma, length)

    def storage_bits(self) -> int:
        """ROM bits to store this triplet (delta + sigma + length field),
        the area-overhead currency of the paper's trade-off."""
        length_field = max(1, self.length).bit_length()
        return self.delta.width + self.sigma.width + length_field

    def __str__(self) -> str:
        return (
            f"(delta={self.delta.to_string()}, sigma={self.sigma.to_string()}, "
            f"T={self.length})"
        )


@dataclass(frozen=True)
class ReseedingSolution:
    """An ordered reseeding: triplets applied back to back."""

    triplets: tuple[Triplet, ...]

    @classmethod
    def from_list(cls, triplets: list[Triplet]) -> "ReseedingSolution":
        return cls(tuple(triplets))

    @property
    def n_triplets(self) -> int:
        """Cardinality |N| — the quantity the set-covering pass minimises."""
        return len(self.triplets)

    @property
    def test_length(self) -> int:
        """Global test length T = sum of triplet lengths."""
        return sum(t.length for t in self.triplets)

    def storage_bits(self) -> int:
        """Total ROM bits for the whole solution."""
        return sum(t.storage_bits() for t in self.triplets)

    def patterns(self, tpg: TestPatternGenerator) -> list[BitVector]:
        """The concatenated test set TS = TS_0 u TS_1 u ... (in order)."""
        out: list[BitVector] = []
        for triplet in self.triplets:
            out.extend(triplet.test_set(tpg))
        return out

    def __iter__(self):
        return iter(self.triplets)

    def __len__(self) -> int:
        return len(self.triplets)
