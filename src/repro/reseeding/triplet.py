"""Triplets and reseeding solutions.

A triplet ``(delta, sigma, T)`` fully determines one TPG evolution and
hence one test set ``TS_i`` (Section 2).  A reseeding solution is an
ordered set of triplets applied sequentially; its global test length is
the sum of the triplet lengths and its storage cost (the area-overhead
proxy the paper minimises) is the triplet count.

Evolution of *many* triplets goes through :func:`packed_test_sets`: it
groups triplets by shared length into candidate-seed banks, evolves
each bank with one word-parallel
:meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch` call, and
hands back per-triplet :class:`~repro.utils.bitvec.PackedPatterns`
rows — the form every consumer (Detection Matrix construction,
trimming, fault simulation) takes without re-packing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector, PackedPatterns, concat_packed

#: Signature of a batched-evolution provider: ``(tpg, deltas, sigmas,
#: length) -> PackedPatterns``.  The default is ``tpg.evolve_batch``
#: itself; :meth:`repro.flow.session.Session.packed_evolution` supplies
#: an ArtifactCache-backed implementation with identical semantics.
EvolveBatch = Callable[
    [TestPatternGenerator, Sequence[BitVector], Sequence[BitVector], int],
    PackedPatterns,
]


@dataclass(frozen=True)
class Triplet:
    """One TPG seeding: state seed ``delta``, frozen input ``sigma``,
    evolution length ``length`` (the paper's T_i)."""

    delta: BitVector
    sigma: BitVector
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"triplet length must be >= 0, got {self.length}")

    def test_set(self, tpg: TestPatternGenerator) -> list[BitVector]:
        """The patterns this triplet produces on ``tpg``."""
        return tpg.evolve(self.delta, self.sigma, self.length)

    def packed_test_set(self, tpg: TestPatternGenerator) -> PackedPatterns:
        """:meth:`test_set` in word-parallel packed form (a one-seed
        bank through :meth:`~repro.tpg.base.TestPatternGenerator.
        evolve_batch`)."""
        return tpg.evolve_batch([self.delta], [self.sigma], self.length)

    def with_length(self, length: int) -> "Triplet":
        """The same seeding truncated/extended to ``length`` clocks."""
        return Triplet(self.delta, self.sigma, length)

    def storage_bits(self) -> int:
        """ROM bits to store this triplet (delta + sigma + length field),
        the area-overhead currency of the paper's trade-off."""
        length_field = max(1, self.length).bit_length()
        return self.delta.width + self.sigma.width + length_field

    def __str__(self) -> str:
        return (
            f"(delta={self.delta.to_string()}, sigma={self.sigma.to_string()}, "
            f"T={self.length})"
        )


def packed_test_sets(
    tpg: TestPatternGenerator,
    triplets: Sequence[Triplet],
    evolve: EvolveBatch | None = None,
) -> list[PackedPatterns]:
    """Evolve many triplets as seed-axis banks; one packed row each.

    Triplets sharing an evolution length form one bank and pay a single
    :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch` call (the
    Initial Reseeding Builder's candidates all share the tuned T, so
    the common case is exactly one call for the whole pool); rows come
    back as bit-granular slices of the bank, in input order,
    bit-identical to per-triplet ``test_set``.  ``evolve`` swaps in a
    caching provider (see :data:`EvolveBatch`).
    """
    if evolve is None:

        def evolve(generator, deltas, sigmas, length):
            return generator.evolve_batch(deltas, sigmas, length)

    rows: list[PackedPatterns | None] = [None] * len(triplets)
    by_length: dict[int, list[int]] = {}
    for index, triplet in enumerate(triplets):
        by_length.setdefault(triplet.length, []).append(index)
    for length, indices in sorted(by_length.items()):
        bank = evolve(
            tpg,
            [triplets[i].delta for i in indices],
            [triplets[i].sigma for i in indices],
            length,
        )
        for position, index in enumerate(indices):
            rows[index] = bank.slice(position * length, (position + 1) * length)
    return rows  # type: ignore[return-value]  # every slot filled above


@dataclass(frozen=True)
class ReseedingSolution:
    """An ordered reseeding: triplets applied back to back."""

    triplets: tuple[Triplet, ...]

    @classmethod
    def from_list(cls, triplets: list[Triplet]) -> "ReseedingSolution":
        return cls(tuple(triplets))

    @property
    def n_triplets(self) -> int:
        """Cardinality |N| — the quantity the set-covering pass minimises."""
        return len(self.triplets)

    @property
    def test_length(self) -> int:
        """Global test length T = sum of triplet lengths."""
        return sum(t.length for t in self.triplets)

    def storage_bits(self) -> int:
        """Total ROM bits for the whole solution."""
        return sum(t.storage_bits() for t in self.triplets)

    def patterns(self, tpg: TestPatternGenerator) -> list[BitVector]:
        """The concatenated test set TS = TS_0 u TS_1 u ... (in order)."""
        out: list[BitVector] = []
        for triplet in self.triplets:
            out.extend(triplet.test_set(tpg))
        return out

    def packed_patterns(
        self, tpg: TestPatternGenerator, evolve: EvolveBatch | None = None
    ) -> PackedPatterns:
        """:meth:`patterns` in packed form: batch-evolved per length
        group, concatenated in triplet order without unpacking —
        what a BIST session feeds the simulator/MISR directly."""
        if not self.triplets:
            import numpy as np

            return PackedPatterns(
                np.zeros((tpg.width, 0), dtype=np.uint64), 0
            )
        return concat_packed(packed_test_sets(tpg, self.triplets, evolve))

    def __iter__(self):
        return iter(self.triplets)

    def __len__(self) -> int:
        return len(self.triplets)
