"""Uniform evolution length — the paper's Section-4 area refinement.

"The area overhead can be further reduced let evolving all the triplets
for the same interval of time.  In this case the value T must be the
largest number of clock cycles among the ones required by each triplet
of the reseeding solution."

Storing one shared T instead of a per-triplet length field trades test
time (every triplet now runs as long as the slowest one) for seed-ROM
bits.  :func:`uniformize_solution` performs the conversion and
:class:`UniformSolution` exposes both costs so the trade can be
evaluated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reseeding.triplet import EvolveBatch, ReseedingSolution, Triplet
from repro.reseeding.trim import TrimmedSolution


@dataclass(frozen=True)
class UniformSolution:
    """A reseeding whose triplets all share one evolution length."""

    solution: ReseedingSolution
    shared_length: int

    @property
    def n_triplets(self) -> int:
        """Triplet count (unchanged by uniformisation)."""
        return self.solution.n_triplets

    @property
    def test_length(self) -> int:
        """Global test length: n_triplets * shared_length."""
        return self.n_triplets * self.shared_length

    def packed_patterns(self, tpg, evolve: EvolveBatch | None = None):
        """The whole uniform session's pattern sequence, packed.

        Every triplet shares ``shared_length``, so the full sequence is
        exactly **one** seed-axis
        :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch` bank —
        the hardware-faithful view of a uniform-T BIST session (each
        reseed runs the same number of clocks) with no per-triplet
        Python loop at all.
        """
        return self.solution.packed_patterns(tpg, evolve=evolve)

    def storage_bits(self) -> int:
        """ROM bits: per-triplet (delta + sigma) plus ONE shared length
        field — the Section-4 saving versus per-triplet length fields."""
        per_triplet = sum(
            t.delta.width + t.sigma.width for t in self.solution.triplets
        )
        shared_field = max(1, self.shared_length).bit_length()
        return per_triplet + shared_field


def uniformize_solution(trimmed: TrimmedSolution) -> UniformSolution:
    """Convert a per-triplet-trimmed solution to the uniform-T form.

    The shared length is the maximum trimmed length, so every fault
    detected by the variable-length solution is still detected (each
    triplet runs at least as long as before) — coverage can only grow.
    """
    triplets = trimmed.solution.triplets
    if not triplets:
        return UniformSolution(ReseedingSolution(()), 0)
    shared = max(t.length for t in triplets)
    uniform = ReseedingSolution.from_list(
        [Triplet(t.delta, t.sigma, shared) for t in triplets]
    )
    return UniformSolution(uniform, shared)


def storage_comparison(
    trimmed: TrimmedSolution, uniform: UniformSolution
) -> dict[str, int]:
    """Side-by-side cost accounting for the two storage schemes."""
    return {
        "variable_t_bits": trimmed.solution.storage_bits(),
        "uniform_t_bits": uniform.storage_bits(),
        "variable_t_test_length": trimmed.test_length,
        "uniform_t_test_length": uniform.test_length,
    }
