"""Single stuck-at fault model and equivalence collapsing."""

from repro.faults.model import Fault, FaultSite, full_fault_list, output_stem_faults
from repro.faults.collapse import collapse_faults

__all__ = [
    "Fault",
    "FaultSite",
    "collapse_faults",
    "full_fault_list",
    "output_stem_faults",
]
