"""The single stuck-at fault model.

A fault is a net stuck at 0 or 1.  Two kinds of sites exist:

* **stem** faults — the output net of a gate (or a PI) is stuck; every
  reader of the net sees the stuck value;
* **branch** faults — one *fanout branch* is stuck: only the gate reading
  the net through that pin sees the stuck value.  Branch faults matter
  at fanout stems, where a branch fault is not equivalent to the stem
  fault.

The paper's target list ``F`` is "the target list of stuck-at faults of
the combinational circuit to be tested"; we build the standard full
universe (stem + branch faults) and collapse it by structural
equivalence (:mod:`repro.faults.collapse`) before handing it to ATPG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class FaultSite:
    """Where a fault lives.

    ``net`` is the stuck net.  For a stem fault, ``gate`` is ``None``;
    for a branch fault, ``gate``/``pin`` identify the reading gate and
    its fanin position.
    """

    net: str
    gate: str | None = None
    pin: int | None = None

    @property
    def is_branch(self) -> bool:
        """True for fanout-branch sites."""
        return self.gate is not None

    def sort_key(self) -> tuple[str, str, int]:
        """Total-order key (stem sites sort before branch sites on a net)."""
        return (self.net, self.gate or "", -1 if self.pin is None else self.pin)

    def __lt__(self, other: "FaultSite") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        if self.is_branch:
            return f"{self.net}->{self.gate}.{self.pin}"
        return self.net


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault: ``site`` stuck at ``value``."""

    site: FaultSite
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value!r}")

    @classmethod
    def stem(cls, net: str, value: int) -> "Fault":
        """Convenience constructor for a stem fault."""
        return cls(FaultSite(net), value)

    @classmethod
    def branch(cls, net: str, gate: str, pin: int, value: int) -> "Fault":
        """Convenience constructor for a fanout-branch fault."""
        return cls(FaultSite(net, gate, pin), value)

    def sort_key(self) -> tuple[tuple[str, str, int], int]:
        """Total-order key: by site, then stuck value."""
        return (self.site.sort_key(), self.value)

    def __lt__(self, other: "Fault") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return f"{self.site}/SA{self.value}"


def effective_reader_count(circuit: Circuit, net: str) -> int:
    """How many observation paths leave ``net``: its gate readers, plus
    one if it is itself a primary output (a PO is a direct observation
    point, so a net that is both PO and gate fanin behaves like a
    fanout stem)."""
    return len(circuit.fanouts(net)) + (1 if net in set(circuit.outputs) else 0)


def full_fault_list(circuit: Circuit) -> list[Fault]:
    """The uncollapsed single stuck-at universe of ``circuit``.

    Stem faults on every net, plus branch faults on every fanin pin of
    nets with more than one *effective* reader — gate readers plus
    direct PO observation (for true single-reader nets the branch is
    structurally identical to the stem, so it is omitted at build time
    rather than collapsed later).
    """
    faults: list[Fault] = []
    for net in circuit.nodes:
        for value in (0, 1):
            faults.append(Fault.stem(net, value))
    for gate in circuit.gates.values():
        for pin, fanin_net in enumerate(gate.fanins):
            if effective_reader_count(circuit, fanin_net) > 1:
                for value in (0, 1):
                    faults.append(Fault.branch(fanin_net, gate.name, pin, value))
    return faults


def output_stem_faults(circuit: Circuit) -> list[Fault]:
    """Stem faults on primary outputs only (useful in tests)."""
    return [Fault.stem(net, v) for net in circuit.outputs for v in (0, 1)]
