"""Structural equivalence fault collapsing.

Two faults are *equivalent* when every test for one detects the other;
collapsing keeps one representative per equivalence class, shrinking the
ATPG target list and the Detection Matrix column count without changing
any coverage result.

Implemented rules (the standard gate-local ones):

==========  =====================================
gate        equivalence (input pin fault ~ output stem fault)
==========  =====================================
AND         in/SA0 ~ out/SA0
NAND        in/SA0 ~ out/SA1
OR          in/SA1 ~ out/SA1
NOR         in/SA1 ~ out/SA0
NOT         in/SA0 ~ out/SA1, in/SA1 ~ out/SA0
BUF         in/SA0 ~ out/SA0, in/SA1 ~ out/SA1
XOR, XNOR   (none)
==========  =====================================

"Input pin fault" resolves to the fanin net's stem fault when the net
has a single reader, and to the branch fault otherwise — matching how
:func:`repro.faults.model.full_fault_list` builds the universe.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault

_EQUIV_RULES: dict[GateType, list[tuple[int, int]]] = {
    GateType.AND: [(0, 0)],
    GateType.NAND: [(0, 1)],
    GateType.OR: [(1, 1)],
    GateType.NOR: [(1, 0)],
    GateType.NOT: [(0, 1), (1, 0)],
    GateType.BUF: [(0, 0), (1, 1)],
}


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Fault, Fault] = {}

    def find(self, fault: Fault) -> Fault:
        parent = self._parent.setdefault(fault, fault)
        if parent is fault or parent == fault:
            return fault
        root = self.find(parent)
        self._parent[fault] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Keep the lexicographically smaller fault as class root so
            # representative choice is deterministic.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a


def _input_pin_fault(circuit: Circuit, gate_name: str, pin: int, value: int) -> Fault:
    from repro.faults.model import effective_reader_count

    net = circuit.gates[gate_name].fanins[pin]
    if effective_reader_count(circuit, net) > 1:
        # The net has other observation paths (other gates, or it is a
        # PO itself): the pin fault is a distinct branch fault and must
        # NOT be identified with the stem.
        return Fault.branch(net, gate_name, pin, value)
    return Fault.stem(net, value)


def collapse_faults(
    circuit: Circuit, faults: list[Fault] | None = None
) -> list[Fault]:
    """Collapse ``faults`` (default: the full universe) to representatives.

    Returns one fault per equivalence class, in sorted order.  Every
    input fault maps to exactly one returned representative.
    """
    classes = equivalence_classes(circuit, faults)
    return sorted(classes)


def equivalence_classes(
    circuit: Circuit, faults: list[Fault] | None = None
) -> dict[Fault, list[Fault]]:
    """Map each class representative to all faults in its class."""
    from repro.faults.model import full_fault_list

    universe = faults if faults is not None else full_fault_list(circuit)
    uf = _UnionFind()
    for fault in universe:
        uf.find(fault)
    known = set(universe)
    for gate in circuit.gates.values():
        rules = _EQUIV_RULES.get(gate.gtype)
        if not rules:
            continue
        for input_value, output_value in rules:
            output_fault = Fault.stem(gate.name, output_value)
            if output_fault not in known:
                continue
            for pin in range(len(gate.fanins)):
                input_fault = _input_pin_fault(circuit, gate.name, pin, input_value)
                if input_fault in known:
                    uf.union(input_fault, output_fault)
    classes: dict[Fault, list[Fault]] = {}
    for fault in universe:
        classes.setdefault(uf.find(fault), []).append(fault)
    # Re-root each class on its smallest member for determinism.
    rerooted: dict[Fault, list[Fault]] = {}
    for members in classes.values():
        members.sort()
        rerooted[members[0]] = members
    return rerooted
