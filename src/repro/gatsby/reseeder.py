"""The GATSBY reseeding baseline.

One GA run per triplet: the chromosome concatenates ``delta`` and
``sigma``; fitness is the number of still-undetected faults the triplet's
test set detects (a full fault simulation per evaluation).  Detected
faults are dropped and the loop repeats until the fault list is empty,
progress stalls, or a triplet budget is exhausted.

Every fitness evaluation rides the batched engine: the remaining-fault
list is simulated in fault batches against the candidate's test set
(with early fault dropping inside :meth:`BatchFaultSimulator.detected`),
which is what keeps the GA's thousands of fault simulations affordable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.gatsby.ga import GaConfig, GeneticAlgorithm
from repro.reseeding.triplet import ReseedingSolution, Triplet
from repro.reseeding.trim import TrimmedSolution, trim_solution
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


@dataclass
class GatsbyResult:
    """The GA reseeding: solution, trimming, and effort accounting."""

    solution: ReseedingSolution
    trimmed: TrimmedSolution
    fault_coverage: float
    fault_simulations: int
    stalled: bool

    @property
    def n_triplets(self) -> int:
        """Triplet count of the GA solution."""
        return self.solution.n_triplets

    @property
    def test_length(self) -> int:
        """Global test length after trimming."""
        return self.trimmed.test_length


class GatsbyReseeder:
    """Iterative GA reseeding for one circuit + TPG."""

    def __init__(
        self,
        circuit: Circuit,
        tpg: TestPatternGenerator,
        seed: int = 2001,
        evolution_length: int = 64,
        ga_config: GaConfig | None = None,
        max_triplets: int = 256,
        stall_limit: int = 3,
        simulator: BatchFaultSimulator | None = None,
    ) -> None:
        if tpg.width != circuit.n_inputs:
            raise ValueError(
                f"TPG width {tpg.width} != circuit input count {circuit.n_inputs}"
            )
        self.circuit = circuit
        self.tpg = tpg
        self.seed = seed
        self.evolution_length = evolution_length
        self.ga_config = ga_config or GaConfig()
        self.max_triplets = max_triplets
        self.stall_limit = stall_limit
        self.simulator = simulator or FaultSimulator(circuit)

    def run(
        self, faults: list[Fault], seed_patterns: list[BitVector] | None = None
    ) -> GatsbyResult:
        """Build a reseeding covering ``faults``.

        ``seed_patterns`` optionally bias each GA's initial population
        (deterministic patterns known to detect hard faults).
        """
        rng = RngStream(self.seed, "gatsby", self.circuit.name, self.tpg.name)
        width = self.tpg.width
        remaining = list(faults)
        triplets: list[Triplet] = []
        simulations = 0
        stalls = 0
        while remaining and len(triplets) < self.max_triplets:
            ga_rng = rng.child("ga", len(triplets))

            def fitness(genome: BitVector) -> float:
                nonlocal simulations
                simulations += 1
                triplet = self._decode(genome)
                # Packed single-seed evolution: the GA's inner loop is
                # fitness-bound, so patterns go straight to the
                # simulator in word-parallel form.
                patterns = triplet.packed_test_set(self.tpg)
                flags = self.simulator.detected(patterns, remaining)
                return float(sum(flags))

            seeds = self._seed_genomes(seed_patterns or [], rng)
            algorithm = GeneticAlgorithm(
                2 * width, fitness, ga_rng, self.ga_config
            )
            best = algorithm.run(seeds)
            if best.fitness <= 0:
                stalls += 1
                if stalls >= self.stall_limit:
                    break
                continue
            stalls = 0
            triplet = self._decode(best.genome)
            triplets.append(triplet)
            patterns = triplet.packed_test_set(self.tpg)
            flags = self.simulator.detected(patterns, remaining)
            remaining = [f for f, hit in zip(remaining, flags) if not hit]
        trimmed = trim_solution(
            self.circuit, self.tpg, triplets, faults, simulator=self.simulator
        )
        covered = len(faults) - len(trimmed.undetected)
        coverage = covered / len(faults) if faults else 1.0
        return GatsbyResult(
            solution=ReseedingSolution.from_list(triplets),
            trimmed=trimmed,
            fault_coverage=coverage,
            fault_simulations=simulations,
            stalled=bool(remaining),
        )

    # ------------------------------------------------------------------

    def _decode(self, genome: BitVector) -> Triplet:
        width = self.tpg.width
        delta = genome.slice(0, width)
        sigma = genome.slice(width, width)
        return Triplet(delta, sigma, self.evolution_length)

    def _seed_genomes(
        self, seed_patterns: list[BitVector], rng: RngStream
    ) -> list[BitVector]:
        genomes = []
        for pattern in seed_patterns[:4]:
            sigma = self.tpg.suggest_sigma(rng)
            genomes.append(pattern.concat(sigma))
        return genomes
