"""GATSBY-style genetic-algorithm reseeding baseline.

GATSBY (Genetic Algorithm based Test Synthesis tool for BIST
applications, [7][8]) is the prior-art tool Table 1 compares against.
It computes seeds by simulation-driven evolutionary search; this package
reimplements its published mechanics so the comparison can be
regenerated: the GA finds one triplet at a time, each maximising the
coverage of still-undetected faults, until the target coverage is
reached.  Because every fitness evaluation is a fault simulation, the
approach is simulation-bound — the scalability ceiling the paper calls
out ("since the GATSBY computation process strongly relies on
simulation, the approach is not applicable to large circuits").
"""

from repro.gatsby.ga import GaConfig, GeneticAlgorithm, Individual
from repro.gatsby.reseeder import GatsbyReseeder, GatsbyResult

__all__ = [
    "GaConfig",
    "GatsbyReseeder",
    "GatsbyResult",
    "GeneticAlgorithm",
    "Individual",
]
