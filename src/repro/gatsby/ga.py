"""A small, generic bit-string genetic algorithm.

Used by the GATSBY baseline to search seed space; kept generic (fitness
is an injected callable) so tests can drive it with cheap functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class GaConfig:
    """GA hyper-parameters (small defaults keep fitness call counts —
    i.e. fault simulations — bounded)."""

    population_size: int = 16
    generations: int = 12
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be in [0, population_size)")


@dataclass(frozen=True)
class Individual:
    """A chromosome with its cached fitness."""

    genome: BitVector
    fitness: float


class GeneticAlgorithm:
    """Maximise ``fitness(genome)`` over fixed-width bit strings."""

    def __init__(
        self,
        genome_width: int,
        fitness: Callable[[BitVector], float],
        rng: RngStream,
        config: GaConfig | None = None,
    ) -> None:
        if genome_width <= 0:
            raise ValueError("genome_width must be positive")
        self.genome_width = genome_width
        self.fitness = fitness
        self.rng = rng
        self.config = config or GaConfig()
        self.evaluations = 0

    def run(self, seeds: list[BitVector] | None = None) -> Individual:
        """Evolve and return the best individual ever seen.

        ``seeds`` pre-loads known-good genomes into the initial
        population (GATSBY seeds with ATPG-derived patterns).
        """
        config = self.config
        population = self._initial_population(seeds or [])
        best = max(population, key=lambda ind: ind.fitness)
        for _ in range(config.generations):
            population.sort(key=lambda ind: ind.fitness, reverse=True)
            next_population = population[: config.elitism]
            while len(next_population) < config.population_size:
                parent_a = self._tournament(population)
                parent_b = self._tournament(population)
                child_genome = self._crossover(parent_a.genome, parent_b.genome)
                child_genome = self._mutate(child_genome)
                next_population.append(self._evaluate(child_genome))
            population = next_population
            generation_best = max(population, key=lambda ind: ind.fitness)
            if generation_best.fitness > best.fitness:
                best = generation_best
        return best

    # ------------------------------------------------------------------

    def _evaluate(self, genome: BitVector) -> Individual:
        self.evaluations += 1
        return Individual(genome, self.fitness(genome))

    def _initial_population(self, seeds: list[BitVector]) -> list[Individual]:
        population = [
            self._evaluate(seed.resized(self.genome_width))
            for seed in seeds[: self.config.population_size]
        ]
        while len(population) < self.config.population_size:
            population.append(
                self._evaluate(BitVector.random(self.genome_width, self.rng))
            )
        return population

    def _tournament(self, population: list[Individual]) -> Individual:
        contenders = [
            population[self.rng.randrange(len(population))]
            for _ in range(self.config.tournament_size)
        ]
        return max(contenders, key=lambda ind: ind.fitness)

    def _crossover(self, a: BitVector, b: BitVector) -> BitVector:
        if self.rng.random() >= self.config.crossover_rate:
            return a
        # uniform crossover: each bit from a random parent
        mask = self.rng.getrandbits(self.genome_width)
        merged = (a.value & mask) | (b.value & ~mask)
        return BitVector(merged & ((1 << self.genome_width) - 1), self.genome_width)

    def _mutate(self, genome: BitVector) -> BitVector:
        value = genome.value
        for bit in range(self.genome_width):
            if self.rng.random() < self.config.mutation_rate:
                value ^= 1 << bit
        return BitVector(value, self.genome_width)
