"""``repro.serve`` — BIST diagnosis as a high-traffic async service.

The flow layer's artefacts (ATPG results, fault dictionaries, packed
pattern sets) are expensive to build and cheap to reuse; this package
puts an HTTP boundary in front of them so a tester-farm's fail logs can
be diagnosed as traffic rather than as batch jobs:

* :mod:`~repro.serve.server` — asyncio HTTP/1.1 + JSON worker with
  ``POST /diagnose``, ``POST /atpg``, ``POST /sweep``, ``GET /healthz``
  and ``GET /stats``;
* :mod:`~repro.serve.batcher` — the micro-batcher that fuses concurrent
  same-circuit diagnose requests into one vectorised dictionary pass;
* :mod:`~repro.serve.store` — :class:`SharedArtifactStore`, the
  content-addressed artifact tree N workers mount concurrently;
* :mod:`~repro.serve.api` / :mod:`~repro.serve.http11` — typed wire
  bodies and the minimal stdlib HTTP framing;
* :mod:`~repro.serve.client` / :mod:`~repro.serve.bootstrap` — the
  blocking typed client, the SIGTERM-draining foreground runner and the
  in-process :class:`BackgroundServer` used by tests and benchmarks.
"""

from repro.serve.api import (
    DIAGNOSE_METHODS,
    AtpgRequest,
    AtpgResponse,
    DiagnoseRequest,
    DiagnoseResponse,
    PatternSet,
    RequestValidationError,
    ServeError,
    SweepRequest,
    SweepResponse,
)
from repro.serve.batcher import (
    BatcherClosedError,
    BatcherStats,
    DeadlineExceededError,
    MicroBatcher,
    PendingWork,
    QueueFullError,
)
from repro.serve.bootstrap import BackgroundServer, run
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.store import SharedArtifactStore

__all__ = [
    "DIAGNOSE_METHODS",
    "AtpgRequest",
    "AtpgResponse",
    "BackgroundServer",
    "BatcherClosedError",
    "BatcherStats",
    "DeadlineExceededError",
    "DiagnoseRequest",
    "DiagnoseResponse",
    "MicroBatcher",
    "PatternSet",
    "PendingWork",
    "QueueFullError",
    "ReproServer",
    "RequestValidationError",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeError",
    "SharedArtifactStore",
    "SweepRequest",
    "SweepResponse",
    "run",
]
