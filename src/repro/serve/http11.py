"""Minimal asyncio HTTP/1.1 framing for the serve subsystem.

The service speaks plain HTTP/1.1 with JSON bodies and needs nothing a
framework provides — no routing DSL, no middleware, no TLS — so this
module implements exactly the framing the server and the stdlib-based
clients exchange: request-line + headers + ``Content-Length`` bodies in,
status-line + headers + body out, with keep-alive connection reuse.
Keeping it ~150 lines of stdlib ``asyncio`` honours the repo's no-new-
hard-deps constraint and keeps the hot accept path transparent enough
to profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import asyncio

#: Upper bound on one request body (a 64k-pattern fail log for a wide
#: circuit is ~a few MB; anything near this bound is abuse, not load).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Upper bound on the accumulated header block.
MAX_HEADER_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or unserviceable request, mapped to an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, target path, headers (lower-cased
    names), raw body bytes."""

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to persistent connections; ``Connection:
        close`` (or an HTTP/1.0 peer without ``keep-alive``) opts out."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request off the stream; ``None`` on a clean EOF (the
    peer closed between requests), :class:`HttpError` on bad framing."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(431, "request line too long") from None
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, f"malformed request line {line[:120]!r}") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(431, "header line too long") from None
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            return None  # EOF mid-headers: treat as a dropped peer
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "header block too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw[:120]!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None  # peer died mid-body
    elif method == "POST":
        raise HttpError(411, "POST requires Content-Length")
    return HttpRequest(method, target, version, headers, body)


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one response, ready for ``writer.write``."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
