"""A stdlib blocking client for ``repro serve``.

One :class:`ServeClient` owns one keep-alive HTTP/1.1 connection (via
``http.client``) — cheap enough that load generators create one per
thread; the class is intentionally **not** thread-safe, matching the
underlying connection.  Typed helpers wrap each endpoint and decode
through the same schema-versioned :mod:`repro.flow.serialize` layer the
server encodes with, so skew is caught client-side too.

Example — diagnose a fail log, then reuse the uploaded pattern set::

    from repro.serve import DiagnoseRequest, ServeClient

    with ServeClient("127.0.0.1", 8731) as client:
        first = client.diagnose(DiagnoseRequest(
            circuit="c880", patterns=patterns, responses=responses))
        ref = first.patterns_ref          # content-addressed
        again = client.diagnose(DiagnoseRequest(
            circuit="c880", patterns_ref=ref, responses=responses2))
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.serve.api import (
    AtpgRequest,
    AtpgResponse,
    DiagnoseRequest,
    DiagnoseResponse,
    ServeError,
    SweepRequest,
    SweepResponse,
)


class ServeClientError(RuntimeError):
    """A non-2xx reply, carrying the decoded :class:`ServeError`."""

    def __init__(self, status: int, error: ServeError) -> None:
        super().__init__(f"HTTP {status}: {error.error}")
        self.status = status
        self.error = error
        self.retry_after = error.retry_after


class ServeClient:
    """Blocking typed client for one serve worker."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the keep-alive connection."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        conn = self._connection()
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # A dead keep-alive connection (server restarted, drain
            # closed it): reconnect once and retry.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        decoded = json.loads(raw) if raw else {}
        if response.status >= 400:
            if isinstance(decoded, dict) and decoded.get("kind") == "serve_error":
                raise ServeClientError(response.status, ServeError.from_dict(decoded))
            raise ServeClientError(
                response.status,
                ServeError(error=str(decoded), status=response.status),
            )
        return response.status, decoded

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness document."""
        return self._request("GET", "/healthz")[1]

    def stats(self) -> dict[str, Any]:
        """``GET /stats``: the worker's counters (inner document)."""
        from repro.flow.serialize import serve_stats_from_dict

        return serve_stats_from_dict(self._request("GET", "/stats")[1])

    def metrics(self) -> str:
        """``GET /metrics``: the raw Prometheus text exposition (the
        worker must run with metrics enabled; 404 otherwise)."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            conn = self._connection()
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
        if response.status >= 400:
            decoded = json.loads(raw) if raw else {}
            if isinstance(decoded, dict) and decoded.get("kind") == "serve_error":
                raise ServeClientError(
                    response.status, ServeError.from_dict(decoded)
                )
            raise ServeClientError(
                response.status,
                ServeError(error=str(decoded), status=response.status),
            )
        return raw.decode("utf-8")

    def diagnose(self, request: DiagnoseRequest) -> DiagnoseResponse:
        """``POST /diagnose`` one fail log."""
        _, decoded = self._request("POST", "/diagnose", request.to_dict())
        return DiagnoseResponse.from_dict(decoded)

    def atpg(self, request: AtpgRequest) -> AtpgResponse:
        """``POST /atpg``: run (or reuse) the ATPG substrate."""
        _, decoded = self._request("POST", "/atpg", request.to_dict())
        return AtpgResponse.from_dict(decoded)

    def sweep(self, request: SweepRequest) -> SweepResponse:
        """``POST /sweep``: a circuits x TPGs x lengths grid."""
        _, decoded = self._request("POST", "/sweep", request.to_dict())
        return SweepResponse.from_dict(decoded)
