"""A content-addressed artifact store safe for N workers on M machines.

:class:`SharedArtifactStore` promotes the per-process
:class:`~repro.flow.session.ArtifactCache` to shared infrastructure:
one directory tree that any number of serve workers (and batch sweeps,
and CLI runs) mount read-write **concurrently**, with no locks:

* **content-addressed, sharded layout** — entries live under
  ``objects/<first two key hex digits>/<key>.json`` so a production
  store with millions of artefacts never melts one directory's inode
  listing;
* **atomic publication** — writers stage into a writer-unique ``*.tmp``
  file and ``os.replace`` it into place (inherited from
  :class:`~repro.flow.session.ArtifactCache`), so readers only ever see
  absent or complete entries.  Two workers racing to publish the same
  key both succeed; last rename wins and both files carried identical
  content (keys are content-derived);
* **lock-free readers with corrupt-entry tolerance** — a reader that
  catches an entry mid-corruption (killed writer on a non-atomic
  filesystem, bit rot) records a *corrupt miss* and recomputes, it
  never raises;
* **self-healing debris** — stale ``*.tmp`` files from killed writers
  are swept at open (age-gated, so a live writer on another worker is
  never disturbed);
* **per-worker counters** — every worker tags its own hit/miss/corrupt
  counters with a ``worker_id``, surfaced through the serve layer's
  ``GET /stats``, so farm operators can see which workers run cold.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from repro.flow.session import ArtifactCache


class SharedArtifactStore(ArtifactCache):
    """An :class:`~repro.flow.session.ArtifactCache` with a sharded,
    multi-worker directory layout and per-worker stats.

    Drop-in wherever a cache is accepted — a
    :class:`~repro.flow.session.Session` constructed with one persists
    ATPG results, fault dictionaries and packed evolutions straight
    into the shared tree::

        store = SharedArtifactStore("/mnt/bist-artifacts")
        session = Session.from_name("c880", cache=store)
    """

    #: Directory (under the root) holding the sharded object tree.
    OBJECTS_DIR = "objects"

    def __init__(
        self,
        root: str | Path,
        *,
        worker_id: str | None = None,
        stale_tmp_age: float | None = None,
    ) -> None:
        self.worker_id = worker_id or f"pid-{os.getpid()}"
        super().__init__(root, stale_tmp_age=stale_tmp_age)
        (self.root / self.OBJECTS_DIR).mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        """Sharded object path: ``objects/ab/<key>.json``."""
        shard = key[:2] if len(key) >= 2 else "00"
        return self.root / self.OBJECTS_DIR / shard / f"{key}.json"

    def n_entries(self) -> int:
        """Number of published entries (a walk — diagnostics only)."""
        objects = self.root / self.OBJECTS_DIR
        return sum(1 for _ in objects.glob("*/*.json"))

    def stats(self) -> dict[str, Any]:
        """Per-worker counters summary (extends the base stats with the
        worker identity and the store layout)."""
        stats = super().stats()
        stats["worker_id"] = self.worker_id
        stats["root"] = str(self.root)
        return stats
