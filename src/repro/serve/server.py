"""The ``repro serve`` asyncio server: five endpoints, one batcher.

Request path for the hot endpoint (``POST /diagnose``)::

    connection task --> parse + validate (event loop, cheap)
        --> MicroBatcher.submit (bounded queue, 429 on overflow)
            --> window closes --> group by (circuit, scale, ref, method)
                --> ThreadPoolExecutor(1): Session.diagnose_batch
                    --> futures resolved --> responses written

All compute runs on **one** worker thread: the engines underneath are
word/fault/request-parallel (NumPy releases the GIL), so one thread
saturates the math while the event loop stays free to accept, parse and
batch the next wave — concurrency comes from batching, not from thread
fan-out.  It also makes every :class:`~repro.flow.session.Session`
single-threaded by construction, so the artefact memos need no locks.

Scale-out is by process: run N servers pointing at one
:class:`~repro.serve.store.SharedArtifactStore` directory and any
worker reuses the ATPG artefacts, fault dictionaries and pattern sets
its siblings already published.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.flow.serialize import (
    SchemaMismatchError,
    atpg_result_to_dict,
    diagnosis_result_to_dict,
    serve_stats_to_dict,
    to_json,
)
from repro.flow.session import ArtifactCache, Session
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.serve.api import (
    AtpgRequest,
    AtpgResponse,
    DiagnoseRequest,
    DiagnoseResponse,
    PatternSet,
    RequestValidationError,
    ServeError,
    SweepRequest,
    SweepResponse,
    validate_diagnose_request,
)
from repro.serve.batcher import (
    BatcherClosedError,
    DeadlineExceededError,
    MicroBatcher,
    PendingWork,
    QueueFullError,
)
from repro.serve.http11 import HttpError, HttpRequest, read_request, response_bytes
from repro.serve.store import SharedArtifactStore
from repro.utils.bitvec import BitVector


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to run one worker."""

    host: str = "127.0.0.1"
    port: int = 8731
    #: How long the batcher holds the first request of a window, waiting
    #: for companions to fuse with (0 disables batching).
    batch_window_ms: float = 10.0
    #: Most requests fused into one compute pass.
    max_batch: int = 32
    #: Bounded request queue; beyond this, shed with 429 + Retry-After.
    max_queue: int = 256
    #: Default per-request deadline (a request's ``timeout_ms`` wins).
    timeout_ms: int = 30_000
    #: Shared artifact store directory (None: no persistence).
    store: str | Path | None = None
    #: Worker identity in /stats (default: pid-<pid>).
    worker_id: str | None = None
    #: Expose Prometheus metrics at ``GET /metrics``.  Off by default:
    #: the no-op registry keeps every hot path telemetry-free.
    metrics: bool = False


@dataclass
class _DiagnoseItem:
    """One /diagnose request after loop-side resolution."""

    request: DiagnoseRequest
    pattern_set: PatternSet
    ref: str


@dataclass
class _Outcome:
    """What compute hands back for one request in a group."""

    body: dict[str, Any] = field(default_factory=dict)


class ReproServer:
    """One serve worker: listener + batcher + compute thread + store."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        #: Metrics-only telemetry (null tracer: a long-lived service
        #: must not grow an unbounded span tree).  Sessions, the store,
        #: the batcher and the request loop all share this registry;
        #: ``GET /metrics`` renders it.
        self.telemetry = Telemetry.on() if self.config.metrics else NULL_TELEMETRY
        self.store: SharedArtifactStore | None = (
            SharedArtifactStore(self.config.store, worker_id=self.config.worker_id)
            if self.config.store is not None
            else None
        )
        if self.store is not None:
            # Attach before any Session exists so /stats and /metrics
            # never diverge (Session re-attaching the same registry is
            # a no-op).
            self.store.attach_metrics(self.telemetry.metrics)
        self.batcher = MicroBatcher(
            process=self._process_group,
            window_s=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            metrics=self.telemetry.metrics,
        )
        #: Single compute thread: Sessions are confined to it (no locks)
        #: and the vectorised engines saturate it; see the module note.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        self._sessions: dict[tuple[str, float], Session] = {}
        self._pattern_sets: dict[str, PatternSet] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._started_monotonic: float | None = None
        self._requests: dict[str, int] = {}
        self._responses: dict[int, int] = {}
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the batcher worker."""
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._started_monotonic = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish every accepted
        request, flush responses, then stop compute.  Loss-free by
        construction — the batcher's close() processes its whole queue
        before returning, and connection tasks are awaited so every
        computed response reaches its socket."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.close()
        if self._conn_tasks:
            await asyncio.wait(
                self._conn_tasks, timeout=5.0, return_when=asyncio.ALL_COMPLETED
            )
        for task in list(self._conn_tasks):
            task.cancel()
        self._executor.shutdown(wait=True)

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Run until ``stop`` is set (by a signal handler), then drain."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    # -- connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        response_bytes(
                            exc.status,
                            self._error_body(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    self._count_response(exc.status)
                    break
                if request is None:
                    break
                status, body, extra = await self._route(request)
                keep = request.keep_alive and not self._draining
                # A handler may override the content type (GET /metrics
                # speaks Prometheus text, not JSON) via a header tuple.
                content_type = "application/json"
                passthrough = []
                for name, value in extra:
                    if name.lower() == "content-type":
                        content_type = value
                    else:
                        passthrough.append((name, value))
                writer.write(
                    response_bytes(
                        status,
                        body,
                        content_type=content_type,
                        keep_alive=keep,
                        extra_headers=tuple(passthrough),
                    )
                )
                await writer.drain()
                self._count_response(status)
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away (or drain timed us out): nothing to save
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- routing -----------------------------------------------------------

    #: Endpoints allowed as a ``path`` metric label; anything else is
    #: folded into ``other`` so a URL scanner cannot explode cardinality.
    KNOWN_PATHS = frozenset(
        {"/healthz", "/stats", "/metrics", "/diagnose", "/atpg", "/sweep"}
    )

    def _count_response(self, status: int) -> None:
        """The single response-accounting site: /stats dict + metric."""
        self._responses[status] = self._responses.get(status, 0) + 1
        self.telemetry.metrics.counter(
            "repro_serve_responses_total",
            help="HTTP responses written, by status code.",
            status=str(status),
        ).inc()

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        path = request.target.split("?", 1)[0]
        self._requests[path] = self._requests.get(path, 0) + 1
        label = path if path in self.KNOWN_PATHS else "other"
        metrics = self.telemetry.metrics
        metrics.counter(
            "repro_serve_requests_total",
            help="HTTP requests received, by endpoint.",
            path=label,
        ).inc()
        with self.telemetry.tracer.span("serve.request", path=label) as span:
            result = await self._route_inner(request, path)
        metrics.histogram(
            "repro_serve_request_seconds",
            help="End-to-end request latency (queue wait included), by endpoint.",
            path=label,
        ).observe(span.seconds)
        return result

    async def _route_inner(
        self, request: HttpRequest, path: str
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        if request.method == "GET" and path == "/healthz":
            body = json.dumps(
                {"status": "draining" if self._draining else "ok"}
            ).encode()
            return 200, body, ()
        if request.method == "GET" and path == "/stats":
            body = to_json(serve_stats_to_dict(self.stats())).encode()
            return 200, body, ()
        if request.method == "GET" and path == "/metrics":
            if not self.config.metrics:
                return (
                    404,
                    self._error_body(
                        404, "metrics are disabled; restart with --metrics"
                    ),
                    (),
                )
            self._sync_gauges()
            body = render_prometheus(self.telemetry.metrics).encode()
            return 200, body, (("Content-Type", PROMETHEUS_CONTENT_TYPE),)
        handlers = {
            "/diagnose": self._handle_diagnose,
            "/atpg": self._handle_atpg,
            "/sweep": self._handle_sweep,
        }
        handler = handlers.get(path)
        if handler is None:
            return 404, self._error_body(404, f"no such endpoint {path!r}"), ()
        if request.method != "POST":
            return (
                405,
                self._error_body(405, f"{path} accepts POST, not {request.method}"),
                (),
            )
        try:
            payload = json.loads(request.body)
        except ValueError as exc:
            return 400, self._error_body(400, f"body is not JSON: {exc}"), ()
        try:
            return await handler(payload)
        except (SchemaMismatchError, RequestValidationError, KeyError, TypeError, ValueError) as exc:
            return 400, self._error_body(400, f"invalid request: {exc}"), ()

    def _error_body(
        self, status: int, message: str, retry_after: float | None = None
    ) -> bytes:
        error = ServeError(error=message, status=status, retry_after=retry_after)
        return to_json(error.to_dict()).encode()

    async def _submit_and_wait(
        self, kind: str, group_key: Any, payload: Any, timeout_ms: int | None
    ) -> tuple[int, bytes, tuple[tuple[str, str], ...]]:
        """Queue one request on the batcher and await its outcome,
        mapping the failure modes onto HTTP statuses."""
        loop = asyncio.get_running_loop()
        timeout_s = (timeout_ms or self.config.timeout_ms) / 1000.0
        work = PendingWork(
            kind=kind,
            group_key=group_key,
            payload=payload,
            future=loop.create_future(),
            enqueued=loop.time(),
            deadline=loop.time() + timeout_s,
        )
        try:
            self.batcher.submit(work)
        except QueueFullError as exc:
            retry = max(1, round(self.config.batch_window_ms / 1000.0 * 2) or 1)
            return (
                429,
                self._error_body(429, str(exc), retry_after=float(retry)),
                (("Retry-After", str(retry)),),
            )
        except BatcherClosedError as exc:
            return 503, self._error_body(503, str(exc)), ()
        try:
            outcome: _Outcome = await asyncio.wait_for(work.future, timeout_s)
        except (asyncio.TimeoutError, DeadlineExceededError):
            return (
                504,
                self._error_body(504, f"deadline of {timeout_ms or self.config.timeout_ms} ms exceeded"),
                (),
            )
        except RequestValidationError as exc:
            return 400, self._error_body(400, str(exc)), ()
        except Exception as exc:
            return 500, self._error_body(500, f"{type(exc).__name__}: {exc}"), ()
        return 200, to_json(outcome.body).encode(), ()

    # -- endpoint handlers -------------------------------------------------

    async def _handle_diagnose(self, payload: dict[str, Any]):
        request = DiagnoseRequest.from_dict(payload)
        validate_diagnose_request(request)
        pattern_set, ref = await self._resolve_pattern_set(request)
        if pattern_set is None:
            return (
                400,
                self._error_body(
                    400,
                    f"unknown patterns_ref {request.patterns_ref!r}; upload the "
                    "pattern sequence inline once to register it",
                ),
                (),
            )
        # Only dictionary lookups fuse across requests (one matmul pass
        # scores the whole group); other methods run solo.
        group_key: Any = (
            ("diagnose", request.circuit, request.scale, ref, request.method)
            if request.method == "dictionary"
            else object()
        )
        item = _DiagnoseItem(request=request, pattern_set=pattern_set, ref=ref)
        return await self._submit_and_wait(
            "diagnose", group_key, item, request.timeout_ms
        )

    async def _handle_atpg(self, payload: dict[str, Any]):
        request = AtpgRequest.from_dict(payload)
        return await self._submit_and_wait("atpg", object(), request, request.timeout_ms)

    async def _handle_sweep(self, payload: dict[str, Any]):
        request = SweepRequest.from_dict(payload)
        if not request.circuits:
            raise RequestValidationError("'circuits' must be non-empty")
        return await self._submit_and_wait("sweep", object(), request, request.timeout_ms)

    # -- pattern-set registry ----------------------------------------------

    async def _resolve_pattern_set(
        self, request: DiagnoseRequest
    ) -> tuple[PatternSet | None, str]:
        """Inline patterns register (and persist) a shared
        :class:`PatternSet`; a ``patterns_ref`` resolves memory first,
        then the shared store (another worker may have published it).
        Store reads/writes hit the filesystem, so they run on the
        compute executor instead of blocking the event loop."""
        loop = asyncio.get_running_loop()
        if request.patterns is not None:
            width = len(request.patterns[0])
            if any(len(p) != width for p in request.patterns):
                raise RequestValidationError("patterns have mixed widths")
            digest = hashlib.sha256(
                "\n".join(request.patterns).encode()
            ).hexdigest()
            ref = ArtifactCache.key(
                "pattern_set",
                circuit=request.circuit,
                width=width,
                digest=digest,
            )
            if ref not in self._pattern_sets:
                pattern_set = PatternSet(
                    circuit_name=request.circuit,
                    width=width,
                    patterns=tuple(
                        BitVector.from_string(p) for p in request.patterns
                    ),
                )
                self._pattern_sets[ref] = pattern_set
                if self.store is not None:
                    await loop.run_in_executor(
                        self._executor, self.store.put, ref, pattern_set.to_dict()
                    )
            return self._pattern_sets[ref], ref
        ref = request.patterns_ref or ""
        pattern_set = self._pattern_sets.get(ref)
        if pattern_set is None and self.store is not None:
            payload = await loop.run_in_executor(
                self._executor, self.store.get, ref, "pattern_set"
            )
            if payload is not None:
                pattern_set = PatternSet.from_dict(payload)
                self._pattern_sets[ref] = pattern_set
        return pattern_set, ref

    # -- compute (runs on the single executor thread) ----------------------

    def _session(self, circuit: str, scale: float) -> Session:
        """The per-(circuit, scale) Session, built once, store-backed.
        Compute-thread only: loading a netlist is real work."""
        key = (circuit, scale)
        session = self._sessions.get(key)
        if session is None:
            session = Session.from_name(
                circuit,
                scale=scale,
                cache=self.store,
                telemetry=self.telemetry,
            )
            self._sessions[key] = session
        return session

    async def _process_group(self, group: list[PendingWork]) -> None:
        """Batcher callback: one fused group to the compute thread."""
        loop = asyncio.get_running_loop()
        kind = group[0].kind
        compute = {
            "diagnose": self._compute_diagnose,
            "atpg": self._compute_atpg,
            "sweep": self._compute_sweep,
        }[kind]
        outcomes = await loop.run_in_executor(
            self._executor, compute, [work.payload for work in group]
        )
        for work, outcome in zip(group, outcomes):
            if not work.future.done():
                work.future.set_result(outcome)

    def _compute_diagnose(self, items: list[_DiagnoseItem]) -> list[_Outcome]:
        from repro.diagnosis.inject import FailLog

        with self.telemetry.tracer.span("serve.compute.diagnose") as span:
            first = items[0].request
            session = self._session(first.circuit, first.scale)
            n_outputs = session.circuit.n_outputs
            packed_by_ref: dict[str, Any] = {}
            logs = []
            for item in items:
                if item.pattern_set.width != session.circuit.n_inputs:
                    raise RequestValidationError(
                        f"patterns are {item.pattern_set.width} bits wide, circuit "
                        f"{first.circuit!r} has {session.circuit.n_inputs} inputs"
                    )
                if any(len(r) != n_outputs for r in item.request.responses):
                    raise RequestValidationError(
                        f"responses must be {n_outputs} bits wide for {first.circuit!r}"
                    )
                if len(item.request.responses) != len(item.pattern_set.patterns):
                    raise RequestValidationError(
                        f"{len(item.request.responses)} responses for "
                        f"{len(item.pattern_set.patterns)} patterns"
                    )
                log = FailLog(
                    circuit_name=session.circuit.name,
                    patterns=list(item.pattern_set.patterns),
                    responses=[
                        BitVector.from_string(r) for r in item.request.responses
                    ],
                )
                packed = packed_by_ref.get(item.ref)
                if packed is None:
                    packed = session.packed_patterns(log.patterns)
                    packed_by_ref[item.ref] = packed
                logs.append(log.attach_packed(packed))
            results = session.diagnose_batch(
                logs,
                method=first.method,
                top_k=[item.request.top_k for item in items],
            )
            seconds = span.elapsed6()
        outcomes = []
        for item, result in zip(items, results):
            result_payload = diagnosis_result_to_dict(result)
            # Deterministic body: identical to a local Session.diagnose.
            result_payload["timings"] = {}
            response = DiagnoseResponse(
                result=result_payload,
                patterns_ref=item.ref,
                batched=len(items) > 1,
                batch_size=len(items),
                seconds=seconds,
            )
            outcomes.append(_Outcome(body=response.to_dict()))
        return outcomes

    def _compute_atpg(self, items: list[AtpgRequest]) -> list[_Outcome]:
        outcomes = []
        for request in items:
            with self.telemetry.tracer.span("serve.compute.atpg") as span:
                session = self._session(request.circuit, request.scale)
                config = replace(
                    session.config,
                    seed=request.seed,
                    max_random_patterns=request.max_random_patterns,
                    backtrack_limit=request.backtrack_limit,
                    atpg_engine=request.engine,
                )
                from_memo = session.has_atpg(config)
                result = session.atpg_for(config)
                response = AtpgResponse(
                    result=atpg_result_to_dict(result),
                    from_memo=from_memo,
                    seconds=span.elapsed6(),
                )
            outcomes.append(_Outcome(body=response.to_dict()))
        return outcomes

    def _compute_sweep(self, items: list[SweepRequest]) -> list[_Outcome]:
        from repro.flow.pipeline import PipelineConfig
        from repro.flow.sweep import sweep

        outcomes = []
        for request in items:
            with self.telemetry.tracer.span("serve.compute.sweep") as span:
                sessions = {
                    name: self._session(name, request.scale)
                    for name in request.circuits
                }
                grid = sweep(
                    list(request.circuits),
                    list(request.tpgs),
                    base_config=PipelineConfig(seed=request.seed),
                    evolution_lengths=list(request.evolution_lengths),
                    scale=request.scale,
                    sessions=sessions,
                    cache=self.store,
                )
                cells = tuple(
                    {
                        "circuit": o.circuit,
                        "tpg": o.tpg,
                        "evolution_length": o.config.evolution_length,
                        "n_triplets": o.result.n_triplets,
                        "test_length": o.result.test_length,
                        "n_necessary": o.result.n_necessary,
                        "n_from_solver": o.result.n_from_solver,
                        "from_cache": o.from_cache,
                        "seconds": round(o.seconds, 4),
                    }
                    for o in grid
                )
                response = SweepResponse(
                    cells=cells,
                    n_cached=grid.n_cached,
                    seconds=span.elapsed6(),
                )
            outcomes.append(_Outcome(body=response.to_dict()))
        return outcomes

    # -- stats -------------------------------------------------------------

    def _sync_gauges(self) -> None:
        """Refresh point-in-time gauges just before a /metrics scrape
        (counters update at their event sites; gauges are sampled)."""
        m = self.telemetry.metrics
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        m.gauge(
            "repro_serve_uptime_seconds", help="Seconds since the listener bound."
        ).set(round(uptime, 3))
        m.gauge(
            "repro_serve_open_connections", help="Live client connections."
        ).set(len(self._conn_tasks))
        m.gauge(
            "repro_serve_pattern_sets", help="Pattern sets registered in memory."
        ).set(len(self._pattern_sets))
        m.gauge(
            "repro_serve_sessions", help="Resident (circuit, scale) sessions."
        ).set(len(self._sessions))

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` counters document."""
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        return {
            "server": {
                "host": self.host,
                "port": self.port,
                "uptime_s": round(uptime, 3),
                "draining": self._draining,
                "open_connections": len(self._conn_tasks),
                "batch_window_ms": self.config.batch_window_ms,
                "max_batch": self.config.max_batch,
                "max_queue": self.config.max_queue,
            },
            "requests": dict(sorted(self._requests.items())),
            "responses": {
                str(status): count
                for status, count in sorted(self._responses.items())
            },
            "batcher": self.batcher.stats.as_dict(),
            "sessions": sorted(
                f"{name}@{scale:g}" for name, scale in self._sessions
            ),
            "pattern_sets": len(self._pattern_sets),
            "store": self.store.stats() if self.store is not None else None,
        }
