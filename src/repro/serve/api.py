"""Typed request/response bodies of the ``repro serve`` HTTP API.

Every body crossing the wire is one of these dataclasses, serialised
through the schema-versioned :mod:`repro.flow.serialize` layer (kinds
``diagnose_request``/``diagnose_response``, ``atpg_request``/
``atpg_response``, ``sweep_request``/``sweep_response``,
``pattern_set``, ``serve_stats``, ``serve_error``) — the same
envelope-and-check discipline the artifact cache uses, so version skew
between clients and servers is rejected up front, never mis-decoded.

:class:`PatternSet` is the shared-workload primitive: a tester farm
applies **one** BIST pattern sequence to many dies, so a client uploads
the sequence once (inline ``patterns`` on the first request), receives
its content-addressed ``patterns_ref`` back, and every subsequent fail
log ships only the observed responses.  Refs are stable across workers
and machines — they key the :class:`~repro.serve.store.
SharedArtifactStore` entry other workers load instead of re-parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.bitvec import BitVector

#: Diagnosis engines the /diagnose endpoint accepts.  ``dictionary`` is
#: the production default and the only method the micro-batcher fuses
#: across requests; the others run per-request on the same worker.
DIAGNOSE_METHODS = ("dictionary", "effect_cause", "signature", "multiplet")


@dataclass(frozen=True)
class PatternSet:
    """One applied BIST pattern sequence, shareable across requests."""

    circuit_name: str
    width: int
    patterns: tuple[BitVector, ...]

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``pattern_set`` kind)."""
        from repro.flow.serialize import pattern_set_to_dict

        return pattern_set_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PatternSet":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import pattern_set_from_dict

        return pattern_set_from_dict(data)


@dataclass(frozen=True)
class DiagnoseRequest:
    """``POST /diagnose``: one captured fail log to be diagnosed.

    Exactly one of ``patterns`` (inline bit-strings, registered
    server-side and echoed back as ``patterns_ref``) or ``patterns_ref``
    (a ref from a previous response) identifies the applied sequence;
    ``responses`` is the per-pattern observed primary-output vector.
    """

    circuit: str
    responses: tuple[str, ...]
    patterns: tuple[str, ...] | None = None
    patterns_ref: str | None = None
    scale: float = 1.0
    method: str = "dictionary"
    top_k: int = 10
    timeout_ms: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``diagnose_request`` kind)."""
        from repro.flow.serialize import diagnose_request_to_dict

        return diagnose_request_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiagnoseRequest":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import diagnose_request_from_dict

        return diagnose_request_from_dict(data)


@dataclass(frozen=True)
class DiagnoseResponse:
    """``POST /diagnose`` reply.

    ``result`` is a full ``diagnosis_result`` payload with ``timings``
    normalised to ``{}``, which makes the body a deterministic function
    of the fail log: byte-identical to serialising a local
    :meth:`~repro.flow.session.Session.diagnose` of the same log.
    ``batched``/``batch_size`` record how the micro-batcher served it.
    """

    result: dict[str, Any]
    patterns_ref: str
    batched: bool
    batch_size: int
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``diagnose_response`` kind)."""
        from repro.flow.serialize import diagnose_response_to_dict

        return diagnose_response_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiagnoseResponse":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import diagnose_response_from_dict

        return diagnose_response_from_dict(data)


@dataclass(frozen=True)
class AtpgRequest:
    """``POST /atpg``: run (or reuse) the ATPG substrate for a circuit."""

    circuit: str
    scale: float = 1.0
    seed: int = 2001
    max_random_patterns: int = 4096
    backtrack_limit: int = 250
    engine: str = "batch"
    timeout_ms: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``atpg_request`` kind)."""
        from repro.flow.serialize import atpg_request_to_dict

        return atpg_request_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AtpgRequest":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import atpg_request_from_dict

        return atpg_request_from_dict(data)


@dataclass(frozen=True)
class AtpgResponse:
    """``POST /atpg`` reply: a full ``atpg_result`` payload plus
    provenance (``from_memo``: served from the session's in-process
    memo rather than computed or loaded for this request)."""

    result: dict[str, Any]
    from_memo: bool
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``atpg_response`` kind)."""
        from repro.flow.serialize import atpg_response_to_dict

        return atpg_response_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AtpgResponse":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import atpg_response_from_dict

        return atpg_response_from_dict(data)


@dataclass(frozen=True)
class SweepRequest:
    """``POST /sweep``: a circuits x TPGs x evolution-lengths grid."""

    circuits: tuple[str, ...]
    tpgs: tuple[str, ...] = ("adder",)
    evolution_lengths: tuple[int, ...] = (32,)
    scale: float = 1.0
    seed: int = 2001
    timeout_ms: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``sweep_request`` kind)."""
        from repro.flow.serialize import sweep_request_to_dict

        return sweep_request_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepRequest":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import sweep_request_from_dict

        return sweep_request_from_dict(data)


@dataclass(frozen=True)
class SweepResponse:
    """``POST /sweep`` reply: grid cells in deterministic order (the
    ``repro sweep --json`` cell vocabulary)."""

    cells: tuple[dict[str, Any], ...]
    n_cached: int
    seconds: float

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``sweep_response`` kind)."""
        from repro.flow.serialize import sweep_response_to_dict

        return sweep_response_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepResponse":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import sweep_response_from_dict

        return sweep_response_from_dict(data)


@dataclass(frozen=True)
class ServeError:
    """Any non-2xx reply body: what went wrong, the HTTP status, and —
    for 429 load shedding — how long to back off (seconds)."""

    error: str
    status: int
    retry_after: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """Schema-stamped plain-dict form (``serve_error`` kind)."""
        from repro.flow.serialize import serve_error_to_dict

        return serve_error_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeError":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import serve_error_from_dict

        return serve_error_from_dict(data)


@dataclass
class RequestValidationError(ValueError):
    """A request body parsed as JSON but violates the API contract."""

    message: str = field(default="invalid request")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.message


def validate_diagnose_request(request: DiagnoseRequest) -> None:
    """Reject contract violations before any compute is queued."""
    if request.method not in DIAGNOSE_METHODS:
        raise RequestValidationError(
            f"unknown method {request.method!r}; expected one of "
            f"{', '.join(DIAGNOSE_METHODS)}"
        )
    if request.patterns is None and request.patterns_ref is None:
        raise RequestValidationError(
            "one of 'patterns' or 'patterns_ref' is required"
        )
    if not request.responses:
        raise RequestValidationError("'responses' must be non-empty")
    if request.patterns is not None and len(request.patterns) != len(
        request.responses
    ):
        raise RequestValidationError(
            f"{len(request.patterns)} patterns but "
            f"{len(request.responses)} responses"
        )
    if request.top_k < 1:
        raise RequestValidationError("'top_k' must be >= 1")
