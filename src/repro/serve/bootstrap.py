"""Process entry points for ``repro serve``.

:func:`run` is the foreground worker the CLI execs: it installs
SIGTERM/SIGINT handlers that trigger the server's graceful drain (stop
accepting, finish every accepted request, flush responses, exit 0) —
the contract a process supervisor rolling a worker fleet relies on.

:class:`BackgroundServer` hosts the same server on a daemon thread
inside the current process — the harness tests, the example client and
the throughput benchmark all use it to get a real listening socket
without subprocess management.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from typing import Any

from repro.serve.server import ReproServer, ServeConfig


def run(config: ServeConfig | None = None) -> int:
    """Run one serve worker in the foreground until SIGTERM/SIGINT."""
    config = config or ServeConfig()
    server = ReproServer(config)

    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        await server.start()
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"(window {config.batch_window_ms:g} ms, max batch "
            f"{config.max_batch}, max queue {config.max_queue})",
            flush=True,
        )
        await server.serve_until(stop)
        print("repro serve drained cleanly", flush=True)

    asyncio.run(main())
    return 0


class BackgroundServer:
    """A live serve worker on a daemon thread (context manager).

    ::

        with BackgroundServer(ServeConfig(port=0)) as server:
            client = ServeClient(server.host, server.port)
            ...

    ``port=0`` binds an ephemeral port; the resolved address is on
    ``host``/``port`` once ``__enter__`` returns.  Exit performs the
    same graceful drain as SIGTERM in the foreground path.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.server: ReproServer | None = None
        self.host: str = self.config.host
        self.port: int = self.config.port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._error: BaseException | None = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serve worker failed to start within 30 s")
        if self._error is not None:
            raise RuntimeError("serve worker failed to start") from self._error
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def stop(self) -> None:
        """Trigger the graceful drain and join the worker thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not self._done.is_set():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # surface startup failures to __enter__
            self._error = exc
            self._ready.set()
        finally:
            self._done.set()

    async def _serve(self) -> None:
        self.server = ReproServer(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self.server.serve_until(self._stop)
