"""Request micro-batching: hold, fuse, dispatch.

The compute engines underneath the service are word/fault-parallel —
one :class:`~repro.diagnosis.dictionary.FaultDictionary` lookup pass
scores a whole batch of fail logs for barely more than one (PRs 1/4/6
established the same trick along the fault axis).  The server therefore
does not process requests as they arrive: :class:`MicroBatcher` holds
concurrent requests for a bounded window (``--batch-window-ms``), caps
the batch (``--max-batch``), fuses same-group requests (same circuit,
scale, pattern set, method) and hands each fused group to the compute
executor in one call.

Robustness contract:

* **bounded queue** — ``submit`` raises :class:`QueueFullError` once
  ``max_queue`` requests are pending; the server maps that to ``429`` +
  ``Retry-After`` (load shedding beats collapse);
* **deadline propagation** — every work item carries its deadline; the
  window never waits past the earliest deadline in the forming batch,
  and items that expire while queued are failed with
  :class:`DeadlineExceededError` (``504``) instead of burning compute;
* **graceful drain** — :meth:`close` stops intake, then the worker
  finishes everything already queued before the batcher reports
  drained, which is what makes SIGTERM loss-free.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Hashable

from repro.obs.metrics import NULL_REGISTRY

#: Batch-occupancy histogram bounds (requests fused per dispatched
#: group) — powers of two up to the default ``max_batch``.
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class QueueFullError(RuntimeError):
    """The bounded request queue is at capacity (shed with 429)."""


class BatcherClosedError(RuntimeError):
    """The batcher is draining/closed and accepts no new work."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before compute started (504)."""


@dataclass
class PendingWork:
    """One queued request: its parsed payload, fuse key, and future."""

    kind: str
    group_key: Hashable
    payload: Any
    future: asyncio.Future
    enqueued: float
    deadline: float


@dataclass
class BatcherStats:
    """Counters the server surfaces through ``GET /stats``."""

    submitted: int = 0
    dispatched_groups: int = 0
    dispatched_requests: int = 0
    occupancy_sum: int = 0
    max_occupancy: int = 0
    expired: int = 0
    shed: int = 0
    depth_high_water: int = 0

    def as_dict(self) -> dict[str, Any]:
        average = (
            self.occupancy_sum / self.dispatched_groups
            if self.dispatched_groups
            else 0.0
        )
        return {
            "submitted": self.submitted,
            "batches": self.dispatched_groups,
            "batched_requests": self.dispatched_requests,
            "avg_occupancy": round(average, 3),
            "max_occupancy": self.max_occupancy,
            "expired": self.expired,
            "shed": self.shed,
            "depth_high_water": self.depth_high_water,
        }


_SENTINEL = object()


@dataclass
class MicroBatcher:
    """Bounded-window, bounded-size, deadline-aware request fuser.

    ``process`` is an async callable receiving one *group* (a list of
    :class:`PendingWork` sharing ``group_key``); it must resolve every
    item's future.  Groups from one window are dispatched back to back.
    """

    process: Callable[[list[PendingWork]], Awaitable[None]]
    window_s: float = 0.010
    max_batch: int = 32
    max_queue: int = 256
    stats: BatcherStats = field(default_factory=BatcherStats)
    #: Optional :class:`repro.obs.MetricsRegistry`; the default no-op
    #: registry keeps the intake path free of telemetry cost.
    metrics: Any = NULL_REGISTRY

    def __post_init__(self) -> None:
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False
        self._task: asyncio.Task | None = None
        # Metric mirrors of BatcherStats, incremented at the same sites
        # so GET /stats and GET /metrics always agree.
        m = self.metrics
        self._m_submitted = m.counter(
            "repro_serve_submitted_total", help="Requests accepted by the batcher."
        )
        self._m_shed = m.counter(
            "repro_serve_shed_total", help="Requests shed at the bounded queue (429)."
        )
        self._m_expired = m.counter(
            "repro_serve_deadline_expired_total",
            help="Requests whose deadline passed while queued (504).",
        )
        self._m_batches = m.counter(
            "repro_serve_batches_total", help="Fused groups dispatched to compute."
        )
        self._m_batched_requests = m.counter(
            "repro_serve_batched_requests_total",
            help="Requests dispatched inside fused groups.",
        )
        self._m_occupancy = m.histogram(
            "repro_serve_batch_occupancy",
            buckets=OCCUPANCY_BUCKETS,
            help="Requests fused per dispatched group.",
        )
        self._m_depth = m.gauge(
            "repro_serve_queue_depth", help="Requests currently queued."
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker loop on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Stop intake, drain everything already queued, stop the
        worker.  Returns only when every accepted request is resolved."""
        if self._closed:
            if self._task is not None:
                await self._task
            return
        self._closed = True
        self._queue.put_nowait(_SENTINEL)
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def depth(self) -> int:
        """Requests currently queued (the load-shedding signal)."""
        return self._queue.qsize()

    # -- intake ------------------------------------------------------------

    def submit(self, work: PendingWork) -> None:
        """Queue one request; raises instead of queueing unboundedly."""
        if self._closed:
            raise BatcherClosedError("server is draining")
        if self._queue.qsize() >= self.max_queue:
            self.stats.shed += 1
            self._m_shed.inc()
            raise QueueFullError(
                f"queue depth {self._queue.qsize()} >= max {self.max_queue}"
            )
        self._queue.put_nowait(work)
        self.stats.submitted += 1
        self._m_submitted.inc()
        self._m_depth.set(self._queue.qsize())
        self.stats.depth_high_water = max(
            self.stats.depth_high_water, self._queue.qsize()
        )

    # -- worker ------------------------------------------------------------

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _SENTINEL:
                break
            batch = [first]
            flush_by = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                wait = min(flush_by, min(w.deadline for w in batch)) - loop.time()
                if wait <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), wait)
                except asyncio.TimeoutError:
                    break
                if item is _SENTINEL:
                    stopping = True
                    break
                batch.append(item)
            await self._dispatch(batch)
        # Drain: everything accepted before close() gets processed.
        leftovers: list[PendingWork] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _SENTINEL:
                leftovers.append(item)
        while leftovers:
            chunk, leftovers = (
                leftovers[: self.max_batch],
                leftovers[self.max_batch :],
            )
            await self._dispatch(chunk)

    async def _dispatch(self, batch: list[PendingWork]) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: list[PendingWork] = []
        self._m_depth.set(self._queue.qsize())
        for work in batch:
            if work.deadline <= now:
                self.stats.expired += 1
                self._m_expired.inc()
                if not work.future.done():
                    work.future.set_exception(
                        DeadlineExceededError("deadline passed while queued")
                    )
            else:
                live.append(work)
        groups: dict[Hashable, list[PendingWork]] = {}
        for work in live:
            groups.setdefault(work.group_key, []).append(work)
        for group in groups.values():
            self.stats.dispatched_groups += 1
            self.stats.dispatched_requests += len(group)
            self.stats.occupancy_sum += len(group)
            self.stats.max_occupancy = max(self.stats.max_occupancy, len(group))
            self._m_batches.inc()
            self._m_batched_requests.inc(len(group))
            self._m_occupancy.observe(len(group))
            try:
                await self.process(group)
            except Exception as exc:  # the group's failure, not the loop's
                for work in group:
                    if not work.future.done():
                        work.future.set_exception(exc)
