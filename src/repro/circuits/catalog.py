"""The benchmark catalog: every circuit the paper's evaluation touches.

Each entry records the *real* ISCAS statistics (PI / PO / FF / gate
counts, from the published suite profiles [9][10]) and provides either
the embedded genuine netlist (c17, s27) or a seeded synthetic stand-in
of the same size class (see DESIGN.md section 2 for why the substitution
preserves the experiments' shape).

``load_circuit(name, scale=...)`` is the single entry point; sequential
circuits are returned in their full-scan combinational view by default,
matching the paper's "full-scan version of ISCAS'89" setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.bench import parse_bench
from repro.circuit.fullscan import full_scan_view
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuit.netlist import Circuit
from repro.circuits.data import EMBEDDED_BENCHES


@dataclass(frozen=True)
class CatalogEntry:
    """One benchmark circuit: real-suite statistics plus provenance."""

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    n_dffs: int = 0
    embedded: bool = False

    @property
    def is_sequential(self) -> bool:
        """True for ISCAS'89 members (tested via their full-scan view)."""
        return self.n_dffs > 0

    @property
    def scan_inputs(self) -> int:
        """PI count of the full-scan combinational view (PI + FF)."""
        return self.n_inputs + self.n_dffs


# Real suite statistics (Brglez et al. [9][10]).  Gate counts follow the
# commonly cited profiles; they parameterise the synthetic stand-ins.
_RAW_CATALOG: tuple[CatalogEntry, ...] = (
    # ISCAS'85 (combinational)
    CatalogEntry("c17", 5, 2, 6, embedded=True),
    CatalogEntry("c432", 36, 7, 160),
    CatalogEntry("c499", 41, 32, 202),
    CatalogEntry("c880", 60, 26, 383),
    CatalogEntry("c1355", 41, 32, 546),
    CatalogEntry("c1908", 33, 25, 880),
    CatalogEntry("c2670", 233, 140, 1193),
    CatalogEntry("c3540", 50, 22, 1669),
    CatalogEntry("c5315", 178, 123, 2307),
    CatalogEntry("c6288", 32, 32, 2416),
    CatalogEntry("c7552", 207, 108, 3512),
    # ISCAS'89 (sequential; tested full-scan)
    CatalogEntry("s27", 4, 1, 10, n_dffs=3, embedded=True),
    CatalogEntry("s298", 3, 6, 119, n_dffs=14),
    CatalogEntry("s344", 9, 11, 160, n_dffs=15),
    CatalogEntry("s382", 3, 6, 158, n_dffs=21),
    CatalogEntry("s420", 18, 1, 218, n_dffs=16),
    CatalogEntry("s641", 35, 24, 379, n_dffs=19),
    CatalogEntry("s713", 35, 23, 393, n_dffs=19),
    CatalogEntry("s820", 18, 19, 289, n_dffs=5),
    CatalogEntry("s838", 34, 1, 446, n_dffs=32),
    CatalogEntry("s953", 16, 23, 395, n_dffs=29),
    CatalogEntry("s1196", 14, 14, 529, n_dffs=18),
    CatalogEntry("s1238", 14, 14, 508, n_dffs=18),
    CatalogEntry("s1423", 17, 5, 657, n_dffs=74),
    CatalogEntry("s5378", 35, 49, 2779, n_dffs=179),
    CatalogEntry("s9234", 36, 39, 5597, n_dffs=211),
    CatalogEntry("s13207", 62, 152, 7951, n_dffs=638),
    CatalogEntry("s15850", 77, 150, 9772, n_dffs=534),
)

CATALOG: dict[str, CatalogEntry] = {e.name: e for e in _RAW_CATALOG}

#: The circuits the paper's Tables 1/2 and Figure 2 report on.
PAPER_CIRCUITS: tuple[str, ...] = (
    "c499",
    "c880",
    "c1355",
    "c1908",
    "c7552",
    "s420",
    "s641",
    "s820",
    "s838",
    "s953",
    "s1238",
    "s1423",
    "s5378",
    "s9234",
    "s13207",
    "s15850",
)

#: Master seed for the synthetic suite (change to regenerate a new suite).
SUITE_SEED = 2001


def catalog_names() -> list[str]:
    """All catalog circuit names (ISCAS'85 first, then ISCAS'89)."""
    return list(CATALOG)


def load_circuit(
    name: str, scale: float = 1.0, full_scan: bool = True
) -> Circuit:
    """Load a benchmark circuit by name.

    Parameters
    ----------
    name:
        A catalog name (``"c880"``, ``"s1238"``, ...).
    scale:
        Size factor applied to the *synthetic* stand-ins (gate, PI, PO
        and FF counts are scaled down together, with sane floors).  The
        embedded genuine circuits ignore ``scale``.  Benchmarks use
        ``scale < 1`` to keep pure-Python runtimes reasonable; the
        experiment drivers accept ``--scale`` to run full-size.
    full_scan:
        Return the combinational full-scan view of sequential circuits
        (the paper's setup).  ``False`` returns the raw sequential
        netlist.
    """
    entry = CATALOG.get(name)
    if entry is None:
        raise KeyError(
            f"unknown circuit {name!r}; known: {', '.join(catalog_names())}"
        )
    if entry.embedded:
        circuit = parse_bench(EMBEDDED_BENCHES[name], name)
    else:
        circuit = generate_circuit(_scaled_spec(entry, scale))
    if full_scan and circuit.is_sequential():
        circuit = full_scan_view(circuit, name=name)
    return circuit


def _scaled_spec(entry: CatalogEntry, scale: float) -> GeneratorSpec:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def scaled(value: int, floor: int) -> int:
        return max(floor, round(value * scale))

    n_outputs = scaled(entry.n_outputs, 1)
    n_gates = max(scaled(entry.n_gates, 4), n_outputs + 3)
    return GeneratorSpec(
        name=entry.name,
        n_inputs=scaled(entry.n_inputs, 3),
        n_outputs=n_outputs,
        n_gates=n_gates,
        n_dffs=scaled(entry.n_dffs, 1) if entry.n_dffs else 0,
        seed=SUITE_SEED,
    )
