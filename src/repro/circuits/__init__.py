"""Benchmark circuit catalog (embedded genuine + ISCAS-sized synthetic)."""

from repro.circuits.catalog import (
    CATALOG,
    PAPER_CIRCUITS,
    SUITE_SEED,
    CatalogEntry,
    catalog_names,
    load_circuit,
)
from repro.circuits.data import EMBEDDED_BENCHES

__all__ = [
    "CATALOG",
    "EMBEDDED_BENCHES",
    "PAPER_CIRCUITS",
    "SUITE_SEED",
    "CatalogEntry",
    "catalog_names",
    "load_circuit",
]
