"""repro — set-covering reseeding for Functional BIST.

A full reimplementation of Chiusano, Di Carlo, Prinetto & Wunderlich,
*On Applying the Set Covering Model to Reseeding* (DATE 2001), together
with every substrate the paper's flow depends on: a gate-level circuit
model with ISCAS ``.bench`` I/O, stuck-at fault modelling and collapsing,
bit-parallel logic/fault simulation, a PODEM-based ATPG, accumulator and
LFSR test pattern generators, a covering-table reduction + exact-ILP
solver chain, and a GATSBY-style genetic-algorithm baseline.

Typical use::

    from repro import load_circuit, ReseedingPipeline, PipelineConfig

    circuit = load_circuit("s1238", scale=0.5)
    result = ReseedingPipeline(circuit, "adder", PipelineConfig()).run()
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.circuit import Circuit, Gate, GateType, parse_bench, write_bench
from repro.circuits import CATALOG, PAPER_CIRCUITS, load_circuit
from repro.faults import Fault, collapse_faults, full_fault_list
from repro.sim import BatchFaultSimulator, CompiledCircuit, FaultSimulator
from repro.atpg import AtpgEngine, Podem
from repro.tpg import TestPatternGenerator, make_tpg
from repro.reseeding import (
    DetectionMatrix,
    InitialReseedingBuilder,
    ReseedingSolution,
    Triplet,
    trim_solution,
)
from repro.setcover import CoverMatrix, reduce_matrix, solve_cover
from repro.gatsby import GatsbyReseeder
from repro.flow import PipelineConfig, ReseedingPipeline, explore_tradeoff
from repro.utils import BitVector, RngStream

__version__ = "1.0.0"

__all__ = [
    "AtpgEngine",
    "BatchFaultSimulator",
    "BitVector",
    "CATALOG",
    "CompiledCircuit",
    "CoverMatrix",
    "Circuit",
    "DetectionMatrix",
    "Fault",
    "FaultSimulator",
    "Gate",
    "GateType",
    "GatsbyReseeder",
    "InitialReseedingBuilder",
    "PAPER_CIRCUITS",
    "PipelineConfig",
    "Podem",
    "ReseedingPipeline",
    "ReseedingSolution",
    "RngStream",
    "TestPatternGenerator",
    "Triplet",
    "collapse_faults",
    "explore_tradeoff",
    "full_fault_list",
    "load_circuit",
    "make_tpg",
    "parse_bench",
    "reduce_matrix",
    "solve_cover",
    "trim_solution",
    "write_bench",
]
