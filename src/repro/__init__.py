"""repro — set-covering reseeding for Functional BIST.

A full reimplementation of Chiusano, Di Carlo, Prinetto & Wunderlich,
*On Applying the Set Covering Model to Reseeding* (DATE 2001), together
with every substrate the paper's flow depends on: a gate-level circuit
model with ISCAS ``.bench`` I/O, stuck-at fault modelling and collapsing,
bit-parallel logic/fault simulation, a PODEM-based ATPG, accumulator and
LFSR test pattern generators, a covering-table reduction + exact-ILP
solver chain, and a GATSBY-style genetic-algorithm baseline.

Typical use::

    from repro import load_circuit, ReseedingPipeline, PipelineConfig

    circuit = load_circuit("s1238", scale=0.5)
    result = ReseedingPipeline(circuit, "adder", PipelineConfig()).run()
    print(result.summary())

Batch use — shared circuit-level artefacts, on-disk artifact cache and
a circuits x TPGs x configs orchestrator::

    from repro import Session, sweep

    session = Session.from_name("s1238", scale=0.5, cache=".repro-cache")
    result = session.run("adder")          # warm re-runs skip ATPG
    grid = sweep(["c880", "s1238"], ["adder", "multiplier"], workers=4)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.circuit import Circuit, Gate, GateType, parse_bench, write_bench
from repro.circuits import CATALOG, PAPER_CIRCUITS, load_circuit
from repro.faults import Fault, collapse_faults, full_fault_list
from repro.sim import BatchFaultSimulator, CompiledCircuit, FaultSimulator
from repro.diagnosis import (
    Candidate,
    DiagnosisResult,
    FailLog,
    FaultDictionary,
    SignatureBisector,
    SimulatedTester,
    diagnose_effect_cause,
    make_fail_log,
)
from repro.atpg import AtpgEngine, Podem
from repro.tpg import TestPatternGenerator, make_tpg
from repro.reseeding import (
    DetectionMatrix,
    InitialReseedingBuilder,
    ReseedingSolution,
    Triplet,
    trim_solution,
)
from repro.setcover import CoverMatrix, reduce_matrix, solve_cover
from repro.gatsby import GatsbyReseeder
from repro.flow import (
    ArtifactCache,
    PipelineConfig,
    PipelineResult,
    ReseedingPipeline,
    Session,
    Stage,
    StageContext,
    explore_tradeoff,
    run_flow,
    sweep,
)
from repro.utils import BitVector, Registry, RngStream, UnknownComponentError

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "AtpgEngine",
    "BatchFaultSimulator",
    "BitVector",
    "CATALOG",
    "Candidate",
    "CompiledCircuit",
    "CoverMatrix",
    "Circuit",
    "DetectionMatrix",
    "DiagnosisResult",
    "FailLog",
    "Fault",
    "FaultDictionary",
    "FaultSimulator",
    "Gate",
    "GateType",
    "GatsbyReseeder",
    "InitialReseedingBuilder",
    "PAPER_CIRCUITS",
    "PipelineConfig",
    "PipelineResult",
    "Podem",
    "Registry",
    "ReseedingPipeline",
    "ReseedingSolution",
    "RngStream",
    "Session",
    "SignatureBisector",
    "SimulatedTester",
    "Stage",
    "StageContext",
    "TestPatternGenerator",
    "Triplet",
    "UnknownComponentError",
    "collapse_faults",
    "diagnose_effect_cause",
    "explore_tradeoff",
    "full_fault_list",
    "load_circuit",
    "make_fail_log",
    "make_tpg",
    "parse_bench",
    "reduce_matrix",
    "run_flow",
    "solve_cover",
    "sweep",
    "trim_solution",
    "write_bench",
]
