"""PODEM (Path-Oriented DEcision Making) deterministic test generation.

PODEM searches the primary-input space directly: it repeatedly derives
an *objective* (activate the fault, then advance the D-frontier toward a
primary output), *backtraces* the objective to an unassigned PI, assigns
it, and re-implies by five-valued simulation.  Conflicts flip the most
recent untried decision; exhausting the decision tree proves the fault
untestable (redundant).

The implementation keeps the textbook search structure but runs the
five-valued simulation on dense integer arrays (three-valued components
encoded 0/1/2, 2 = X) — the hot loop allocates no objects.

This is the deterministic core of the TestGen stand-in (see
:mod:`repro.atpg.engine`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum

from repro.circuit.gates import GateType, controlling_value, inversion_parity
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.utils.bitvec import BitVector

_X3 = 2

# Dense gate-type codes for the hot loop.
_INPUT, _AND, _NAND, _OR, _NOR, _XOR, _XNOR, _NOT, _BUF, _C0, _C1 = range(11)
_TYPE_CODE = {
    GateType.INPUT: _INPUT,
    GateType.AND: _AND,
    GateType.NAND: _NAND,
    GateType.OR: _OR,
    GateType.NOR: _NOR,
    GateType.XOR: _XOR,
    GateType.XNOR: _XNOR,
    GateType.NOT: _NOT,
    GateType.BUF: _BUF,
    GateType.CONST0: _C0,
    GateType.CONST1: _C1,
}
_NOT3 = (1, 0, _X3)


class PodemStatus(Enum):
    """Outcome of a PODEM run for one fault."""

    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass(frozen=True)
class TestCube:
    """A partially specified test pattern: PI name -> 0/1 for the
    assigned inputs; unassigned inputs are don't-cares."""

    __test__ = False  # not a pytest test class despite the name

    assignments: tuple[tuple[str, int], ...]

    @classmethod
    def from_dict(cls, assignments: dict[str, int]) -> "TestCube":
        return cls(tuple(sorted(assignments.items())))

    def as_dict(self) -> dict[str, int]:
        """The assignments as a dictionary."""
        return dict(self.assignments)

    @property
    def n_assigned(self) -> int:
        """Number of specified PIs."""
        return len(self.assignments)

    def to_pattern(self, inputs: list[str], rng) -> BitVector:
        """Fill don't-cares randomly and produce a full input pattern
        (bit ``k`` drives ``inputs[k]``)."""
        lookup = dict(self.assignments)
        bits = [
            lookup[name] if name in lookup else rng.getrandbits(1)
            for name in inputs
        ]
        return BitVector.from_bits(bits)


@dataclass(frozen=True)
class PodemResult:
    """Outcome, the cube when detected, and search-effort counters."""

    status: PodemStatus
    cube: TestCube | None
    backtracks: int
    decisions: int


class Podem:
    """PODEM bound to one combinational circuit.

    ``backtrack_limit`` bounds search effort per fault; hitting it
    yields ``ABORTED`` (the fault's testability stays unresolved).
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 250,
        heuristic: str = "level",
    ) -> None:
        if circuit.is_sequential():
            raise ValueError(
                f"circuit {circuit.name!r} is sequential; take full_scan_view() first"
            )
        if heuristic not in ("level", "scoap"):
            raise ValueError(f"unknown backtrace heuristic {heuristic!r}")
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.heuristic = heuristic
        order = circuit.topo_order()
        self._order = order
        self._id = {name: i for i, name in enumerate(order)}
        self._name = order
        n = len(order)
        input_set = set(circuit.inputs)
        self._is_input = [name in input_set for name in order]
        self._gtype = [0] * n
        self._fanins: list[tuple[int, ...]] = [()] * n
        levels = circuit.levels()
        self._level = [levels[name] for name in order]
        for node_id, name in enumerate(order):
            if name in input_set:
                self._gtype[node_id] = _INPUT
            else:
                gate = circuit.gates[name]
                self._gtype[node_id] = _TYPE_CODE[gate.gtype]
                self._fanins[node_id] = tuple(self._id[f] for f in gate.fanins)
        fanout: list[list[int]] = [[] for _ in range(n)]
        for node_id, fanins in enumerate(self._fanins):
            for fanin_id in fanins:
                fanout[fanin_id].append(node_id)
        self._fanouts = [tuple(f) for f in fanout]
        self._output_ids = [self._id[name] for name in circuit.outputs]
        self._is_output = [False] * n
        for output_id in self._output_ids:
            self._is_output[output_id] = True
        self._po_distance = self._compute_po_distance()
        # controlling value / inversion per dense code
        self._control = [None] * 11
        self._invert = [0] * 11
        for gtype, code in _TYPE_CODE.items():
            if gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
                continue
            self._control[code] = controlling_value(gtype)
            self._invert[code] = inversion_parity(gtype)
        # backtrace difficulty estimates: logic levels by default, SCOAP
        # controllabilities on request
        if heuristic == "scoap":
            from repro.atpg.scoap import compute_scoap

            measures = compute_scoap(circuit)
            self._cc = [
                (measures.cc0[name], measures.cc1[name]) for name in order
            ]
        else:
            self._cc = None
        # scratch value arrays reused across simulations
        self._good = [_X3] * n
        self._faulty = [_X3] * n
        self._d_nets: set[int] = set()
        self._seen_stamp = [0] * n
        self._generation = 0
        # current fault context (set by generate())
        self._site_net_id = -1
        self._site_gate_id: int | None = None
        self._site_pin: int | None = None
        self._stuck = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, fault: Fault) -> PodemResult:
        """Search for a test cube detecting ``fault``."""
        site_net_id, site_gate_id, site_pin = self._check_fault(fault)
        self._site_net_id = site_net_id
        self._site_gate_id = site_gate_id
        self._site_pin = site_pin
        self._stuck = fault.value
        stuck = fault.value
        self._reset_values()
        decisions: list[list] = []  # [pi_id, value, flipped]
        backtracks = 0
        total_decisions = 0
        while True:
            if self._detected():
                cube = TestCube.from_dict(
                    {self._name[d[0]]: d[1] for d in decisions}
                )
                return PodemResult(
                    PodemStatus.DETECTED, cube, backtracks, total_decisions
                )
            objective = self._objective(site_net_id, stuck)
            backtrace = (
                self._backtrace(objective) if objective is not None else None
            )
            if backtrace is None:
                flipped = False
                while decisions:
                    last = decisions[-1]
                    if not last[2]:
                        last[1] = 1 - last[1]
                        last[2] = True
                        self._assign(last[0], last[1])
                        backtracks += 1
                        flipped = True
                        break
                    self._assign(last[0], _X3)
                    decisions.pop()
                if not flipped:
                    return PodemResult(
                        PodemStatus.UNTESTABLE, None, backtracks, total_decisions
                    )
                if backtracks > self.backtrack_limit:
                    return PodemResult(
                        PodemStatus.ABORTED, None, backtracks, total_decisions
                    )
                continue
            pi_id, value = backtrace
            decisions.append([pi_id, value, False])
            self._assign(pi_id, value)
            total_decisions += 1

    # ------------------------------------------------------------------
    # five-valued simulation with fault injection (hot loop)
    # ------------------------------------------------------------------

    def _reset_values(self) -> None:
        """Re-initialise the value arrays for a fresh fault: everything
        X, constants propagated, the stem stuck value injected."""
        n = len(self._good)
        self._good = good = [_X3] * n
        self._faulty = faulty = [_X3] * n
        self._d_nets = set()
        gtypes = self._gtype
        all_fanins = self._fanins
        site_net_id = self._site_net_id
        site_gate_id = self._site_gate_id
        site_pin = self._site_pin
        stuck = self._stuck
        for node_id in range(n):
            code = gtypes[node_id]
            if code == _INPUT:
                g = f = _X3
            elif code == _C0:
                g = f = 0
            elif code == _C1:
                g = f = 1
            else:
                fanins = all_fanins[node_id]
                g = _eval3(code, fanins, good)
                if node_id == site_gate_id:
                    f = _eval3_branch(code, fanins, faulty, site_pin, stuck)
                else:
                    f = _eval3(code, fanins, faulty)
            if node_id == site_net_id and site_gate_id is None:
                f = stuck
            good[node_id] = g
            faulty[node_id] = f
            if g != _X3 and f != _X3 and g != f:
                self._d_nets.add(node_id)

    def _assign(self, pi_id: int, value: int) -> None:
        """Set a PI to 0/1/X and propagate the change event-driven
        through its fanout cone (early cutoff on unchanged nodes)."""
        good = self._good
        faulty = self._faulty
        site_net_id = self._site_net_id
        site_gate_id = self._site_gate_id
        site_pin = self._site_pin
        stuck = self._stuck
        d_nets = self._d_nets
        gtypes = self._gtype
        all_fanins = self._fanins
        fanouts = self._fanouts

        new_faulty = stuck if (pi_id == site_net_id and site_gate_id is None) else value
        if good[pi_id] == value and faulty[pi_id] == new_faulty:
            return
        good[pi_id] = value
        faulty[pi_id] = new_faulty
        _update_d(d_nets, pi_id, value, new_faulty)

        pending: list[int] = []
        in_queue: set[int] = set()
        for fanout_id in fanouts[pi_id]:
            heapq.heappush(pending, fanout_id)
            in_queue.add(fanout_id)
        while pending:
            node_id = heapq.heappop(pending)
            in_queue.discard(node_id)
            code = gtypes[node_id]
            fanins = all_fanins[node_id]
            g = _eval3(code, fanins, good)
            if node_id == site_gate_id:
                f = _eval3_branch(code, fanins, faulty, site_pin, stuck)
            else:
                f = _eval3(code, fanins, faulty)
            if node_id == site_net_id and site_gate_id is None:
                f = stuck
            if g == good[node_id] and f == faulty[node_id]:
                continue
            good[node_id] = g
            faulty[node_id] = f
            _update_d(d_nets, node_id, g, f)
            for fanout_id in fanouts[node_id]:
                if fanout_id not in in_queue:
                    heapq.heappush(pending, fanout_id)
                    in_queue.add(fanout_id)

    # ------------------------------------------------------------------
    # search machinery
    # ------------------------------------------------------------------

    def _detected(self) -> bool:
        good, faulty = self._good, self._faulty
        for output_id in self._output_ids:
            g = good[output_id]
            f = faulty[output_id]
            if g != _X3 and f != _X3 and g != f:
                return True
        return False

    def _d_frontier(self) -> list[int]:
        """Gates reading a D-bearing net whose own output is still
        undetermined in at least one machine.  Walks only the fanouts of
        the (incrementally maintained) D nets."""
        good, faulty = self._good, self._faulty
        frontier: list[int] = []
        self._generation += 1
        stamp = self._generation
        seen = self._seen_stamp
        for d_net in self._d_nets:
            # A stuck branch is itself a fault effect even when the stem
            # carries none; the branch's reading gate handles that below.
            for fanout_id in self._fanouts[d_net]:
                if seen[fanout_id] == stamp:
                    continue
                seen[fanout_id] = stamp
                if good[fanout_id] != _X3 and faulty[fanout_id] != _X3:
                    continue
                frontier.append(fanout_id)
        # The branch-site gate sees a D on its stuck pin whenever the stem
        # good value activates the fault, even if the stem net is not a D.
        gate_id = self._site_gate_id
        if (
            gate_id is not None
            and seen[gate_id] != stamp
            and good[self._site_net_id] == 1 - self._stuck
            and (good[gate_id] == _X3 or faulty[gate_id] == _X3)
        ):
            frontier.append(gate_id)
        return frontier

    def _x_path_exists(self, frontier: list[int]) -> bool:
        good, faulty = self._good, self._faulty
        self._generation += 1
        stamp = self._generation
        seen = self._seen_stamp
        stack = list(frontier)
        while stack:
            node_id = stack.pop()
            if seen[node_id] == stamp:
                continue
            seen[node_id] = stamp
            if self._is_output[node_id]:
                return True
            for fanout_id in self._fanouts[node_id]:
                if seen[fanout_id] == stamp:
                    continue
                if good[fanout_id] != _X3 and faulty[fanout_id] != _X3:
                    continue  # fully determined net blocks the path
                stack.append(fanout_id)
        return False

    def _objective(self, site_net_id: int, stuck: int) -> tuple[int, int] | None:
        """The next (net, value) goal, or None when the state is a dead
        end (activation impossible, frontier dead, or no X-path)."""
        site_good = self._good[site_net_id]
        if site_good == stuck:
            return None  # cannot activate
        if site_good == _X3:
            return (site_net_id, 1 - stuck)
        frontier = self._d_frontier()
        if not frontier:
            return None
        if not self._x_path_exists(frontier):
            return None
        distances = self._po_distance
        # Tie-break equal PO distances by node id: frontier membership is
        # a set, so without this the choice would depend on hash/iteration
        # order (and could differ across Python builds or equivalent
        # implementations of the same search).
        gate_id = min(
            frontier,
            key=lambda g: (
                distances[g] if distances[g] is not None else 1 << 30,
                g,
            ),
        )
        control = self._control[self._gtype[gate_id]]
        good = self._good
        for fanin_id in self._fanins[gate_id]:
            if good[fanin_id] == _X3:
                target = 0 if control is None else 1 - control
                return (fanin_id, target)
        return None

    def _backtrace(self, objective: tuple[int, int]) -> tuple[int, int] | None:
        """Map an objective to an unassigned-PI assignment along X nets."""
        good = self._good
        node_id, target = objective
        for _ in range(len(good) + 1):
            if self._is_input[node_id]:
                return (node_id, target)
            code = self._gtype[node_id]
            if code in (_C0, _C1):
                return None
            fanins = self._fanins[node_id]
            x_fanins = [f for f in fanins if good[f] == _X3]
            if not x_fanins:
                return None
            if code in (_NOT, _BUF):
                target ^= self._invert[code]
                node_id = fanins[0]
                continue
            control = self._control[code]
            pre_inversion = target ^ self._invert[code]
            if control is not None:
                if pre_inversion == control:
                    # One controlling input suffices: pick the easiest.
                    node_id = min(
                        x_fanins, key=lambda f: self._difficulty(f, control)
                    )
                    target = control
                else:
                    # All inputs must go non-controlling: hardest first.
                    node_id = max(
                        x_fanins, key=lambda f: self._difficulty(f, 1 - control)
                    )
                    target = 1 - control
            else:
                # XOR/XNOR: fix one X input; needed value depends on the
                # parity of the other (known) inputs, unknowns as 0.
                chosen = x_fanins[0]
                other_parity = 0
                for fanin_id in fanins:
                    if fanin_id == chosen:
                        continue
                    g = good[fanin_id]
                    other_parity ^= g if g != _X3 else 0
                node_id = chosen
                target = pre_inversion ^ other_parity
        return None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _difficulty(self, node_id: int, value: int) -> int:
        """How hard the backtrace expects setting ``node_id`` to ``value``
        to be: SCOAP controllability when enabled, logic depth otherwise."""
        if self._cc is not None:
            return self._cc[node_id][value]
        return self._level[node_id]

    def _check_fault(self, fault: Fault) -> tuple[int, int | None, int | None]:
        site = fault.site
        net_id = self._id.get(site.net)
        if net_id is None:
            raise KeyError(f"fault site net {site.net!r} not in circuit")
        if not site.is_branch:
            return net_id, None, None
        gate = self.circuit.gates.get(site.gate)
        if gate is None or site.pin >= len(gate.fanins):
            raise KeyError(f"fault site {site} does not match a gate pin")
        if gate.fanins[site.pin] != site.net:
            raise KeyError(
                f"fault site {site}: gate pin reads {gate.fanins[site.pin]!r}"
            )
        return net_id, self._id[site.gate], site.pin

    def _compute_po_distance(self) -> list[int | None]:
        """Shortest fanout distance from each net to any PO (None if the
        net cannot reach an output)."""
        n = len(self._name)
        distance: list[int | None] = [None] * n
        for node_id in range(n - 1, -1, -1):
            if self._is_output[node_id]:
                distance[node_id] = 0
                continue
            best: int | None = None
            for fanout_id in self._fanouts[node_id]:
                fanout_distance = distance[fanout_id]
                if fanout_distance is not None:
                    candidate = fanout_distance + 1
                    if best is None or candidate < best:
                        best = candidate
            distance[node_id] = best
        return distance


def _update_d(d_nets: set[int], node_id: int, good: int, faulty: int) -> None:
    """Maintain the set of D-bearing nets after a value change."""
    if good != _X3 and faulty != _X3 and good != faulty:
        d_nets.add(node_id)
    else:
        d_nets.discard(node_id)


def _eval3(code: int, fanins: tuple[int, ...], values: list[int]) -> int:
    """Three-valued gate evaluation over dense value arrays."""
    if code == _AND or code == _NAND:
        result = 1
        for fanin_id in fanins:
            v = values[fanin_id]
            if v == 0:
                result = 0
                break
            if v == _X3:
                result = _X3
        return _NOT3[result] if code == _NAND else result
    if code == _OR or code == _NOR:
        result = 0
        for fanin_id in fanins:
            v = values[fanin_id]
            if v == 1:
                result = 1
                break
            if v == _X3:
                result = _X3
        return _NOT3[result] if code == _NOR else result
    if code == _XOR or code == _XNOR:
        result = 0
        for fanin_id in fanins:
            v = values[fanin_id]
            if v == _X3:
                return _X3
            result ^= v
        return _NOT3[result] if code == _XNOR else result
    if code == _NOT:
        return _NOT3[values[fanins[0]]]
    if code == _BUF:
        return values[fanins[0]]
    raise AssertionError(f"unexpected gate code {code}")


def _eval3_branch(
    code: int,
    fanins: tuple[int, ...],
    values: list[int],
    stuck_pin: int,
    stuck: int,
) -> int:
    """Like :func:`_eval3`, with pin ``stuck_pin`` forced to ``stuck``
    (faulty-machine evaluation of the gate reading a stuck branch)."""
    pin_values = [
        stuck if pin == stuck_pin else values[fanin_id]
        for pin, fanin_id in enumerate(fanins)
    ]
    if code == _AND or code == _NAND:
        result = 1
        for v in pin_values:
            if v == 0:
                result = 0
                break
            if v == _X3:
                result = _X3
        return _NOT3[result] if code == _NAND else result
    if code == _OR or code == _NOR:
        result = 0
        for v in pin_values:
            if v == 1:
                result = 1
                break
            if v == _X3:
                result = _X3
        return _NOT3[result] if code == _NOR else result
    if code == _XOR or code == _XNOR:
        result = 0
        for v in pin_values:
            if v == _X3:
                return _X3
            result ^= v
        return _NOT3[result] if code == _XNOR else result
    if code == _NOT:
        return _NOT3[pin_values[0]]
    if code == _BUF:
        return pin_values[0]
    raise AssertionError(f"unexpected gate code {code}")
