"""The complete ATPG flow (TestGen stand-in).

``AtpgEngine.run()`` produces what the paper's Initial Reseeding Builder
consumes: a deterministic test set ``ATPGTS`` that covers the target
fault list ``F`` completely (Section 3.1: "the test set ATPGTS provided
by a commercial gate-level ATPG tool, which guarantees complete covering
of F").  ``F`` is the set of collapsed faults proven testable — faults
PODEM proves untestable (redundant) are excluded, and aborted faults are
reported separately.

Two interchangeable test generators drive the deterministic top-off
phase:

* ``engine="batch"`` (default) — :class:`~repro.atpg.batch_podem.BatchPodem`,
  which implies a whole batch of fault lanes per sweep on the compiled
  plan and supports mid-batch fault dropping;
* ``engine="recursive"`` — the scalar :class:`~repro.atpg.podem.Podem`
  oracle, one fault at a time.

Both produce test sets with measured coverage 1.0 over ``F``; the
recursive path additionally reproduces the historical pattern sequence
bit for bit (the golden pins depend on it).  "Complete covering" is not
assumed: the final test set is re-simulated against ``F`` and the run
hard-errors (:class:`AtpgConsistencyError`) if any target fault slips
through — as does any DETECTED cube whose X-filled pattern fails to
detect its own target fault under the batched fault simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.batch_podem import BatchPodem
from repro.atpg.compaction import reverse_order_compaction
from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.random_gen import random_phase
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

#: Supported deterministic top-off engines.
ATPG_ENGINES = ("batch", "recursive")

#: Patterns accumulated before a windowed fault-drop sweep over the
#: not-yet-attempted faults.  Amortizes the per-pattern drop scan the
#: historical loop ran after every single pattern.
_DROP_FLUSH_PATTERNS = 8

#: Upcoming candidates lazily checked per simulator call while the
#: recursive cursor hunts for its next live fault.
_LAZY_CHECK_BLOCK = 64


class AtpgConsistencyError(RuntimeError):
    """The ATPG flow produced a result that violates its own invariants.

    Raised when a DETECTED cube's X-filled pattern does not detect its
    target fault under the batched fault simulator, or when the final
    test set fails to cover the target fault list ``F`` completely.
    Either means a test-generation/simulation disagreement — a bug, not
    a degraded result — so the run refuses to return.
    """


@dataclass
class AtpgResult:
    """Outcome of a full ATPG run.

    ``test_set`` covers every fault in ``target_faults`` (the paper's
    ``F``); ``untestable`` are proven-redundant faults; ``aborted`` hit
    the PODEM backtrack limit and are excluded from ``F``.
    ``measured_coverage`` is the re-simulated coverage of ``test_set``
    over ``target_faults`` — reported, not assumed.
    """

    circuit_name: str
    test_set: list[BitVector]
    target_faults: list[Fault]
    untestable: list[Fault]
    aborted: list[Fault]
    n_collapsed_faults: int
    random_patterns_kept: int
    podem_patterns: int
    measured_coverage: float

    @property
    def test_length(self) -> int:
        """Number of patterns in the final (compacted) test set."""
        return len(self.test_set)

    @property
    def fault_coverage(self) -> float:
        """Measured coverage of the testable universe.

        Re-simulated by the engine before the result is returned (and
        asserted to be 1.0 there); an empty target list is vacuously
        covered.
        """
        return self.measured_coverage

    @property
    def testable_fraction(self) -> float:
        """Testable faults / collapsed universe."""
        if not self.n_collapsed_faults:
            return 0.0
        return len(self.target_faults) / self.n_collapsed_faults

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name}: |TS|={self.test_length} "
            f"|F|={len(self.target_faults)} "
            f"coverage={self.measured_coverage:.4f} "
            f"untestable={len(self.untestable)} aborted={len(self.aborted)}"
        )

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (the artifact-cache format)."""
        from repro.flow.serialize import atpg_result_to_dict

        return atpg_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AtpgResult":
        """Inverse of :meth:`to_dict`; raises on schema mismatch."""
        from repro.flow.serialize import atpg_result_from_dict

        return atpg_result_from_dict(data)


class AtpgEngine:
    """Three-phase ATPG: random, deterministic top-off, reverse-order
    compaction.

    ``engine`` selects the top-off test generator (``"batch"`` or
    ``"recursive"``; see the module docstring).  Both engines share the
    random phase, the X-fill RNG stream, and the compaction pass.
    """

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 2001,
        max_random_patterns: int = 4096,
        backtrack_limit: int = 250,
        compact: bool = True,
        simulator: BatchFaultSimulator | None = None,
        engine: str = "batch",
        telemetry=None,
    ) -> None:
        if engine not in ATPG_ENGINES:
            raise ValueError(
                f"unknown ATPG engine {engine!r}; expected one of {ATPG_ENGINES}"
            )
        self.circuit = circuit
        self.seed = seed
        self.max_random_patterns = max_random_patterns
        self.backtrack_limit = backtrack_limit
        self.compact = compact
        self.engine = engine
        self.simulator = simulator or FaultSimulator(circuit)
        #: Optional :class:`repro.obs.MetricsRegistry`.  The top-off
        #: engine is transient (one per run), so its counters are folded
        #: into the registry once per run instead of collector-sampled;
        #: the simulator's counters ride its own collector.
        self.telemetry = telemetry
        if (
            telemetry is not None
            and getattr(telemetry, "enabled", False)
            and hasattr(self.simulator, "attach_metrics")
        ):
            self.simulator.attach_metrics(telemetry)

    def run(self, faults: list[Fault] | None = None) -> AtpgResult:
        """Generate a complete test set for ``faults`` (default: the
        collapsed stuck-at universe of the circuit)."""
        if faults is None:
            faults = collapse_faults(self.circuit)
        n_collapsed = len(faults)
        rng = RngStream(self.seed, "atpg", self.circuit.name)

        random_result = random_phase(
            self.circuit,
            faults,
            rng.child("random"),
            max_patterns=self.max_random_patterns,
            simulator=self.simulator,
        )
        patterns = list(random_result.patterns)
        n_random = len(patterns)

        fill_rng = rng.child("x-fill")
        untestable: list[Fault] = []
        aborted: list[Fault] = []
        topoff = (
            self._topoff_batch if self.engine == "batch" else self._topoff_recursive
        )
        podem_patterns = topoff(
            list(random_result.remaining), patterns, fill_rng, untestable, aborted
        )

        excluded = set(untestable) | set(aborted)
        target_faults = [f for f in faults if f not in excluded]
        if self.compact and patterns:
            patterns = reverse_order_compaction(
                self.circuit, patterns, target_faults, simulator=self.simulator
            )
        # The paper's premise is a test set with *complete* covering of
        # F.  Measure it instead of assuming it: re-simulate the final
        # set against the target list and refuse to return a partial
        # covering.
        measured = self.simulator.fault_coverage(patterns, target_faults)
        if measured != 1.0:
            missed = sum(
                1
                for hit in self.simulator.detected(patterns, target_faults)
                if not hit
            )
            raise AtpgConsistencyError(
                f"{self.circuit.name}: final test set covers "
                f"{measured:.6f} of F ({missed}/{len(target_faults)} "
                f"target faults undetected) — complete covering violated"
            )
        return AtpgResult(
            circuit_name=self.circuit.name,
            test_set=patterns,
            target_faults=target_faults,
            untestable=untestable,
            aborted=aborted,
            n_collapsed_faults=n_collapsed,
            random_patterns_kept=n_random,
            podem_patterns=podem_patterns,
            measured_coverage=measured,
        )

    # ------------------------------------------------------------------
    # deterministic top-off phases
    # ------------------------------------------------------------------

    def _cube_mismatch(self, fault: Fault) -> AtpgConsistencyError:
        """The cross-engine disagreement error: PODEM said DETECTED but
        the batched fault simulator, the independent referee, disagrees
        about the X-filled pattern.  Wrong D-propagation, bad X-fill or
        a site mix-up would all silently produce an incomplete test set,
        so this is a hard error rather than a dropped fault."""
        return AtpgConsistencyError(
            f"{self.circuit.name}: PODEM cube for {fault} does not "
            f"detect it after X-fill (simulator disagrees with "
            f"DETECTED status)"
        )

    def _topoff_recursive(
        self,
        remaining: list[Fault],
        patterns: list[BitVector],
        fill_rng,
        untestable: list[Fault],
        aborted: list[Fault],
    ) -> int:
        """Scalar top-off: one :class:`Podem` call per live fault.

        Reproduces the historical serial loop bit for bit — same fault
        attempt order, same X-fill RNG draws, same pattern sequence —
        while replacing its quadratic bookkeeping (``pending.pop(0)``
        plus a full drop scan after every pattern) with an index cursor,
        lazy per-candidate checks against the unflushed pattern window,
        and a windowed drop sweep every ``_DROP_FLUSH_PATTERNS``
        patterns.  A fault is attempted iff no earlier top-off pattern
        detects it, exactly as before; only when that is established is
        ``Podem.generate`` (deterministic per call) invoked.
        """
        podem = Podem(self.circuit, backtrack_limit=self.backtrack_limit)
        dropped = [False] * len(remaining)
        window: list[BitVector] = []
        podem_patterns = 0
        cursor = 0
        # Lazy-check memo: candidates below ``checked_through`` have
        # already been screened against a window of ``checked_window``
        # patterns; only a grown window forces a re-check.
        checked_through = 0
        checked_window = 0
        while True:
            while cursor < len(remaining):
                if dropped[cursor]:
                    cursor += 1
                    continue
                if not window or (
                    cursor < checked_through and len(window) == checked_window
                ):
                    break
                # Check a whole block of upcoming candidates against the
                # unflushed window in one simulator call.  Dropping a
                # later fault now (by patterns that would have dropped it
                # anyway) and re-checking a surviving one later (against
                # a superset window) are both behavior-preserving.
                block = [
                    i
                    for i in range(cursor, len(remaining))
                    if not dropped[i]
                ][:_LAZY_CHECK_BLOCK]
                flags = self.simulator.detected(
                    window, [remaining[i] for i in block]
                )
                for i, hit in zip(block, flags):
                    if hit:
                        dropped[i] = True
                checked_through = block[-1] + 1
                checked_window = len(window)
                if not dropped[cursor]:
                    break
                cursor += 1
            if cursor >= len(remaining):
                break
            fault = remaining[cursor]
            cursor += 1
            result = podem.generate(fault)
            if result.status is PodemStatus.UNTESTABLE:
                untestable.append(fault)
                continue
            if result.status is PodemStatus.ABORTED:
                aborted.append(fault)
                continue
            pattern = result.cube.to_pattern(self.circuit.inputs, fill_rng)
            if not self.simulator.detected([pattern], [fault])[0]:
                raise self._cube_mismatch(fault)
            patterns.append(pattern)
            window.append(pattern)
            podem_patterns += 1
            if len(window) >= _DROP_FLUSH_PATTERNS:
                tail = [
                    i for i in range(cursor, len(remaining)) if not dropped[i]
                ]
                if tail:
                    flags = self.simulator.detected(
                        window, [remaining[i] for i in tail]
                    )
                    for i, hit in zip(tail, flags):
                        if hit:
                            dropped[i] = True
                window.clear()
        return podem_patterns

    def _topoff_batch(
        self,
        remaining: list[Fault],
        patterns: list[BitVector],
        fill_rng,
        untestable: list[Fault],
        aborted: list[Fault],
    ) -> int:
        """Fault-parallel top-off driving :meth:`BatchPodem.stream`.

        Every generated pattern is hard-checked against its target
        fault, then fault-drops the in-flight lanes (covered lanes
        retire mid-batch and free their lane for the queue); every
        ``_DROP_FLUSH_PATTERNS`` patterns the accumulated window sweeps
        the still-queued faults so they never even get seated.
        """
        podem = BatchPodem(
            self.circuit,
            backtrack_limit=self.backtrack_limit,
            simulator=(
                self.simulator
                if isinstance(self.simulator, BatchFaultSimulator)
                else None
            ),
        )
        window: list[BitVector] = []
        podem_patterns = 0
        for fault, result in podem.stream(remaining):
            if result.status is PodemStatus.UNTESTABLE:
                untestable.append(fault)
                continue
            if result.status is PodemStatus.ABORTED:
                aborted.append(fault)
                continue
            pattern = result.cube.to_pattern(self.circuit.inputs, fill_rng)
            active = podem.active_faults()
            flags = self.simulator.detected([pattern], [fault] + active)
            if not flags[0]:
                raise self._cube_mismatch(fault)
            podem.drop([f for f, hit in zip(active, flags[1:]) if hit])
            patterns.append(pattern)
            window.append(pattern)
            podem_patterns += 1
            if len(window) >= _DROP_FLUSH_PATTERNS:
                queued = podem.queued_faults()
                if queued:
                    qflags = self.simulator.detected(window, queued)
                    podem.drop(
                        [f for f, hit in zip(queued, qflags) if hit]
                    )
                window.clear()
        self._fold_podem_counters(podem.counters())
        return podem_patterns

    def _fold_podem_counters(self, counters: dict[str, int]) -> None:
        """Accumulate one top-off run's search-effort counters into the
        attached metrics registry (no-op without telemetry)."""
        if self.telemetry is None or not getattr(self.telemetry, "enabled", False):
            return
        help_by_name = {
            "lanes_seated": "PODEM lanes seated into the batch engine.",
            "rounds": "Batched implication sweeps (rounds).",
            "backtracks": "PODEM decision backtracks across all lanes.",
            "decisions": "PODEM decisions across all lanes.",
            "tail_finishes": "Straggler faults finished by the scalar tail.",
        }
        for key, value in counters.items():
            self.telemetry.counter(
                f"repro_atpg_{key}_total", help=help_by_name.get(key, "")
            ).inc(value)
