"""The complete ATPG flow (TestGen stand-in).

``AtpgEngine.run()`` produces what the paper's Initial Reseeding Builder
consumes: a deterministic test set ``ATPGTS`` that covers the target
fault list ``F`` completely (Section 3.1: "the test set ATPGTS provided
by a commercial gate-level ATPG tool, which guarantees complete covering
of F").  ``F`` is the set of collapsed faults proven testable — faults
PODEM proves untestable (redundant) are excluded, and aborted faults are
reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.compaction import reverse_order_compaction
from repro.atpg.podem import Podem, PodemStatus
from repro.atpg.random_gen import random_phase
from repro.circuit.netlist import Circuit
from repro.faults.collapse import collapse_faults
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


@dataclass
class AtpgResult:
    """Outcome of a full ATPG run.

    ``test_set`` covers every fault in ``target_faults`` (the paper's
    ``F``); ``untestable`` are proven-redundant faults; ``aborted`` hit
    the PODEM backtrack limit and are excluded from ``F``.
    """

    circuit_name: str
    test_set: list[BitVector]
    target_faults: list[Fault]
    untestable: list[Fault]
    aborted: list[Fault]
    n_collapsed_faults: int
    random_patterns_kept: int
    podem_patterns: int

    @property
    def test_length(self) -> int:
        """Number of patterns in the final (compacted) test set."""
        return len(self.test_set)

    @property
    def fault_coverage(self) -> float:
        """Coverage of the testable universe (1.0 by construction)."""
        total = len(self.target_faults)
        return 1.0 if total else 0.0

    @property
    def testable_fraction(self) -> float:
        """Testable faults / collapsed universe."""
        if not self.n_collapsed_faults:
            return 0.0
        return len(self.target_faults) / self.n_collapsed_faults

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.circuit_name}: |TS|={self.test_length} "
            f"|F|={len(self.target_faults)} "
            f"untestable={len(self.untestable)} aborted={len(self.aborted)}"
        )

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (the artifact-cache format)."""
        from repro.flow.serialize import atpg_result_to_dict

        return atpg_result_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AtpgResult":
        """Inverse of :meth:`to_dict`; raises on schema mismatch."""
        from repro.flow.serialize import atpg_result_from_dict

        return atpg_result_from_dict(data)


class AtpgEngine:
    """Three-phase ATPG: random, PODEM top-off, reverse-order compaction."""

    def __init__(
        self,
        circuit: Circuit,
        seed: int = 2001,
        max_random_patterns: int = 4096,
        backtrack_limit: int = 250,
        compact: bool = True,
        simulator: BatchFaultSimulator | None = None,
    ) -> None:
        self.circuit = circuit
        self.seed = seed
        self.max_random_patterns = max_random_patterns
        self.backtrack_limit = backtrack_limit
        self.compact = compact
        self.simulator = simulator or FaultSimulator(circuit)

    def run(self, faults: list[Fault] | None = None) -> AtpgResult:
        """Generate a complete test set for ``faults`` (default: the
        collapsed stuck-at universe of the circuit)."""
        if faults is None:
            faults = collapse_faults(self.circuit)
        n_collapsed = len(faults)
        rng = RngStream(self.seed, "atpg", self.circuit.name)

        random_result = random_phase(
            self.circuit,
            faults,
            rng.child("random"),
            max_patterns=self.max_random_patterns,
            simulator=self.simulator,
        )
        patterns = list(random_result.patterns)
        n_random = len(patterns)

        podem = Podem(self.circuit, backtrack_limit=self.backtrack_limit)
        fill_rng = rng.child("x-fill")
        untestable: list[Fault] = []
        aborted: list[Fault] = []
        podem_patterns = 0
        pending = list(random_result.remaining)
        while pending:
            fault = pending.pop(0)
            result = podem.generate(fault)
            if result.status is PodemStatus.UNTESTABLE:
                untestable.append(fault)
                continue
            if result.status is PodemStatus.ABORTED:
                aborted.append(fault)
                continue
            pattern = result.cube.to_pattern(self.circuit.inputs, fill_rng)
            patterns.append(pattern)
            podem_patterns += 1
            if pending:
                # Fault-drop: the new pattern often detects other pending
                # faults (the random X-fill helps).
                flags = self.simulator.detected([pattern], pending)
                pending = [f for f, hit in zip(pending, flags) if not hit]

        excluded = set(untestable) | set(aborted)
        target_faults = [f for f in faults if f not in excluded]
        if self.compact and patterns:
            patterns = reverse_order_compaction(
                self.circuit, patterns, target_faults, simulator=self.simulator
            )
        return AtpgResult(
            circuit_name=self.circuit.name,
            test_set=patterns,
            target_faults=target_faults,
            untestable=untestable,
            aborted=aborted,
            n_collapsed_faults=n_collapsed,
            random_patterns_kept=n_random,
            podem_patterns=podem_patterns,
        )
