"""Static test-set compaction.

Reverse-order fault simulation with fault dropping (the classic static
compaction pass, in the spirit of COMPACTEST [15]): patterns are
re-simulated in reverse generation order; a pattern is kept only if it
detects at least one fault no later-kept pattern detects.  Deterministic
patterns (generated late, each essential for a hard fault) survive;
early random patterns whose faults are also covered later are dropped.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.utils.bitvec import BitVector


def reverse_order_compaction(
    circuit: Circuit,
    patterns: list[BitVector],
    faults: list[Fault],
    simulator: BatchFaultSimulator | None = None,
) -> list[BitVector]:
    """Drop patterns made redundant by later ones.

    Returns the kept patterns in their original relative order.  The
    compacted set detects exactly the same subset of ``faults`` as the
    input set (property-tested).
    """
    if not patterns:
        return []
    simulator = simulator or FaultSimulator(circuit)
    matrix = simulator.detection_matrix(patterns, faults)  # (patterns, faults)
    undetected = matrix.any(axis=0)  # faults still needing a detector
    keep: list[int] = []
    for pattern_index in range(len(patterns) - 1, -1, -1):
        detects_needed = matrix[pattern_index] & undetected
        if detects_needed.any():
            keep.append(pattern_index)
            undetected &= ~matrix[pattern_index]
    keep.reverse()
    return [patterns[i] for i in keep]
