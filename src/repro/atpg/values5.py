"""Packed five-valued algebra over ``uint64`` bit-planes.

The scalar D-algebra (:mod:`repro.atpg.values`) represents one net of
one machine pair as a ``(good, faulty)`` pair of three-valued values.
This module packs the same algebra for *many machines at once*: each
three-valued component is carried as **two bit-planes** per net —

* ``v`` — the value bit (meaningful only where the care bit is set);
* ``c`` — the care bit (1 = known 0/1, 0 = unknown X);

with the invariant ``v & ~c == 0`` (unknown lanes carry value 0).  Bit
``k`` of word ``w`` is machine/lane ``64*w + k``, exactly the packing
:class:`~repro.utils.bitvec.PackedPatterns` and the batched fault
simulator use for the pattern axis, so the batch PODEM
(:mod:`repro.atpg.batch_podem`) runs one fault per lane and evaluates a
whole level of gates for every lane with a handful of numpy calls.

The plane formulas are the word-parallel counterparts of the scalar
three-valued evaluators (``_eval3`` in :mod:`repro.atpg.podem`); the
property suite in ``tests/test_atpg_batch.py`` pins them to each other
component by component.

The per-gate plane algebra itself (:func:`not_planes` /
:func:`reduce_gate_planes`, plus the three-valued X code ``X3``) lives
in :mod:`repro.circuit.gates` next to the 2-valued gate kernels — the
3-valued simulators (:mod:`repro.sim.threeval`) share it — and is
re-exported here for the historical import path.  The segmented
:func:`reduceat_gate_planes` (the batch PODEM's ragged-fanin sweep) is
this module's own kernel.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gates import (
    X3,
    GateType,
    not_planes,
    reduce_gate_planes,
)
from repro.utils.kernels import kernel

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

__all__ = [
    "X3",
    "reduce_gate_planes",
    "reduceat_gate_planes",
    "not_planes",
    "planes_from_codes",
    "codes_from_planes",
]


@kernel
def reduceat_gate_planes(
    gtype: GateType, v: np.ndarray, c: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Segmented form of :func:`reduce_gate_planes` for ragged fanins.

    ``v`` / ``c`` stack the *concatenated* fanin planes of many
    same-type gates along axis 0 (mixed arities welcome); ``starts``
    marks each gate's first fanin row, exactly as
    :meth:`numpy.ufunc.reduceat` expects.  One call evaluates every
    same-type gate of a topological level for every packed lane, so the
    sweep's numpy-call count no longer depends on how arities fragment a
    level.  Same truth tables as :func:`reduce_gate_planes`.
    """
    if gtype in (GateType.AND, GateType.NAND):
        out_v = np.bitwise_and.reduceat(v, starts, axis=0)
        out_c = np.bitwise_and.reduceat(
            c, starts, axis=0
        ) | np.bitwise_or.reduceat(c & ~v, starts, axis=0)
    elif gtype in (GateType.OR, GateType.NOR):
        out_v = np.bitwise_or.reduceat(v, starts, axis=0)
        # v & ~c == 0, so a set value bit is always a *known* 1.
        out_c = np.bitwise_and.reduceat(c, starts, axis=0) | out_v
    elif gtype in (GateType.XOR, GateType.XNOR):
        out_c = np.bitwise_and.reduceat(c, starts, axis=0)
        out_v = np.bitwise_xor.reduceat(v, starts, axis=0) & out_c
    elif gtype in (GateType.NOT, GateType.BUF):
        out_v, out_c = v, c  # single fanin: gather *is* the result
    else:
        raise ValueError(f"gate type {gtype!r} has no plane-reduction form")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
        out_v = out_c & ~out_v
    return out_v, out_c


def planes_from_codes(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pack three-valued codes (0/1/2, lane axis last) into planes.

    ``codes`` has shape ``(..., n_lanes)``; the result planes have shape
    ``(..., ceil(n_lanes / 64))`` with lane ``64*w + k`` at bit ``k`` of
    word ``w`` (tail lanes are X).  Inverse of :func:`codes_from_planes`;
    mainly a test/debug helper — the hot path never round-trips.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    care = (codes != X3).astype(np.uint8)
    value = (codes == 1).astype(np.uint8)
    lead = codes.shape[:-1]
    n_lanes = codes.shape[-1]
    n_words = (n_lanes + 63) // 64 or 1

    def _pack(bits: np.ndarray) -> np.ndarray:
        flat = bits.reshape(-1, n_lanes)
        packed = np.packbits(flat, axis=1, bitorder="little")
        padded = np.zeros((flat.shape[0], n_words * 8), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        words = padded.view(np.dtype("<u8")).astype(np.uint64)
        return words.reshape(*lead, n_words)

    return _pack(value), _pack(care)


def codes_from_planes(
    v: np.ndarray, c: np.ndarray, n_lanes: int
) -> np.ndarray:
    """Unpack planes back to three-valued codes (0/1/2, lane axis last)."""
    lead = v.shape[:-1]

    def _unpack(words: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(words, dtype=np.uint64)
        bits = np.unpackbits(
            flat.view(np.uint8).reshape(flat.shape[0] if flat.ndim > 1 else 1, -1)
            if flat.ndim > 1
            else flat.view(np.uint8).reshape(1, -1),
            axis=1,
            bitorder="little",
        )
        return bits[:, :n_lanes]

    v2 = v.reshape(-1, v.shape[-1]) if v.ndim > 1 else v.reshape(1, -1)
    c2 = c.reshape(-1, c.shape[-1]) if c.ndim > 1 else c.reshape(1, -1)
    value = _unpack(v2)
    care = _unpack(c2)
    codes = np.where(care.astype(bool), value, np.uint8(X3)).astype(np.uint8)
    return codes.reshape(*lead, n_lanes) if lead else codes.reshape(n_lanes)
