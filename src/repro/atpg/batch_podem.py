"""Fault-parallel PODEM over the compiled circuit plan.

:class:`BatchPodem` generates tests for a whole *batch* of target
faults at once: each fault owns one bit **lane**, and the five-valued
(0/1/X/D/D') forward implication that dominates scalar PODEM's runtime
is evaluated for every lane together as packed ``uint64`` bit-planes
(:mod:`repro.atpg.values5` — two planes per machine: value + care).
Both machines of the D-algebra live in one double-width plane pair
(good lanes in the low words, faulty lanes in the high words), so one
segmented sweep per round implies every lane of every machine:

* the sweep walks the :class:`~repro.sim.logic.CompiledCircuit`
  levelized plan (``eval_levels``) one topological level at a time,
  evaluating each level's gates per *type* with
  :func:`~repro.atpg.values5.reduceat_gate_planes` (mixed arities share
  one segmented reduction, so numpy-call count tracks levels, not
  gates);
* after each level the per-lane fault forcings are re-asserted exactly
  the way the batched fault simulator's ``_BatchPlan`` injects faults —
  a stem freezes its net's faulty lane bit, a branch recomputes the
  reading gate's faulty output with the stuck pin.

The *search* half of PODEM (objective selection, backtrace, D-frontier
and X-path bookkeeping, decision flipping) stays per-lane and is
**borrowed verbatim from the recursive oracle**: a scalar
:class:`~repro.atpg.podem.Podem` instance is pointed at one lane's
unpacked value columns and asked for that lane's next objective /
backtrace.  Because both halves are shared or bit-equivalent, a lane's
decision sequence — and therefore its DETECTED / UNTESTABLE / ABORTED
outcome, its test cube, and even its backtrack and decision counters —
is identical to what ``Podem.generate`` produces for the same fault.
The differential suite in ``tests/test_atpg_batch.py`` pins this.

Lanes resolve independently; :meth:`stream` reseats freed lanes from
the queue immediately, and :meth:`drop` lets the driving engine retire
queued *and mid-search* lanes as soon as some freshly generated pattern
covers their fault (fault dropping between PODEM targets).  Once the
queue is dry and only a handful of straggler lanes remain, the stream
hands them to the recursive oracle one by one (``scalar_tail_lanes``):
a near-empty sweep costs the same as a full one, while the scalar
restart is deterministic and returns the very same result.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import numpy as np

from repro.atpg.podem import (
    _X3,
    Podem,
    PodemResult,
    PodemStatus,
    TestCube,
    _eval3_branch,
)
from repro.atpg.values5 import reduceat_gate_planes
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.logic import CompiledCircuit
from repro.utils.kernels import kernel

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Default number of fault lanes implied together (four uint64 words).
#: 256 keeps occupancy high enough to amortize the per-sweep numpy call
#: overhead on every catalog circuit; benchmarks may push higher.
DEFAULT_LANES = 256

#: Queue-dry lane count at which the stream falls back to the scalar
#: oracle for the stragglers (sweeps stop amortizing below this).
DEFAULT_SCALAR_TAIL = 8


class _Lane:
    """Search state of one in-flight fault lane."""

    __slots__ = (
        "fault",
        "col",
        "word",
        "fword",
        "mask",
        "site_net_id",
        "site_gate_id",
        "site_pin",
        "stuck",
        "force_level",
        "decisions",
        "backtracks",
        "total_decisions",
    )

    def __init__(self, fault: Fault, col: int, n_words: int) -> None:
        self.fault = fault
        self.col = col
        self.word, bit = divmod(col, 64)
        self.fword = n_words + self.word  # faulty half of the planes
        self.mask = np.uint64(1 << bit)
        self.decisions: list[list] = []  # [pi_id, value, flipped]
        self.backtracks = 0
        self.total_decisions = 0


class BatchPodem:
    """PODEM bound to one combinational circuit, fault-parallel.

    ``backtrack_limit`` / ``heuristic`` mean exactly what they mean on
    the recursive :class:`~repro.atpg.podem.Podem` (the per-lane search
    *is* that implementation).  ``batch_size`` is the lane count per
    implication sweep; ``scalar_tail_lanes`` is the queue-dry occupancy
    below which stragglers go to the scalar oracle (0 disables the
    fallback); ``simulator`` optionally donates its already compiled
    circuit so the engine, the fault simulator and the batch PODEM
    share one levelized plan.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 250,
        heuristic: str = "level",
        batch_size: int = DEFAULT_LANES,
        scalar_tail_lanes: int = DEFAULT_SCALAR_TAIL,
        simulator: BatchFaultSimulator | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.batch_size = batch_size
        self.scalar_tail_lanes = scalar_tail_lanes
        #: The recursive implementation, reused for structure, for the
        #: per-lane search machinery (objective/backtrace/frontier) and
        #: for the queue-dry straggler fallback.
        self._oracle = Podem(
            circuit, backtrack_limit=backtrack_limit, heuristic=heuristic
        )
        self._compiled = (
            simulator.compiled
            if simulator is not None
            else CompiledCircuit(circuit)
        )
        # Both sides order nodes by circuit.topo_order(), so dense ids
        # agree; the sweep and the search speak the same node language.
        assert self._compiled.n_nodes == len(self._oracle._order)
        self._n_words = (batch_size + 63) // 64
        self._n_lanes = self._n_words * 64
        n = self._compiled.n_nodes
        # One contiguous backing array carries value and care planes of
        # both machines — word columns [0, 2w) are the value plane and
        # [2w, 4w) the care plane, each split good-half / faulty-half.
        # The sweep gathers a group's fanin rows once to read all four,
        # and the round unpack is a single ``unpackbits``.
        self._P = np.zeros((n, 4 * self._n_words), dtype=np.uint64)
        self._V = self._P[:, : 2 * self._n_words]
        self._C = self._P[:, 2 * self._n_words :]
        # Per-lane PI assignment planes (value + care), the only sweep
        # input that changes between rounds.
        in_shape = (self._compiled.n_inputs, self._n_words)
        self._av = np.zeros(in_shape, dtype=np.uint64)
        self._ac = np.zeros(in_shape, dtype=np.uint64)
        self._input_row = {
            int(node_id): row
            for row, node_id in enumerate(self._compiled.input_ids)
        }
        self._plan = self._build_sweep_plan()
        self._lanes: list[_Lane | None] = [None] * batch_size
        self._forcings_by_level: dict[int, list[_Lane]] = {}
        self._queue: deque[Fault] = deque()
        self._dropped: set[Fault] = set()
        #: Sweep counter (perf forensics: decisions advance per sweep).
        self.sweeps = 0
        #: Engine-level effort counters, folded into a metrics registry
        #: by the driving :class:`repro.atpg.engine.AtpgEngine` once per
        #: run (this object is transient; see ``counters()``).
        self.lanes_seated = 0
        self.backtracks_total = 0
        self.decisions_total = 0
        self.tail_finishes = 0

    #: Inverting types fold into their base type for the sweep; the
    #: inversion is applied per level as one vectorized fixup.
    _BASE_TYPE = {
        GateType.NAND: GateType.AND,
        GateType.NOR: GateType.OR,
        GateType.XNOR: GateType.XOR,
        GateType.NOT: GateType.BUF,
    }

    def _build_sweep_plan(
        self,
    ) -> list[
        tuple[
            int,
            list[tuple[GateType, np.ndarray, np.ndarray, np.ndarray]],
            np.ndarray | None,
        ]
    ]:
        """Regroup the compiled ``eval_levels`` per (level, base gate
        type): each entry carries the merged outputs, the concatenated
        fanin ids and the segment starts for ``reduceat_gate_planes``,
        plus the level's inverted-output rows (NAND/NOR/XNOR/NOT fold
        into AND/OR/XOR/BUF and get one shared inversion fixup)."""
        plan = []
        for level, groups in self._compiled.eval_levels:
            by_type: dict[GateType, tuple[list[int], list[int], list[int]]] = {}
            inverted: list[int] = []
            for gtype, out_ids, fanin_matrix in groups:
                base = self._BASE_TYPE.get(gtype, gtype)
                if base is not gtype:
                    inverted.extend(int(o) for o in out_ids)
                outs, flat, starts = by_type.setdefault(base, ([], [], []))
                for row in range(fanin_matrix.shape[0]):
                    starts.append(len(flat))
                    flat.extend(int(f) for f in fanin_matrix[row])
                    outs.append(int(out_ids[row]))
            ops = [
                (
                    gtype,
                    np.array(outs, dtype=np.int64),
                    np.array(flat, dtype=np.int64),
                    np.array(starts, dtype=np.int64),
                )
                for gtype, (outs, flat, starts) in by_type.items()
            ]
            inv = np.array(sorted(inverted), dtype=np.int64) if inverted else None
            plan.append((level, ops, inv))
        return plan

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, fault: Fault) -> PodemResult:
        """Search for a test cube detecting ``fault`` (single lane);
        outcome and cube are identical to ``Podem.generate(fault)``."""
        for _, result in self.stream([fault]):
            return result
        raise AssertionError(f"lane for {fault} never resolved")

    def stream(
        self, faults: Iterable[Fault]
    ) -> Iterator[tuple[Fault, PodemResult]]:
        """Run the queue fault-parallel, yielding ``(fault, result)`` as
        lanes resolve.

        The driving engine may call :meth:`drop` between yields: dropped
        faults are skipped at seat time, mid-search lanes retire at the
        next round, and already-resolved-but-dropped results are never
        yielded (their fault is covered by an existing pattern, so the
        cube would only lengthen the test set).  Resolution order is
        deterministic: lanes are stepped and reported in column order
        every round.
        """
        for lane in self._lanes:
            # A previous stream abandoned early (e.g. ``generate``
            # returning mid-iteration) may leave lanes seated.
            if lane is not None:
                self._unseat(lane)
        self._queue = deque(faults)
        self._dropped = set()
        lanes = self._lanes
        while True:
            for lane in lanes:
                if lane is not None and lane.fault in self._dropped:
                    self._unseat(lane)
            while self._queue and any(lane is None for lane in lanes):
                fault = self._queue.popleft()
                if fault in self._dropped:
                    continue
                self._seat(lanes.index(None), fault)
            active = [lane for lane in lanes if lane is not None]
            if not active:
                return
            if not self._queue and len(active) <= self.scalar_tail_lanes:
                # Straggler tail: sweeps stop amortizing, and the scalar
                # restart is deterministic — same result, no shared cost.
                for lane in active:
                    self._unseat(lane)
                    if lane.fault in self._dropped:
                        continue
                    result = self._oracle.generate(lane.fault)
                    self.tail_finishes += 1
                    self.backtracks_total += result.backtracks
                    self.decisions_total += result.decisions
                    if lane.fault in self._dropped:
                        continue  # dropped while yielding an earlier one
                    yield lane.fault, result
                continue
            self._imply()
            detect, good3, faulty3, d_index = self._unpack_round()
            resolved: list[tuple[Fault, PodemResult]] = []
            for lane in active:
                result = self._step(lane, detect, good3, faulty3, d_index)
                if result is not None:
                    resolved.append((lane.fault, result))
                    self._unseat(lane)
            for fault, result in resolved:
                if fault in self._dropped:
                    continue
                yield fault, result

    def drop(self, faults: Iterable[Fault]) -> None:
        """Retire ``faults`` (queued or mid-search): some existing
        pattern already covers them, so no lane needs to finish."""
        self._dropped.update(faults)

    def active_faults(self) -> list[Fault]:
        """Faults currently seated in lanes (column order)."""
        return [
            lane.fault
            for lane in self._lanes
            if lane is not None and lane.fault not in self._dropped
        ]

    def queued_faults(self) -> list[Fault]:
        """Faults still waiting for a lane (queue order)."""
        return [f for f in self._queue if f not in self._dropped]

    # ------------------------------------------------------------------
    # lane management
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Cumulative search-effort counters for this engine instance:
        lanes seated, implication rounds (sweeps), backtracks and
        decisions across all lanes, and scalar tail-finishes."""
        return {
            "lanes_seated": self.lanes_seated,
            "rounds": self.sweeps,
            "backtracks": self.backtracks_total,
            "decisions": self.decisions_total,
            "tail_finishes": self.tail_finishes,
        }

    def _seat(self, col: int, fault: Fault) -> None:
        self.lanes_seated += 1
        lane = _Lane(fault, col, self._n_words)
        (
            lane.site_net_id,
            lane.site_gate_id,
            lane.site_pin,
        ) = self._oracle._check_fault(fault)
        lane.stuck = fault.value
        force_node = (
            lane.site_gate_id
            if lane.site_gate_id is not None
            else lane.site_net_id
        )
        lane.force_level = int(self._compiled.node_levels[force_node])
        self._forcings_by_level.setdefault(lane.force_level, []).append(lane)
        self._lanes[col] = lane

    def _unseat(self, lane: _Lane) -> None:
        self._forcings_by_level[lane.force_level].remove(lane)
        self._lanes[lane.col] = None
        # Clear the lane's PI assignment bits so the next tenant starts
        # from all-X.
        unmask = ~lane.mask
        self._av[:, lane.word] &= unmask
        self._ac[:, lane.word] &= unmask

    def _assign(self, lane: _Lane, pi_id: int, value: int) -> None:
        """Set one lane's PI to 0/1/X in the assignment planes."""
        row = self._input_row[pi_id]
        word = lane.word
        if value == _X3:
            self._av[row, word] &= ~lane.mask
            self._ac[row, word] &= ~lane.mask
        else:
            self._ac[row, word] |= lane.mask
            if value:
                self._av[row, word] |= lane.mask
            else:
                self._av[row, word] &= ~lane.mask

    # ------------------------------------------------------------------
    # the packed implication sweep
    # ------------------------------------------------------------------

    # repro: allow[kernel-purity] O(depth x type-group) segmented sweep; each reduceat evaluates every lane at once
    @kernel
    def _imply(self) -> None:
        """One segmented five-valued sweep: good and faulty machines for
        all lanes at once, per-lane fault forcings re-asserted level by
        level."""
        self.sweeps += 1
        comp = self._compiled
        P, V, C = self._P, self._V, self._C
        w = self._n_words
        w2 = 2 * w
        V[comp.input_ids, :w] = self._av
        V[comp.input_ids, w:] = self._av
        C[comp.input_ids, :w] = self._ac
        C[comp.input_ids, w:] = self._ac
        if comp.const0_ids.size:
            V[comp.const0_ids] = 0
            C[comp.const0_ids] = _ALL_ONES
        if comp.const1_ids.size:
            P[comp.const1_ids] = _ALL_ONES
        self._force_level(0)
        for level, ops, inverted in self._plan:
            for gtype, out_ids, flat, starts in ops:
                gathered = P[flat]  # one gather reads all four planes
                out_v, out_c = reduceat_gate_planes(
                    gtype, gathered[:, :w2], gathered[:, w2:], starts
                )
                V[out_ids] = out_v
                C[out_ids] = out_c
            if inverted is not None:
                V[inverted] = C[inverted] & ~V[inverted]
            self._force_level(level)

    def _force_level(self, level: int) -> None:
        """Re-assert the faulty-machine forcings of every lane whose
        site sits at ``level`` (after that level evaluated)."""
        lanes = self._forcings_by_level.get(level)
        if not lanes:
            return
        oracle = self._oracle
        for lane in lanes:
            if lane.site_gate_id is None:
                self._set3(lane.site_net_id, lane, lane.stuck)
            else:
                gate_id = lane.site_gate_id
                fanins = oracle._fanins[gate_id]
                values = {fid: self._get3(fid, lane) for fid in fanins}
                forced = _eval3_branch(
                    oracle._gtype[gate_id],
                    fanins,
                    values,
                    lane.site_pin,
                    lane.stuck,
                )
                self._set3(gate_id, lane, forced)

    def _set3(self, row: int, lane: _Lane, value: int) -> None:
        """Write one lane's faulty-machine value at ``row``."""
        word = lane.fword
        if value == _X3:
            self._V[row, word] &= ~lane.mask
            self._C[row, word] &= ~lane.mask
        else:
            self._C[row, word] |= lane.mask
            if value:
                self._V[row, word] |= lane.mask
            else:
                self._V[row, word] &= ~lane.mask

    def _get3(self, row: int, lane: _Lane) -> int:
        """Read one lane's faulty-machine value at ``row``."""
        word = lane.fword
        if not int(self._C[row, word]) & int(lane.mask):
            return _X3
        return 1 if int(self._V[row, word]) & int(lane.mask) else 0

    def _unpack_round(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Unpack the planes once per round into per-lane columns:

        * ``detect`` — per-lane bool, some PO known in both machines and
          different;
        * ``good3`` / ``faulty3`` — three-valued node matrices (0/1/2,
          one column per lane) in the oracle's encoding;
        * ``d_index`` — ``(rows, bounds)``: lane ``col``'s D-bearing
          nets are ``rows[bounds[col]:bounds[col + 1]]``.
        """
        n_bits = self._n_lanes
        w = self._n_words
        bits = np.unpackbits(self._P.view(np.uint8), axis=1, bitorder="little")
        value_bits = bits[:, : 2 * n_bits]
        care_bits = bits[:, 2 * n_bits :]
        # codes = value where care, else X3 (== 2).  The plane invariant
        # ``v & ~c == 0`` means value bits are already 0 wherever care is
        # 0, so the three-valued code is just ``v | (~c << 1)`` — three
        # elementwise uint8 ops instead of a (much slower) ``np.where``.
        codes = value_bits | ((care_bits ^ np.uint8(1)) << np.uint8(1))
        good3 = codes[:, :n_bits]
        faulty3 = codes[:, n_bits:]
        # The D net/lane index is built at *packed* word level: most nets
        # carry no D anywhere, so finding the D-bearing rows on uint64
        # words and unpacking only those rows beats a full-matrix
        # boolean nonzero by an order of magnitude.
        V, C = self._V, self._C
        d_words = (V[:, :w] ^ V[:, w:]) & C[:, :w] & C[:, w:]
        detect_words = np.bitwise_or.reduce(
            d_words[self._compiled.output_ids], axis=0
        )
        detect = np.unpackbits(
            np.ascontiguousarray(detect_words).view(np.uint8),
            bitorder="little",
        )[:n_bits].astype(bool)
        d_node_ids = np.nonzero(d_words.any(axis=1))[0]
        d_sub = np.unpackbits(
            np.ascontiguousarray(d_words[d_node_ids]).view(np.uint8),
            axis=1,
            bitorder="little",
        )[:, :n_bits]
        # nonzero on the transposed (small) submatrix yields hits sorted
        # by lane, ready for the per-lane searchsorted bounds.
        d_cols, d_sub_rows = np.nonzero(d_sub.T)
        d_rows = d_node_ids[d_sub_rows]
        d_bounds = np.searchsorted(d_cols, np.arange(self._n_lanes + 1))
        return detect, good3, faulty3, (d_rows, d_bounds)

    # ------------------------------------------------------------------
    # the per-lane search step (the oracle's loop body, one iteration)
    # ------------------------------------------------------------------

    def _step(
        self,
        lane: _Lane,
        detect: np.ndarray,
        good3: np.ndarray,
        faulty3: np.ndarray,
        d_index: tuple[np.ndarray, np.ndarray],
    ) -> PodemResult | None:
        """Advance one lane by one decision (or backtrack); returns the
        lane's result when it resolves.  This is, line for line, the
        loop body of ``Podem.generate`` with the simulation calls gone —
        the sweep already implied this round's values."""
        oracle = self._oracle
        col = lane.col
        if detect[col]:
            cube = TestCube.from_dict(
                {oracle._name[d[0]]: d[1] for d in lane.decisions}
            )
            return PodemResult(
                PodemStatus.DETECTED, cube, lane.backtracks, lane.total_decisions
            )
        # Point the oracle's search machinery at this lane's state.
        d_rows, d_bounds = d_index
        # bytes, not lists: the oracle's step methods only *read* the
        # value arrays, indexing a handful of nodes — and indexing bytes
        # yields plain ints at list speed without the full-column
        # conversion cost.
        oracle._good = good3[:, col].tobytes()
        oracle._faulty = faulty3[:, col].tobytes()
        oracle._d_nets = set(
            d_rows[d_bounds[col] : d_bounds[col + 1]].tolist()
        )
        oracle._site_net_id = lane.site_net_id
        oracle._site_gate_id = lane.site_gate_id
        oracle._site_pin = lane.site_pin
        oracle._stuck = lane.stuck
        objective = oracle._objective(lane.site_net_id, lane.stuck)
        backtrace = (
            oracle._backtrace(objective) if objective is not None else None
        )
        if backtrace is None:
            flipped = False
            while lane.decisions:
                last = lane.decisions[-1]
                if not last[2]:
                    last[1] = 1 - last[1]
                    last[2] = True
                    self._assign(lane, last[0], last[1])
                    lane.backtracks += 1
                    self.backtracks_total += 1
                    flipped = True
                    break
                self._assign(lane, last[0], _X3)
                lane.decisions.pop()
            if not flipped:
                return PodemResult(
                    PodemStatus.UNTESTABLE,
                    None,
                    lane.backtracks,
                    lane.total_decisions,
                )
            if lane.backtracks > self.backtrack_limit:
                return PodemResult(
                    PodemStatus.ABORTED,
                    None,
                    lane.backtracks,
                    lane.total_decisions,
                )
            return None
        pi_id, value = backtrace
        lane.decisions.append([pi_id, int(value), False])
        self._assign(lane, pi_id, int(value))
        lane.total_decisions += 1
        self.decisions_total += 1
        return None
