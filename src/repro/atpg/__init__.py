"""Deterministic test pattern generation.

Stand-in for the commercial gate-level ATPG (TestGen) the paper uses to
obtain the complete deterministic test set ``ATPGTS`` and target fault
list ``F`` (Section 3.1).  The flow is the classic three-phase one:

1. random-pattern phase with fault dropping (:mod:`repro.atpg.random_gen`),
2. PODEM deterministic top-off for the random-resistant tail — the
   fault-parallel :mod:`repro.atpg.batch_podem` by default, the scalar
   recursive :mod:`repro.atpg.podem` as the differential oracle,
3. reverse-order static compaction (:mod:`repro.atpg.compaction`).
"""

from repro.atpg.values import Value, ZERO, ONE, D, DBAR, X
from repro.atpg.podem import Podem, PodemResult, PodemStatus, TestCube
from repro.atpg.batch_podem import BatchPodem
from repro.atpg.random_gen import RandomPhaseResult, random_phase
from repro.atpg.compaction import reverse_order_compaction
from repro.atpg.engine import (
    ATPG_ENGINES,
    AtpgConsistencyError,
    AtpgEngine,
    AtpgResult,
)
from repro.atpg.scoap import ScoapMeasures, compute_scoap

__all__ = [
    "ATPG_ENGINES",
    "AtpgConsistencyError",
    "AtpgEngine",
    "AtpgResult",
    "BatchPodem",
    "D",
    "DBAR",
    "ONE",
    "Podem",
    "PodemResult",
    "PodemStatus",
    "RandomPhaseResult",
    "ScoapMeasures",
    "TestCube",
    "Value",
    "X",
    "ZERO",
    "compute_scoap",
    "random_phase",
    "reverse_order_compaction",
]
