"""Random-pattern phase of the ATPG flow.

Generates random pattern blocks and fault-simulates them with fault
dropping, stopping when coverage saturates (a window of consecutive
blocks detects nothing new) or a pattern budget is exhausted.  The
random-resistant tail that survives is handed to PODEM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


@dataclass
class RandomPhaseResult:
    """Patterns kept, the faults each newly detected, and the survivors."""

    patterns: list[BitVector]
    detected: dict[int, list[Fault]]  # pattern index -> faults it first detected
    remaining: list[Fault]

    @property
    def detected_faults(self) -> list[Fault]:
        """All faults detected during the phase."""
        return [fault for faults in self.detected.values() for fault in faults]


def random_phase(
    circuit: Circuit,
    faults: list[Fault],
    rng: RngStream,
    block_size: int = 64,
    max_patterns: int = 4096,
    stale_blocks: int = 4,
    simulator: BatchFaultSimulator | None = None,
) -> RandomPhaseResult:
    """Run the random phase; only *useful* patterns are kept.

    A pattern is useful when it is the first detector of at least one
    not-yet-dropped fault.  ``stale_blocks`` consecutive useless blocks
    end the phase early.
    """
    simulator = simulator or FaultSimulator(circuit)
    remaining = list(faults)
    kept: list[BitVector] = []
    detected: dict[int, list[Fault]] = {}
    blocks_without_progress = 0
    generated = 0
    while remaining and generated < max_patterns and blocks_without_progress < stale_blocks:
        block = [
            BitVector.random(circuit.n_inputs, rng)
            for _ in range(min(block_size, max_patterns - generated))
        ]
        generated += len(block)
        matrix = simulator.detection_matrix(block, remaining)
        # Per fault: index of its first detecting pattern in this block
        # (-1 if undetected).  A pattern is kept iff it first-detects
        # at least one fault, in block order.
        ever_hit = matrix.any(axis=0)
        first_hit = np.where(ever_hit, matrix.argmax(axis=0), -1)
        progress = bool(ever_hit.any())
        for pattern_index in np.unique(first_hit[ever_hit]):
            fresh = np.flatnonzero(first_hit == pattern_index)
            detected[len(kept)] = [remaining[int(i)] for i in fresh]
            kept.append(block[int(pattern_index)])
        if progress:
            remaining = [
                fault
                for fault_index, fault in enumerate(remaining)
                if not ever_hit[fault_index]
            ]
        blocks_without_progress = 0 if progress else blocks_without_progress + 1
    return RandomPhaseResult(kept, detected, remaining)
