"""The five-valued D-algebra used by PODEM.

A value is a pair ``(good, faulty)`` of three-valued logic values
(0, 1, or unknown X), describing the net in the fault-free and faulty
machines simultaneously:

========  =======  =========
symbol    good     faulty
========  =======  =========
``ZERO``  0        0
``ONE``   1        1
``D``     1        0
``DBAR``  0        1
``X``     X        X
========  =======  =========

Mixed pairs such as ``(1, X)`` arise naturally during implication and
are retained (this is Muth's 9-valued refinement; PODEM works the same,
it just never loses information by over-approximating to X).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Sequence

from repro.circuit.gates import GateType

#: Three-valued constants; 2 encodes X.
_X3 = 2


def _and3(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    if a == 1 and b == 1:
        return 1
    return _X3


def _or3(a: int, b: int) -> int:
    if a == 1 or b == 1:
        return 1
    if a == 0 and b == 0:
        return 0
    return _X3


def _xor3(a: int, b: int) -> int:
    if a == _X3 or b == _X3:
        return _X3
    return a ^ b


def _not3(a: int) -> int:
    if a == _X3:
        return _X3
    return 1 - a


@dataclass(frozen=True)
class Value:
    """A (good, faulty) pair of three-valued values (0, 1, 2=X)."""

    good: int
    faulty: int

    def __post_init__(self) -> None:
        if self.good not in (0, 1, _X3) or self.faulty not in (0, 1, _X3):
            raise ValueError(f"three-valued components must be 0/1/2, got {self!r}")

    @property
    def is_known(self) -> bool:
        """Both machines fully determined."""
        return self.good != _X3 and self.faulty != _X3

    @property
    def is_d_or_dbar(self) -> bool:
        """A fault effect: both machines known and different."""
        return self.is_known and self.good != self.faulty

    @property
    def good_known(self) -> bool:
        """Good-machine component determined."""
        return self.good != _X3

    def __str__(self) -> str:
        names = {(0, 0): "0", (1, 1): "1", (1, 0): "D", (0, 1): "D'"}
        return names.get((self.good, self.faulty), f"({self.good},{self.faulty})")


ZERO = Value(0, 0)
ONE = Value(1, 1)
D = Value(1, 0)
DBAR = Value(0, 1)
X = Value(_X3, _X3)


def value_for_bit(bit: int) -> Value:
    """ZERO or ONE for a concrete bit."""
    return ONE if bit else ZERO


def eval_gate_value(gtype: GateType, fanins: Sequence[Value]) -> Value:
    """Evaluate a gate over five-valued fanins (both machines at once)."""
    if gtype is GateType.CONST0:
        return ZERO
    if gtype is GateType.CONST1:
        return ONE
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are sources, not evaluated")
    goods = [v.good for v in fanins]
    faults = [v.faulty for v in fanins]
    if gtype is GateType.AND:
        return Value(reduce(_and3, goods), reduce(_and3, faults))
    if gtype is GateType.NAND:
        return Value(_not3(reduce(_and3, goods)), _not3(reduce(_and3, faults)))
    if gtype is GateType.OR:
        return Value(reduce(_or3, goods), reduce(_or3, faults))
    if gtype is GateType.NOR:
        return Value(_not3(reduce(_or3, goods)), _not3(reduce(_or3, faults)))
    if gtype is GateType.XOR:
        return Value(reduce(_xor3, goods), reduce(_xor3, faults))
    if gtype is GateType.XNOR:
        return Value(_not3(reduce(_xor3, goods)), _not3(reduce(_xor3, faults)))
    if gtype is GateType.NOT:
        return Value(_not3(goods[0]), _not3(faults[0]))
    if gtype is GateType.BUF:
        return fanins[0]
    raise ValueError(f"unknown gate type {gtype!r}")
