"""SCOAP testability measures (Goldstein's controllability/observability).

Combinational SCOAP assigns every net three integers:

* ``CC0(n)`` / ``CC1(n)`` — the minimum "effort" (number of circuit-line
  assignments) to drive net ``n`` to 0 / 1; primary inputs cost 1.
* ``CO(n)`` — the effort to propagate the value of ``n`` to a primary
  output; primary outputs cost 0.

The measures guide the PODEM backtrace: when one controlling input
suffices, pick the *easiest* (lowest CC); when all inputs must go
non-controlling, attack the *hardest* first (highest CC) so conflicts
surface early.  ``Podem(..., heuristic="scoap")`` enables this; the
default remains the cheaper logic-level heuristic, and the ablation
benchmark (``benchmarks/test_ablation_heuristics.py``) compares them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

#: Effectively-infinite effort (unreachable nets, e.g. behind constants).
INF = 10**9


@dataclass(frozen=True)
class ScoapMeasures:
    """Per-net SCOAP values for one circuit."""

    cc0: dict[str, int]
    cc1: dict[str, int]
    co: dict[str, int]

    def controllability(self, net: str, value: int) -> int:
        """CC0 or CC1 of ``net``, by target value."""
        return self.cc1[net] if value else self.cc0[net]

    def hardest_net(self) -> str:
        """The net with the largest finite CC0+CC1+CO (a rough pointer at
        the least testable region of the circuit)."""
        def score(net: str) -> int:
            total = self.cc0[net] + self.cc1[net] + self.co[net]
            return total if total < INF else -1

        return max(self.cc0, key=score)


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """Compute combinational SCOAP measures for ``circuit``."""
    if circuit.is_sequential():
        raise ValueError(
            f"circuit {circuit.name!r} is sequential; take full_scan_view() first"
        )
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}
    for net in circuit.topo_order():
        gtype = circuit.node_type(net)
        if gtype is GateType.INPUT:
            cc0[net] = cc1[net] = 1
            continue
        fanins = circuit.fanins(net)
        zeros = [cc0[f] for f in fanins]
        ones = [cc1[f] for f in fanins]
        cc0[net], cc1[net] = _gate_controllability(gtype, zeros, ones)
    co: dict[str, int] = {net: INF for net in circuit.nodes}
    for output in circuit.outputs:
        co[output] = 0
    for net in reversed(circuit.topo_order()):
        # Observability flows backward: a net is observable through any
        # of its reading gates; keep the cheapest path.
        for gate_name in circuit.fanouts(net):
            gate = circuit.gates[gate_name]
            gate_co = co[gate_name]
            if gate_co >= INF:
                continue
            through = _pin_observability(
                gate.gtype,
                gate_co,
                [(f, cc0[f], cc1[f]) for f in gate.fanins],
                net,
            )
            if through < co[net]:
                co[net] = through
    return ScoapMeasures(cc0, cc1, co)


def _capped(total: int) -> int:
    return min(total, INF)


def _gate_controllability(
    gtype: GateType, zeros: list[int], ones: list[int]
) -> tuple[int, int]:
    """(CC0, CC1) of a gate output from its fanin controllabilities."""
    if gtype is GateType.CONST0:
        return (1, INF)
    if gtype is GateType.CONST1:
        return (INF, 1)
    if gtype is GateType.BUF:
        return (zeros[0] + 1, ones[0] + 1)
    if gtype is GateType.NOT:
        return (ones[0] + 1, zeros[0] + 1)
    if gtype is GateType.AND:
        return (_capped(min(zeros) + 1), _capped(sum(ones) + 1))
    if gtype is GateType.NAND:
        return (_capped(sum(ones) + 1), _capped(min(zeros) + 1))
    if gtype is GateType.OR:
        return (_capped(sum(zeros) + 1), _capped(min(ones) + 1))
    if gtype is GateType.NOR:
        return (_capped(min(ones) + 1), _capped(sum(zeros) + 1))
    if gtype in (GateType.XOR, GateType.XNOR):
        # Cheapest way to reach each parity over all fanin value picks:
        # DP over (cost, parity).
        even, odd = 0, INF
        for zero_cost, one_cost in zip(zeros, ones):
            new_even = min(_capped(even + zero_cost), _capped(odd + one_cost))
            new_odd = min(_capped(even + one_cost), _capped(odd + zero_cost))
            even, odd = new_even, new_odd
        if gtype is GateType.XOR:
            return (_capped(even + 1), _capped(odd + 1))
        return (_capped(odd + 1), _capped(even + 1))
    raise ValueError(f"no controllability rule for {gtype!r}")


def _pin_observability(
    gtype: GateType,
    gate_co: int,
    fanins: list[tuple[str, int, int]],
    pin_net: str,
) -> int:
    """CO of reading ``pin_net`` through one gate: gate CO plus the cost
    of holding the *other* inputs at non-masking values."""
    others = [(net, c0, c1) for net, c0, c1 in fanins if net != pin_net]
    if gtype in (GateType.BUF, GateType.NOT):
        side = 0
    elif gtype in (GateType.AND, GateType.NAND):
        side = sum(c1 for _, __, c1 in others)  # others must be 1
    elif gtype in (GateType.OR, GateType.NOR):
        side = sum(c0 for _, c0, __ in others)  # others must be 0
    elif gtype in (GateType.XOR, GateType.XNOR):
        side = sum(min(c0, c1) for _, c0, c1 in others)  # any known value
    else:
        raise ValueError(f"no observability rule for {gtype!r}")
    return _capped(gate_co + side + 1)
