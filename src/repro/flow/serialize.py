"""Schema-versioned (de)serialisation of flow artefacts.

The artifact cache (:mod:`repro.flow.session`), the process-pool sweep
path (:mod:`repro.flow.sweep`) and the CLI's ``--json`` output all need
pipeline artefacts as plain JSON-compatible dicts.  Everything here is
lossless for the fields the flow consumes downstream: a cached
:class:`~repro.flow.pipeline.PipelineResult` reconstructed with
:func:`pipeline_result_from_dict` reports bit-identical ``#Triplets`` /
``TestLength`` / matrix statistics.

``SCHEMA_VERSION`` is embedded in every top-level payload; readers
reject (cache: treat as miss) payloads from other versions, so stale
cache directories degrade to recomputation instead of wrong answers.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

import numpy as np

#: Bump whenever the serialised layout of any artefact changes.
#: v2: ``atpg_result`` gained ``measured_coverage`` (re-simulated
#: coverage of the final test set — reported, not assumed).
#: v3: ``pipeline_config`` gained ``values`` (2- vs 3-valued logic);
#: the knob changes simulation semantics, so cached artefacts from
#: value-system-unaware writers must not be served.
SCHEMA_VERSION = 3


class SchemaMismatchError(ValueError):
    """Payload was written by an incompatible serialiser version."""


def check_schema(payload: dict[str, Any], kind: str) -> None:
    """Reject payloads from other schema versions or of the wrong kind."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"{kind}: schema version {version!r} != {SCHEMA_VERSION}"
        )
    found = payload.get("kind")
    if found != kind:
        raise SchemaMismatchError(f"expected kind {kind!r}, found {found!r}")


# --------------------------------------------------------------------------
# Leaf values
# --------------------------------------------------------------------------


def bitvector_to_str(vector) -> str:
    """A :class:`~repro.utils.bitvec.BitVector` as a binary string (the
    width is implied by the string length, leading zeros included)."""
    return vector.to_string()


def bitvector_from_str(text: str):
    """Inverse of :func:`bitvector_to_str`."""
    from repro.utils.bitvec import BitVector

    return BitVector.from_string(text)


def fault_to_dict(fault) -> dict[str, Any]:
    """A :class:`~repro.faults.model.Fault` as a plain dict."""
    return {
        "net": fault.site.net,
        "gate": fault.site.gate,
        "pin": fault.site.pin,
        "value": fault.value,
    }


def fault_from_dict(data: dict[str, Any]):
    """Inverse of :func:`fault_to_dict`."""
    from repro.faults.model import Fault, FaultSite

    return Fault(FaultSite(data["net"], data["gate"], data["pin"]), data["value"])


def triplet_to_dict(triplet) -> dict[str, Any]:
    """A :class:`~repro.reseeding.triplet.Triplet` as a plain dict."""
    return {
        "delta": bitvector_to_str(triplet.delta),
        "sigma": bitvector_to_str(triplet.sigma),
        "length": triplet.length,
    }


def triplet_from_dict(data: dict[str, Any]):
    """Inverse of :func:`triplet_to_dict`."""
    from repro.reseeding.triplet import Triplet

    return Triplet(
        bitvector_from_str(data["delta"]),
        bitvector_from_str(data["sigma"]),
        data["length"],
    )


def bool_matrix_to_dict(matrix: np.ndarray) -> dict[str, Any]:
    """A boolean matrix as shape + hex-packed bits (row-major)."""
    return {
        "shape": list(matrix.shape),
        "bits": np.packbits(matrix.astype(np.uint8), axis=None).tobytes().hex(),
    }


def packed_patterns_to_dict(packed) -> dict[str, Any]:
    """A :class:`~repro.utils.bitvec.PackedPatterns` as a schema-stamped
    payload (hex-encoded little-endian word buffer) — the entry format
    of the ``packed_evolution`` artifact-cache kind
    (:meth:`repro.flow.session.Session.packed_evolution`)."""
    words = np.ascontiguousarray(packed.words, dtype=np.uint64)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "packed_evolution",
        "width": packed.width,
        "n_patterns": packed.n_patterns,
        "n_words": int(words.shape[1]),
        "words": words.astype(np.dtype("<u8"), copy=False).tobytes().hex(),
    }


def packed_patterns_from_dict(data: dict[str, Any]):
    """Inverse of :func:`packed_patterns_to_dict`."""
    from repro.utils.bitvec import PackedPatterns

    check_schema(data, "packed_evolution")
    words = (
        np.frombuffer(bytes.fromhex(data["words"]), dtype=np.dtype("<u8"))
        .astype(np.uint64, copy=False)
        .reshape(data["width"], data["n_words"])
    )
    return PackedPatterns(words, data["n_patterns"])


def bool_matrix_from_dict(data: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`bool_matrix_to_dict`."""
    rows, cols = data["shape"]
    raw = np.frombuffer(bytes.fromhex(data["bits"]), dtype=np.uint8)
    bits = np.unpackbits(raw, count=rows * cols)
    return bits.reshape(rows, cols).astype(bool)


# --------------------------------------------------------------------------
# ATPG results
# --------------------------------------------------------------------------


def atpg_result_to_dict(result) -> dict[str, Any]:
    """An :class:`~repro.atpg.engine.AtpgResult` as a plain dict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "atpg_result",
        "circuit_name": result.circuit_name,
        "test_set": [bitvector_to_str(p) for p in result.test_set],
        "target_faults": [fault_to_dict(f) for f in result.target_faults],
        "untestable": [fault_to_dict(f) for f in result.untestable],
        "aborted": [fault_to_dict(f) for f in result.aborted],
        "n_collapsed_faults": result.n_collapsed_faults,
        "random_patterns_kept": result.random_patterns_kept,
        "podem_patterns": result.podem_patterns,
        "measured_coverage": result.measured_coverage,
    }


def atpg_result_from_dict(data: dict[str, Any]):
    """Inverse of :func:`atpg_result_to_dict` (order-preserving, so a
    cached result drives the downstream stages identically)."""
    from repro.atpg.engine import AtpgResult

    check_schema(data, "atpg_result")
    return AtpgResult(
        circuit_name=data["circuit_name"],
        test_set=[bitvector_from_str(p) for p in data["test_set"]],
        target_faults=[fault_from_dict(f) for f in data["target_faults"]],
        untestable=[fault_from_dict(f) for f in data["untestable"]],
        aborted=[fault_from_dict(f) for f in data["aborted"]],
        n_collapsed_faults=data["n_collapsed_faults"],
        random_patterns_kept=data["random_patterns_kept"],
        podem_patterns=data["podem_patterns"],
        measured_coverage=data["measured_coverage"],
    )


# --------------------------------------------------------------------------
# Pipeline results
# --------------------------------------------------------------------------


def pipeline_config_to_dict(config) -> dict[str, Any]:
    """A :class:`~repro.flow.pipeline.PipelineConfig` as a plain dict."""
    return asdict(config)


def pipeline_config_from_dict(data: dict[str, Any]):
    """Inverse of :func:`pipeline_config_to_dict`."""
    from repro.flow.pipeline import PipelineConfig

    return PipelineConfig(**data)


def pipeline_result_to_dict(result) -> dict[str, Any]:
    """A full :class:`~repro.flow.pipeline.PipelineResult` as a plain,
    JSON-serialisable dict (the cache entry format)."""
    from repro.setcover.solve import SolveStats

    stats: SolveStats = result.cover.stats
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "pipeline_result",
        "circuit_name": result.circuit_name,
        "tpg_name": result.tpg_name,
        "config": pipeline_config_to_dict(result.config),
        "atpg": atpg_result_to_dict(result.atpg),
        "initial": {
            "triplets": [triplet_to_dict(t) for t in result.initial.triplets],
            "matrix": bool_matrix_to_dict(result.initial.detection_matrix.matrix),
            "evolution_length": result.initial.evolution_length,
        },
        "cover": {
            "selected": list(result.cover.selected),
            "essential": list(result.cover.essential),
            "solver_selected": list(result.cover.solver_selected),
            "stats": {
                "initial_shape": list(stats.initial_shape),
                "n_essential": stats.n_essential,
                "reduced_shape": list(stats.reduced_shape),
                "n_solver_selected": stats.n_solver_selected,
                "solver": stats.solver,
                "optimal": stats.optimal,
                "reduction_iterations": stats.reduction_iterations,
            },
        },
        "trimmed": {
            "triplets": [
                triplet_to_dict(t) for t in result.trimmed.solution.triplets
            ],
            "delta_coverage": list(result.trimmed.delta_coverage),
            "undetected": [fault_to_dict(f) for f in result.trimmed.undetected],
        },
        "timings": dict(result.timings),
    }


def pipeline_result_from_dict(data: dict[str, Any]):
    """Inverse of :func:`pipeline_result_to_dict`.

    The reconstructed object shares structure the same way a live run
    does: the Detection Matrix's fault columns are the ATPG target
    faults, and ``selected_triplets`` are the initial pool's rows at the
    cover's selected indices.
    """
    from repro.flow.pipeline import PipelineResult
    from repro.reseeding.detection_matrix import DetectionMatrix
    from repro.reseeding.initial import InitialReseeding
    from repro.reseeding.triplet import ReseedingSolution
    from repro.reseeding.trim import TrimmedSolution
    from repro.setcover.solve import CoverSolution, SolveStats

    check_schema(data, "pipeline_result")
    atpg = atpg_result_from_dict(data["atpg"])
    triplets = [triplet_from_dict(t) for t in data["initial"]["triplets"]]
    matrix = DetectionMatrix(
        triplets,
        list(atpg.target_faults),
        bool_matrix_from_dict(data["initial"]["matrix"]),
    )
    initial = InitialReseeding(
        triplets, matrix, data["initial"]["evolution_length"]
    )
    raw_stats = data["cover"]["stats"]
    cover = CoverSolution(
        selected=list(data["cover"]["selected"]),
        essential=list(data["cover"]["essential"]),
        solver_selected=list(data["cover"]["solver_selected"]),
        stats=SolveStats(
            initial_shape=tuple(raw_stats["initial_shape"]),
            n_essential=raw_stats["n_essential"],
            reduced_shape=tuple(raw_stats["reduced_shape"]),
            n_solver_selected=raw_stats["n_solver_selected"],
            solver=raw_stats["solver"],
            optimal=raw_stats["optimal"],
            reduction_iterations=raw_stats["reduction_iterations"],
        ),
    )
    trimmed = TrimmedSolution(
        ReseedingSolution.from_list(
            [triplet_from_dict(t) for t in data["trimmed"]["triplets"]]
        ),
        tuple(data["trimmed"]["delta_coverage"]),
        tuple(fault_from_dict(f) for f in data["trimmed"]["undetected"]),
    )
    return PipelineResult(
        circuit_name=data["circuit_name"],
        tpg_name=data["tpg_name"],
        config=pipeline_config_from_dict(data["config"]),
        atpg=atpg,
        initial=initial,
        cover=cover,
        selected_triplets=[triplets[row] for row in cover.selected],
        trimmed=trimmed,
        timings=dict(data["timings"]),
    )


# --------------------------------------------------------------------------
# Diagnosis artefacts
# --------------------------------------------------------------------------


def fault_dictionary_to_dict(dictionary) -> dict[str, Any]:
    """A :class:`~repro.diagnosis.dictionary.FaultDictionary` as a plain
    dict (matrix bit-packed, the artifact-cache entry format)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "fault_dictionary",
        "circuit_name": dictionary.circuit_name,
        "faults": [fault_to_dict(f) for f in dictionary.faults],
        "matrix": bool_matrix_to_dict(dictionary.matrix),
    }


def fault_dictionary_from_dict(data: dict[str, Any]):
    """Inverse of :func:`fault_dictionary_to_dict`."""
    from repro.diagnosis.dictionary import FaultDictionary

    check_schema(data, "fault_dictionary")
    return FaultDictionary(
        circuit_name=data["circuit_name"],
        faults=[fault_from_dict(f) for f in data["faults"]],
        matrix=bool_matrix_from_dict(data["matrix"]),
    )


def candidate_to_dict(candidate) -> dict[str, Any]:
    """A :class:`~repro.diagnosis.result.Candidate` as a plain dict."""
    return {
        "fault": fault_to_dict(candidate.fault),
        "n_match": candidate.n_match,
        "n_mispredicted": candidate.n_mispredicted,
        "n_missed": candidate.n_missed,
        "n_response_match": candidate.n_response_match,
        "score": candidate.score,
    }


def candidate_from_dict(data: dict[str, Any]):
    """Inverse of :func:`candidate_to_dict` (the derived ``score`` key
    is ignored on read)."""
    from repro.diagnosis.result import Candidate

    return Candidate(
        fault=fault_from_dict(data["fault"]),
        n_match=data["n_match"],
        n_mispredicted=data["n_mispredicted"],
        n_missed=data["n_missed"],
        n_response_match=data["n_response_match"],
    )


def diagnosis_result_to_dict(result) -> dict[str, Any]:
    """A :class:`~repro.diagnosis.result.DiagnosisResult` as a plain,
    JSON-serialisable dict (CLI ``--json`` / cache format)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "diagnosis_result",
        "circuit_name": result.circuit_name,
        "mode": result.mode,
        "n_patterns": result.n_patterns,
        "n_failing": result.n_failing,
        "candidates": [candidate_to_dict(c) for c in result.candidates],
        "n_candidates_considered": result.n_candidates_considered,
        "window": list(result.window) if result.window is not None else None,
        "oracle_queries": result.oracle_queries,
        "patterns_resimulated": result.patterns_resimulated,
        "timings": dict(result.timings),
    }


def diagnosis_result_from_dict(data: dict[str, Any]):
    """Inverse of :func:`diagnosis_result_to_dict`."""
    from repro.diagnosis.result import DiagnosisResult

    check_schema(data, "diagnosis_result")
    window = data["window"]
    return DiagnosisResult(
        circuit_name=data["circuit_name"],
        mode=data["mode"],
        n_patterns=data["n_patterns"],
        n_failing=data["n_failing"],
        candidates=[candidate_from_dict(c) for c in data["candidates"]],
        n_candidates_considered=data["n_candidates_considered"],
        window=tuple(window) if window is not None else None,
        oracle_queries=data["oracle_queries"],
        patterns_resimulated=data["patterns_resimulated"],
        timings=dict(data["timings"]),
    )


# --------------------------------------------------------------------------
# Serve-layer request/response bodies (repro.serve)
# --------------------------------------------------------------------------
#
# Every body crossing the `repro serve` HTTP boundary is a
# schema-stamped payload of one of the kinds below, so the wire format
# is versioned and validated exactly like the artifact cache: a client
# or worker from another schema generation is rejected up front
# (SchemaMismatchError -> 400) instead of mis-decoded.


def pattern_set_to_dict(pattern_set) -> dict[str, Any]:
    """A :class:`~repro.serve.api.PatternSet` (one applied BIST pattern
    sequence, shareable across diagnose requests via its content ref)
    as a schema-stamped payload — also the ``pattern_set`` artifact-
    store kind workers on other machines load instead of re-parsing."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "pattern_set",
        "circuit_name": pattern_set.circuit_name,
        "width": pattern_set.width,
        "patterns": [bitvector_to_str(p) for p in pattern_set.patterns],
    }


def pattern_set_from_dict(data: dict[str, Any]):
    """Inverse of :func:`pattern_set_to_dict`."""
    from repro.serve.api import PatternSet

    check_schema(data, "pattern_set")
    return PatternSet(
        circuit_name=data["circuit_name"],
        width=data["width"],
        patterns=tuple(bitvector_from_str(p) for p in data["patterns"]),
    )


def diagnose_request_to_dict(request) -> dict[str, Any]:
    """A :class:`~repro.serve.api.DiagnoseRequest` as the ``POST
    /diagnose`` body."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "diagnose_request",
        "circuit": request.circuit,
        "scale": request.scale,
        "responses": list(request.responses),
        "patterns": list(request.patterns) if request.patterns is not None else None,
        "patterns_ref": request.patterns_ref,
        "method": request.method,
        "top_k": request.top_k,
        "timeout_ms": request.timeout_ms,
    }


def diagnose_request_from_dict(data: dict[str, Any]):
    """Inverse of :func:`diagnose_request_to_dict`."""
    from repro.serve.api import DiagnoseRequest

    check_schema(data, "diagnose_request")
    patterns = data.get("patterns")
    return DiagnoseRequest(
        circuit=data["circuit"],
        responses=tuple(data["responses"]),
        patterns=tuple(patterns) if patterns is not None else None,
        patterns_ref=data.get("patterns_ref"),
        scale=data.get("scale", 1.0),
        method=data.get("method", "dictionary"),
        top_k=data.get("top_k", 10),
        timeout_ms=data.get("timeout_ms"),
    )


def diagnose_response_to_dict(response) -> dict[str, Any]:
    """A :class:`~repro.serve.api.DiagnoseResponse` as the ``POST
    /diagnose`` reply.  ``result`` is a full ``diagnosis_result``
    payload with ``timings`` normalised to ``{}`` so the body is a
    deterministic function of the fail log — byte-identical to a local
    :meth:`~repro.flow.session.Session.diagnose` of the same log."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "diagnose_response",
        "result": response.result,
        "patterns_ref": response.patterns_ref,
        "batched": response.batched,
        "batch_size": response.batch_size,
        "seconds": response.seconds,
    }


def diagnose_response_from_dict(data: dict[str, Any]):
    """Inverse of :func:`diagnose_response_to_dict` (the embedded
    ``diagnosis_result`` payload is schema-checked too)."""
    from repro.serve.api import DiagnoseResponse

    check_schema(data, "diagnose_response")
    check_schema(data["result"], "diagnosis_result")
    return DiagnoseResponse(
        result=data["result"],
        patterns_ref=data["patterns_ref"],
        batched=data["batched"],
        batch_size=data["batch_size"],
        seconds=data["seconds"],
    )


def atpg_request_to_dict(request) -> dict[str, Any]:
    """A :class:`~repro.serve.api.AtpgRequest` as the ``POST /atpg``
    body."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "atpg_request",
        "circuit": request.circuit,
        "scale": request.scale,
        "seed": request.seed,
        "max_random_patterns": request.max_random_patterns,
        "backtrack_limit": request.backtrack_limit,
        "engine": request.engine,
        "timeout_ms": request.timeout_ms,
    }


def atpg_request_from_dict(data: dict[str, Any]):
    """Inverse of :func:`atpg_request_to_dict`."""
    from repro.serve.api import AtpgRequest

    check_schema(data, "atpg_request")
    return AtpgRequest(
        circuit=data["circuit"],
        scale=data.get("scale", 1.0),
        seed=data.get("seed", 2001),
        max_random_patterns=data.get("max_random_patterns", 4096),
        backtrack_limit=data.get("backtrack_limit", 250),
        engine=data.get("engine", "batch"),
        timeout_ms=data.get("timeout_ms"),
    )


def atpg_response_to_dict(response) -> dict[str, Any]:
    """A :class:`~repro.serve.api.AtpgResponse` as the ``POST /atpg``
    reply (``result`` is a full ``atpg_result`` payload)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "atpg_response",
        "result": response.result,
        "from_memo": response.from_memo,
        "seconds": response.seconds,
    }


def atpg_response_from_dict(data: dict[str, Any]):
    """Inverse of :func:`atpg_response_to_dict`."""
    from repro.serve.api import AtpgResponse

    check_schema(data, "atpg_response")
    check_schema(data["result"], "atpg_result")
    return AtpgResponse(
        result=data["result"],
        from_memo=data["from_memo"],
        seconds=data["seconds"],
    )


def sweep_request_to_dict(request) -> dict[str, Any]:
    """A :class:`~repro.serve.api.SweepRequest` as the ``POST /sweep``
    body."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "sweep_request",
        "circuits": list(request.circuits),
        "tpgs": list(request.tpgs),
        "evolution_lengths": list(request.evolution_lengths),
        "scale": request.scale,
        "seed": request.seed,
        "timeout_ms": request.timeout_ms,
    }


def sweep_request_from_dict(data: dict[str, Any]):
    """Inverse of :func:`sweep_request_to_dict`."""
    from repro.serve.api import SweepRequest

    check_schema(data, "sweep_request")
    return SweepRequest(
        circuits=tuple(data["circuits"]),
        tpgs=tuple(data.get("tpgs", ("adder",))),
        evolution_lengths=tuple(data.get("evolution_lengths", (32,))),
        scale=data.get("scale", 1.0),
        seed=data.get("seed", 2001),
        timeout_ms=data.get("timeout_ms"),
    )


def sweep_response_to_dict(response) -> dict[str, Any]:
    """A :class:`~repro.serve.api.SweepResponse` as the ``POST /sweep``
    reply (cells in deterministic grid order, like ``repro sweep
    --json``)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "sweep_response",
        "cells": [dict(cell) for cell in response.cells],
        "n_cached": response.n_cached,
        "seconds": response.seconds,
    }


def sweep_response_from_dict(data: dict[str, Any]):
    """Inverse of :func:`sweep_response_to_dict`."""
    from repro.serve.api import SweepResponse

    check_schema(data, "sweep_response")
    return SweepResponse(
        cells=tuple(dict(cell) for cell in data["cells"]),
        n_cached=data["n_cached"],
        seconds=data["seconds"],
    )


def serve_stats_to_dict(stats: dict[str, Any]) -> dict[str, Any]:
    """The ``GET /stats`` body: a free-form counters document under a
    schema-stamped envelope."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "serve_stats",
        "stats": stats,
    }


def serve_stats_from_dict(data: dict[str, Any]) -> dict[str, Any]:
    """Inverse of :func:`serve_stats_to_dict` (returns the inner
    counters document)."""
    check_schema(data, "serve_stats")
    return dict(data["stats"])


def serve_error_to_dict(error) -> dict[str, Any]:
    """A :class:`~repro.serve.api.ServeError` as any non-2xx reply
    body."""
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "serve_error",
        "error": error.error,
        "status": error.status,
        "retry_after": error.retry_after,
    }


def serve_error_from_dict(data: dict[str, Any]):
    """Inverse of :func:`serve_error_to_dict`."""
    from repro.serve.api import ServeError

    check_schema(data, "serve_error")
    return ServeError(
        error=data["error"],
        status=data["status"],
        retry_after=data.get("retry_after"),
    )


def to_json(payload: dict[str, Any], indent: int | None = None) -> str:
    """Render a serialised payload as JSON text."""
    return json.dumps(payload, indent=indent, sort_keys=False)
