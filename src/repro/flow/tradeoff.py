"""The reseedings-vs-test-length trade-off explorer (paper Figure 2).

Longer evolutions make each triplet cover more faults, so fewer triplets
suffice — at the price of a longer global test.  Figure 2 sweeps the
evolution length T for s1238 on an adder accumulator and watches the
triplet count fall (11 -> 2 in the paper) while the test length grows
(5,427 -> 15,551).  ``explore_tradeoff`` regenerates that curve for any
circuit/TPG as a thin client of :func:`repro.flow.sweep.sweep`: one
shared :class:`~repro.flow.session.Session` (so ATPG and the compiled
simulator run once) and one config per T.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.engine import AtpgResult
from repro.circuit.netlist import Circuit
from repro.flow.pipeline import PipelineConfig
from repro.flow.session import ArtifactCache, Session
from repro.flow.sweep import sweep
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.tpg.registry import make_tpg


@dataclass(frozen=True)
class TradeoffPoint:
    """One sweep point: T, the solution size, and the trimmed length."""

    evolution_length: int
    n_triplets: int
    test_length: int

    def as_tuple(self) -> tuple[int, int, int]:
        """(T, #triplets, test length) — handy for plotting."""
        return (self.evolution_length, self.n_triplets, self.test_length)


def explore_tradeoff(
    circuit: Circuit,
    tpg: TestPatternGenerator | str,
    evolution_lengths: list[int],
    config: PipelineConfig | None = None,
    atpg_result: AtpgResult | None = None,
    simulator: FaultSimulator | None = None,
    cache: ArtifactCache | None = None,
) -> list[TradeoffPoint]:
    """Sweep T and return one point per value, in the given order.

    The expected shape (asserted by the Figure-2 benchmark): triplet
    count is non-increasing in T while the global test length grows.
    The session's batched fault simulator (and, via
    ``config.matrix_workers``, the row-parallel matrix path) is shared
    across all sweep points, so the per-point cost is one covering
    pass, not a fresh simulator compile; with a ``cache`` attached,
    repeated sweeps skip even that.
    """
    if not evolution_lengths:
        raise ValueError("evolution_lengths must be non-empty")
    if any(t < 1 for t in evolution_lengths):
        raise ValueError("evolution lengths must be >= 1")
    base_config = config or PipelineConfig()
    tpg_instance = (
        make_tpg(tpg, circuit.n_inputs) if isinstance(tpg, str) else tpg
    )
    session = Session(
        circuit,
        config=base_config,
        simulator=simulator,
        cache=cache,
        atpg_result=atpg_result,
    )
    grid = sweep(
        [circuit.name],
        [tpg_instance],
        base_config=base_config,
        evolution_lengths=evolution_lengths,
        sessions={circuit.name: session},
    )
    return [
        TradeoffPoint(length, outcome.result.n_triplets, outcome.result.test_length)
        for length, outcome in zip(evolution_lengths, grid)
    ]
