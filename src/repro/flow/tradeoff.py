"""The reseedings-vs-test-length trade-off explorer (paper Figure 2).

Longer evolutions make each triplet cover more faults, so fewer triplets
suffice — at the price of a longer global test.  Figure 2 sweeps the
evolution length T for s1238 on an adder accumulator and watches the
triplet count fall (11 -> 2 in the paper) while the test length grows
(5,427 -> 15,551).  ``explore_tradeoff`` regenerates that curve for any
circuit/TPG: ATPG runs once, then one covering pass per T.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.engine import AtpgEngine, AtpgResult
from repro.circuit.netlist import Circuit
from repro.flow.pipeline import PipelineConfig, PipelineResult, ReseedingPipeline
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.tpg.registry import make_tpg


@dataclass(frozen=True)
class TradeoffPoint:
    """One sweep point: T, the solution size, and the trimmed length."""

    evolution_length: int
    n_triplets: int
    test_length: int

    def as_tuple(self) -> tuple[int, int, int]:
        """(T, #triplets, test length) — handy for plotting."""
        return (self.evolution_length, self.n_triplets, self.test_length)


def explore_tradeoff(
    circuit: Circuit,
    tpg: TestPatternGenerator | str,
    evolution_lengths: list[int],
    config: PipelineConfig | None = None,
    atpg_result: AtpgResult | None = None,
    simulator: FaultSimulator | None = None,
) -> list[TradeoffPoint]:
    """Sweep T and return one point per value, in the given order.

    The expected shape (asserted by the Figure-2 benchmark): triplet
    count is non-increasing in T while the global test length grows.
    The batched fault simulator (and, via ``config.matrix_workers``, the
    row-parallel matrix path) is shared across all sweep points, so the
    per-point cost is one covering pass, not a fresh simulator compile.
    """
    if not evolution_lengths:
        raise ValueError("evolution_lengths must be non-empty")
    if any(t < 1 for t in evolution_lengths):
        raise ValueError("evolution lengths must be >= 1")
    base_config = config or PipelineConfig()
    simulator = simulator or FaultSimulator(circuit)
    tpg_instance = (
        make_tpg(tpg, circuit.n_inputs) if isinstance(tpg, str) else tpg
    )
    if atpg_result is None:
        engine = AtpgEngine(
            circuit,
            seed=base_config.seed,
            max_random_patterns=base_config.max_random_patterns,
            backtrack_limit=base_config.backtrack_limit,
            simulator=simulator,
        )
        atpg_result = engine.run()
    points: list[TradeoffPoint] = []
    for length in evolution_lengths:
        run_config = PipelineConfig(
            seed=base_config.seed,
            evolution_length=length,
            cover_method=base_config.cover_method,
            max_random_patterns=base_config.max_random_patterns,
            backtrack_limit=base_config.backtrack_limit,
            grasp_iterations=base_config.grasp_iterations,
            matrix_workers=base_config.matrix_workers,
        )
        pipeline = ReseedingPipeline(
            circuit,
            tpg_instance,
            config=run_config,
            atpg_result=atpg_result,
            simulator=simulator,
        )
        result = pipeline.run()
        points.append(
            TradeoffPoint(length, result.n_triplets, result.test_length)
        )
    return points
