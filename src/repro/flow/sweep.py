"""Batch orchestration: circuits x TPGs x configs over shared sessions.

``sweep()`` is the one entry point every batch consumer drives — the
Table-1/Table-2 experiment drivers, the Figure-2 trade-off explorer and
the ``repro sweep`` CLI are all thin clients.  It guarantees:

* one :class:`~repro.flow.session.Session` per circuit, so the loaded
  netlist, the compiled fault simulator and the ATPG artefact are
  computed once and shared by every TPG/config cell;
* deterministic outcome order (circuit-major, then TPG, then config),
  independent of the execution mode;
* optional process-pool parallelism across circuits (``workers=N``) —
  workers exchange schema-versioned dicts, so the parallel path
  exercises exactly the serialisation the artifact cache relies on;
* optional warm-start via an :class:`~repro.flow.session.ArtifactCache`
  directory: resumed sweeps skip ATPG and matrix construction for
  every already-cached cell.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.flow.pipeline import PipelineConfig, PipelineResult
from repro.flow.session import ArtifactCache, Session
from repro.flow.stages import ProgressHook
from repro.tpg.base import TestPatternGenerator


@dataclass(frozen=True)
class SweepOutcome:
    """One grid cell: which (circuit, TPG, config) produced ``result``."""

    circuit: str
    tpg: str
    config_index: int
    config: PipelineConfig
    result: PipelineResult
    from_cache: bool
    seconds: float


@dataclass
class SweepResult:
    """All outcomes of one ``sweep()`` call, in deterministic grid order."""

    outcomes: list[SweepOutcome]

    def get(
        self, circuit: str, tpg: str, config_index: int = 0
    ) -> SweepOutcome:
        """The outcome for one grid cell (raises if absent)."""
        for outcome in self.outcomes:
            if (
                outcome.circuit == circuit
                and outcome.tpg == tpg
                and outcome.config_index == config_index
            ):
                return outcome
        raise KeyError(f"no sweep outcome for {(circuit, tpg, config_index)}")

    @property
    def n_cached(self) -> int:
        """How many cells were served from the artifact cache."""
        return sum(1 for o in self.outcomes if o.from_cache)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


def _tpg_label(tpg: str | TestPatternGenerator) -> str:
    return tpg if isinstance(tpg, str) else tpg.name


def _expand_configs(
    configs: Sequence[PipelineConfig] | None,
    base_config: PipelineConfig | None,
    evolution_lengths: Sequence[int] | None,
) -> list[PipelineConfig]:
    if configs is not None:
        return list(configs)
    base = base_config or PipelineConfig()
    if evolution_lengths:
        return [replace(base, evolution_length=t) for t in evolution_lengths]
    return [base]


def _run_circuit_block(
    name: str,
    scale: float,
    tpg_names: list[str],
    config_dicts: list[dict[str, Any]],
    cache_dir: str | None,
) -> list[tuple[str, int, dict[str, Any], bool, float]]:
    """Process-pool worker: one circuit's full TPG x config block.

    Returns serialised results (plain dicts) so the parent process
    never has to unpickle bespoke classes from a worker.
    """
    session = Session.from_name(
        name,
        scale=scale,
        cache=cache_dir,
        config=PipelineConfig.from_dict(config_dicts[0]),
    )
    block: list[tuple[str, int, dict[str, Any], bool, float]] = []
    for tpg_name in tpg_names:
        for index, config_dict in enumerate(config_dicts):
            info = session.run_info(
                tpg_name, PipelineConfig.from_dict(config_dict)
            )
            block.append(
                (tpg_name, index, info.result.to_dict(), info.from_cache, info.seconds)
            )
    return block


def sweep(
    circuits: Sequence[str],
    tpgs: Sequence[str | TestPatternGenerator],
    configs: Sequence[PipelineConfig] | None = None,
    base_config: PipelineConfig | None = None,
    evolution_lengths: Sequence[int] | None = None,
    scale: float = 1.0,
    cache: ArtifactCache | str | Path | None = None,
    workers: int | None = None,
    sessions: Mapping[str, Session] | None = None,
    progress: ProgressHook | None = None,
) -> SweepResult:
    """Run the full circuits x TPGs x configs grid.

    ``configs`` wins when given; otherwise ``evolution_lengths`` expands
    ``base_config`` into one config per T (the Figure-2 pattern), and
    with neither the grid runs a single default config.  ``sessions``
    injects pre-built sessions (keyed by circuit name) for artefact
    sharing with a caller that already did ATPG; missing circuits are
    loaded at ``scale``.  ``workers=N`` fans circuits out over a process
    pool (requires string TPG names); results are bit-identical to the
    serial path.

    Example — the Figure-2 grid, resumable through a cache directory::

        from repro.flow.sweep import sweep

        grid = sweep(
            ["c880", "s1238"],
            ["adder", "multiplier"],
            evolution_lengths=[16, 32, 64],
            scale=0.25,
            cache=".repro-cache",   # re-running skips finished cells
            workers=2,              # one circuit per process
        )
        best = min(grid, key=lambda o: o.result.n_triplets)
        print(best.circuit, best.tpg, best.result.summary())
        print(f"{grid.n_cached}/{len(grid)} cells served from cache")
    """
    if not circuits:
        raise ValueError("sweep needs at least one circuit")
    if not tpgs:
        raise ValueError("sweep needs at least one TPG")
    config_list = _expand_configs(configs, base_config, evolution_lengths)
    tpg_labels = [_tpg_label(t) for t in tpgs]

    parallel = (
        workers is not None
        and workers > 1
        and len(circuits) > 1
        and sessions is None
        and all(isinstance(t, str) for t in tpgs)
    )
    outcomes: list[SweepOutcome] = []
    if parallel:
        cache_dir = None
        if cache is not None:
            cache_dir = str(cache.root if isinstance(cache, ArtifactCache) else cache)
        config_dicts = [c.to_dict() for c in config_list]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            blocks = list(
                pool.map(
                    _run_circuit_block,
                    circuits,
                    [scale] * len(circuits),
                    [tpg_labels] * len(circuits),
                    [config_dicts] * len(circuits),
                    [cache_dir] * len(circuits),
                )
            )
        for name, block in zip(circuits, blocks):
            for tpg_name, index, result_dict, from_cache, seconds in block:
                if isinstance(cache, ArtifactCache):
                    # Workers hit their own per-process cache objects;
                    # reflect their outcomes in the caller's counters.
                    cache.record("pipeline_result", from_cache)
                outcomes.append(
                    SweepOutcome(
                        circuit=name,
                        tpg=tpg_name,
                        config_index=index,
                        config=config_list[index],
                        result=PipelineResult.from_dict(result_dict),
                        from_cache=from_cache,
                        seconds=seconds,
                    )
                )
        return SweepResult(outcomes)

    for name in circuits:
        if sessions is not None and name in sessions:
            session = sessions[name]
        else:
            session = Session.from_name(
                name,
                scale=scale,
                cache=cache,
                config=config_list[0],
                progress=progress,
            )
        for tpg in tpgs:
            for index, config in enumerate(config_list):
                info = session.run_info(tpg, config)
                outcomes.append(
                    SweepOutcome(
                        circuit=name,
                        tpg=_tpg_label(tpg),
                        config_index=index,
                        config=config,
                        result=info.result,
                        from_cache=info.from_cache,
                        seconds=info.seconds,
                    )
                )
    return SweepResult(outcomes)
