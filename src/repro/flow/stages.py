"""First-class flow stages (the boxes of the paper's Figure 1).

Each box of the flow — ATPG, Detection Matrix construction, set
covering, trimming — is a :class:`Stage`: a named, timed step that
reads and writes artefacts on a shared :class:`StageContext` and emits
:class:`StageEvent` progress callbacks.  Stages are registered in
:data:`STAGE_REGISTRY` (mirroring ``repro.tpg.registry``), so custom
flows can insert, replace or reorder steps::

    ctx = StageContext(circuit, tpg, config, simulator)
    result = run_flow(ctx)                      # the default Figure-1 chain
    result = run_flow(ctx, ["set_cover", "trim"])   # resume mid-flow

Artefact keys: ``"atpg"`` (:class:`~repro.atpg.engine.AtpgResult`),
``"initial"`` (:class:`~repro.reseeding.initial.InitialReseeding`),
``"cover"`` (:class:`~repro.setcover.solve.CoverSolution`),
``"selected"`` (``list[Triplet]``), ``"trimmed"``
(:class:`~repro.reseeding.trim.TrimmedSolution`); the diagnosis side
adds ``"fail_log"`` (:class:`~repro.diagnosis.inject.FailLog`, consumed)
and ``"diagnosis"`` (:class:`~repro.diagnosis.result.DiagnosisResult`,
produced by :class:`DiagnosisStage`, which is registered but not part of
the default chain).  A stage whose output
artefact is already present skips itself (that is how a
:class:`~repro.flow.session.Session` shares circuit-level ATPG across
TPGs and how the artifact cache short-circuits recomputation), so
timing keys are always recorded — a skipped stage just costs ~0s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence

from repro.atpg.engine import AtpgEngine
from repro.circuit.netlist import Circuit
from repro.reseeding.initial import InitialReseedingBuilder
from repro.reseeding.trim import trim_solution
from repro.setcover.matrix import CoverMatrix
from repro.setcover.solve import solve_cover
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flow.pipeline import PipelineConfig, PipelineResult


@dataclass(frozen=True)
class StageEvent:
    """One progress tick: a stage started, finished, or skipped.

    ``attrs`` is an optional structured payload (rows built, cache
    hit/skip reason, candidate counts) stages fill via
    ``StageContext.stage_attrs``; it is last and defaulted so the
    long-standing positional construction ``StageEvent(name, status,
    seconds, detail)`` keeps working.
    """

    stage: str
    status: str  # "start" | "done" | "skipped"
    seconds: float = 0.0
    detail: str = ""
    attrs: dict | None = None


#: Callback invoked with every :class:`StageEvent` of a flow run.
ProgressHook = Callable[[StageEvent], None]


@dataclass
class StageContext:
    """Everything stages share: inputs, knobs, and produced artefacts.

    ``artifacts`` maps artefact keys (see the module docstring) to the
    objects stages produce; pre-seeding a key makes the producing stage
    skip itself.  ``timings`` collects per-stage wall-clock seconds
    under the stage names.
    """

    circuit: Circuit
    tpg: TestPatternGenerator
    config: "PipelineConfig"
    simulator: FaultSimulator
    artifacts: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    progress: ProgressHook | None = None
    #: Optional batched-evolution provider with the
    #: :data:`~repro.reseeding.triplet.EvolveBatch` signature.  When a
    #: :class:`~repro.flow.session.Session` drives the flow this is its
    #: :meth:`~repro.flow.session.Session.packed_evolution` — packed
    #: seed-bank evolutions are then memoized in-process and (with a
    #: cache attached) persisted per (tpg, sigma bank, length) in the
    #: ArtifactCache.  ``None`` evolves directly via
    #: :meth:`~repro.tpg.base.TestPatternGenerator.evolve_batch`.
    evolution_cache: object | None = None
    #: Scratch attrs for the *currently executing* stage: ``run``
    #: implementations drop structured facts here (rows built, skip
    #: reason) and :meth:`Stage.execute` attaches them to the terminal
    #: :class:`StageEvent`.  Reset before every stage.
    stage_attrs: dict = field(default_factory=dict)
    #: Optional :class:`repro.obs.Telemetry`; stages pass its metrics
    #: registry down to the engines they construct.
    telemetry: object | None = None

    def emit(self, event: StageEvent) -> None:
        """Deliver ``event`` to the progress hook, if any."""
        if self.progress is not None:
            self.progress(event)


class Stage:
    """A named, timed flow step.

    Subclasses set ``name`` (also the timing key), ``requires`` /
    ``provides`` (artefact keys), and implement :meth:`run`.  ``run``
    returns ``True`` when the stage skipped itself because its output
    already existed.
    """

    name: ClassVar[str] = "stage"
    requires: ClassVar[tuple[str, ...]] = ()
    provides: ClassVar[tuple[str, ...]] = ()

    def run(self, ctx: StageContext) -> bool:
        """Produce ``provides`` on ``ctx.artifacts``; return True if
        the work was skipped (outputs already present)."""
        raise NotImplementedError

    def execute(self, ctx: StageContext) -> None:
        """Validate inputs, time :meth:`run`, emit progress events."""
        missing = [key for key in self.requires if key not in ctx.artifacts]
        if missing:
            raise ValueError(
                f"stage {self.name!r} missing required artifacts: {missing} "
                f"(run the producing stages first)"
            )
        ctx.emit(StageEvent(self.name, "start"))
        ctx.stage_attrs = {}
        start = time.perf_counter()
        skipped = self.run(ctx)
        seconds = time.perf_counter() - start
        ctx.timings[self.name] = seconds
        if skipped:
            ctx.stage_attrs.setdefault("skip_reason", "output-artifact-present")
        ctx.emit(
            StageEvent(
                self.name,
                "skipped" if skipped else "done",
                seconds,
                attrs=ctx.stage_attrs or None,
            )
        )

    def _already_done(self, ctx: StageContext) -> bool:
        return all(key in ctx.artifacts for key in self.provides)


class AtpgStage(Stage):
    """Deterministic test generation (the TestGen stand-in).

    Skips itself when an ``"atpg"`` artefact is pre-seeded — the
    Session/Table-1 pattern of sharing one circuit-level ATPG run
    across several TPG flows.
    """

    name = "atpg"
    provides = ("atpg",)

    def run(self, ctx: StageContext) -> bool:
        if self._already_done(ctx):
            return True
        config = ctx.config
        telemetry = ctx.telemetry
        engine = AtpgEngine(
            ctx.circuit,
            seed=config.seed,
            max_random_patterns=config.max_random_patterns,
            backtrack_limit=config.backtrack_limit,
            simulator=ctx.simulator,
            engine=config.atpg_engine,
            telemetry=telemetry.metrics if telemetry is not None else None,
        )
        result = engine.run()
        ctx.artifacts["atpg"] = result
        ctx.stage_attrs.update(
            test_length=result.test_length,
            n_target_faults=len(result.target_faults),
            podem_patterns=result.podem_patterns,
        )
        return False


class MatrixStage(Stage):
    """Initial Reseeding Builder: candidate triplets + Detection Matrix."""

    name = "detection_matrix"
    requires = ("atpg",)
    provides = ("initial",)

    def run(self, ctx: StageContext) -> bool:
        if self._already_done(ctx):
            return True
        config = ctx.config
        builder = InitialReseedingBuilder(
            ctx.circuit, ctx.tpg, seed=config.seed, simulator=ctx.simulator
        )
        initial = builder.build_from_atpg(
            ctx.artifacts["atpg"],
            evolution_length=config.evolution_length,
            workers=config.matrix_workers,
            evolve=ctx.evolution_cache,
        )
        ctx.artifacts["initial"] = initial
        ctx.stage_attrs.update(
            rows_built=len(initial.triplets),
            n_faults=initial.detection_matrix.matrix.shape[1],
            evolution_length=initial.evolution_length,
        )
        return False


class CoverStage(Stage):
    """Matrix reduction + exact/heuristic covering (the LINGO stand-in)."""

    name = "set_cover"
    requires = ("initial",)
    provides = ("cover", "selected")

    def run(self, ctx: StageContext) -> bool:
        if self._already_done(ctx):
            return True
        config = ctx.config
        initial = ctx.artifacts["initial"]
        cover_matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)
        cover = solve_cover(
            cover_matrix,
            method=config.cover_method,
            seed=config.seed,
            grasp_iterations=config.grasp_iterations,
        )
        ctx.artifacts["cover"] = cover
        ctx.artifacts["selected"] = [
            initial.triplets[row] for row in cover.selected
        ]
        return False


class TrimStage(Stage):
    """Per-triplet test-length trimming (paper Section 4)."""

    name = "trim"
    requires = ("atpg", "selected")
    provides = ("trimmed",)

    def run(self, ctx: StageContext) -> bool:
        if self._already_done(ctx):
            return True
        atpg = ctx.artifacts["atpg"]
        trimmed = trim_solution(
            ctx.circuit,
            ctx.tpg,
            ctx.artifacts["selected"],
            atpg.target_faults,
            simulator=ctx.simulator,
            evolve=ctx.evolution_cache,
        )
        if trimmed.undetected:
            raise AssertionError(
                f"final reseeding misses {len(trimmed.undetected)} faults; "
                "the covering solution should be complete"
            )
        ctx.artifacts["trimmed"] = trimmed
        ctx.stage_attrs.update(
            n_triplets=len(trimmed.solution.triplets),
            test_length=trimmed.solution.test_length,
        )
        return False


class DiagnosisStage(Stage):
    """Effect-cause / signature diagnosis of a captured fail log.

    Consumes a ``"fail_log"`` artefact (a
    :class:`~repro.diagnosis.inject.FailLog`) and produces a
    ``"diagnosis"`` artefact (a
    :class:`~repro.diagnosis.result.DiagnosisResult`).  The candidate
    universe is, in order of preference: the ``faults`` constructor
    argument, the pre-seeded ``"atpg"`` artefact's target faults
    (diagnosing against the same list the test set was generated for),
    or the circuit's collapsed fault list.

    ``method`` selects the engine: ``"effect_cause"`` (default) ranks
    on the full fail log; ``"signature"`` first bisects the pattern
    sequence with MISR prefix probes against an ``oracle`` (default: a
    :class:`~repro.diagnosis.inject.SimulatedTester` over the fail
    log) and ranks only the localised window; ``"multiplet"`` runs the
    greedy multiple-fault cover (``top_k`` bounds the multiplet size).
    """

    name = "diagnosis"
    requires = ("fail_log",)
    provides = ("diagnosis",)

    def __init__(
        self,
        top_k: int = 10,
        method: str = "effect_cause",
        min_window: int | None = None,
        oracle=None,
        faults=None,
    ) -> None:
        if method not in ("effect_cause", "signature", "multiplet"):
            raise ValueError(
                f"unknown diagnosis method {method!r}; "
                "expected 'effect_cause', 'signature' or 'multiplet'"
            )
        self.top_k = top_k
        self.method = method
        self.min_window = min_window
        self.oracle = oracle
        self.faults = faults

    def run(self, ctx: StageContext) -> bool:
        if self._already_done(ctx):
            return True
        from repro.diagnosis.effect_cause import (
            diagnose_effect_cause,
            diagnose_multiplet,
        )
        from repro.diagnosis.inject import SimulatedTester
        from repro.diagnosis.signature import DEFAULT_MIN_WINDOW, SignatureBisector
        from repro.faults.collapse import collapse_faults

        fail_log = ctx.artifacts["fail_log"]
        atpg = ctx.artifacts.get("atpg")
        if self.faults is not None:
            faults = list(self.faults)
        elif atpg is not None:
            faults = list(atpg.target_faults)
        else:
            faults = collapse_faults(ctx.circuit)
        # Pack the log's pattern sequence once; every engine below (and
        # any later stage sharing the log) reuses the packed form.
        patterns = fail_log.packed(
            ctx.simulator.compiled.n_inputs
            if ctx.simulator is not None
            else ctx.circuit.n_inputs
        )
        if self.method == "signature":
            from repro.sim.misr import Misr

            misr = Misr(ctx.circuit.n_outputs)
            bisector = SignatureBisector(
                ctx.circuit,
                patterns,
                misr,
                min_window=self.min_window or DEFAULT_MIN_WINDOW,
                simulator=ctx.simulator,
            )
            oracle = self.oracle or SimulatedTester(fail_log, misr)
            result = bisector.diagnose(oracle, faults=faults, top_k=self.top_k)
        elif self.method == "multiplet":
            result = diagnose_multiplet(
                ctx.circuit,
                patterns,
                fail_log.responses,
                faults=faults,
                simulator=ctx.simulator,
                max_faults=self.top_k,
            )
        else:
            result = diagnose_effect_cause(
                ctx.circuit,
                patterns,
                fail_log.responses,
                faults=faults,
                simulator=ctx.simulator,
                top_k=self.top_k,
            )
        ctx.artifacts["diagnosis"] = result
        ctx.stage_attrs.update(
            method=self.method,
            n_candidates=len(result.candidates),
            n_considered=result.n_candidates_considered,
        )
        return False


#: The stage registry — custom flows insert, replace or reorder steps by
#: name (unknown names raise with "did you mean" suggestions)::
#:
#:     from repro.flow.stages import STAGE_REGISTRY, Stage
#:
#:     class CompactStage(Stage):
#:         name = "compact"
#:         requires = ("trimmed",)
#:         provides = ("compacted",)
#:         def run(self, ctx):
#:             ctx.artifacts["compacted"] = my_compactor(ctx.artifacts["trimmed"])
#:             return False
#:
#:     STAGE_REGISTRY.register(CompactStage.name, CompactStage)
#:     run_flow(ctx, [*DEFAULT_STAGES, "compact"])
STAGE_REGISTRY: Registry[type[Stage]] = Registry("stage")
STAGE_REGISTRY.register(AtpgStage.name, AtpgStage)
STAGE_REGISTRY.register(MatrixStage.name, MatrixStage)
STAGE_REGISTRY.register(CoverStage.name, CoverStage)
STAGE_REGISTRY.register(TrimStage.name, TrimStage)
STAGE_REGISTRY.register(DiagnosisStage.name, DiagnosisStage)

#: The Figure-1 chain, in order.
DEFAULT_STAGES: tuple[str, ...] = (
    AtpgStage.name,
    MatrixStage.name,
    CoverStage.name,
    TrimStage.name,
)


def make_stage(name: str) -> Stage:
    """Instantiate a registered stage by name."""
    return STAGE_REGISTRY.get(name)()


def stage_names() -> list[str]:
    """All registered stage names."""
    return STAGE_REGISTRY.names()


def assemble_result(ctx: StageContext) -> "PipelineResult":
    """Bundle a completed context's artefacts into a PipelineResult."""
    from repro.flow.pipeline import PipelineResult

    return PipelineResult(
        circuit_name=ctx.circuit.name,
        tpg_name=ctx.tpg.name,
        config=ctx.config,
        atpg=ctx.artifacts["atpg"],
        initial=ctx.artifacts["initial"],
        cover=ctx.artifacts["cover"],
        selected_triplets=ctx.artifacts["selected"],
        trimmed=ctx.artifacts["trimmed"],
        timings=dict(ctx.timings),
    )


def run_flow(
    ctx: StageContext, stages: Sequence[str | Stage] | None = None
) -> "PipelineResult":
    """Execute ``stages`` (default: the full Figure-1 chain) over ``ctx``
    and assemble the :class:`~repro.flow.pipeline.PipelineResult`."""
    for entry in stages if stages is not None else DEFAULT_STAGES:
        stage = make_stage(entry) if isinstance(entry, str) else entry
        stage.execute(ctx)
    return assemble_result(ctx)
