"""Human-readable reports for pipeline results.

The paper characterises a reseeding solution by each triplet's
incremental coverage AFC%_i (Section 2); :func:`solution_report` renders
exactly that per-triplet breakdown, plus the covering statistics Table 2
tracks, for any :class:`~repro.flow.pipeline.PipelineResult` — whether
it came from a live :class:`~repro.flow.session.Session` run, a
``ReseedingPipeline``, or a cache/JSON round trip via
``PipelineResult.from_dict``.
"""

from __future__ import annotations

from repro.flow.pipeline import PipelineResult
from repro.utils.tables import AsciiTable


def solution_report(result: PipelineResult) -> str:
    """A multi-section report: solution table, AFC% breakdown, covering
    statistics."""
    lines: list[str] = [result.summary(), ""]

    total_faults = len(result.atpg.target_faults)
    table = AsciiTable(
        ["#", "delta", "sigma", "T_i", "dFC (faults)", "dFC%", "cum FC%"],
        title="Reseeding solution (per-triplet breakdown)",
    )
    cumulative = 0
    for index, (triplet, delta_faults) in enumerate(
        zip(result.trimmed.solution.triplets, result.trimmed.delta_coverage)
    ):
        cumulative += delta_faults
        table.add_row(
            [
                index,
                triplet.delta.to_string(),
                triplet.sigma.to_string(),
                triplet.length,
                delta_faults,
                f"{100 * delta_faults / total_faults:.1f}" if total_faults else "-",
                f"{100 * cumulative / total_faults:.1f}" if total_faults else "-",
            ]
        )
    lines.append(table.render())

    stats = result.cover.stats
    lines.append("")
    lines.append("Covering statistics:")
    lines.append(
        f"  initial Detection Matrix : "
        f"{stats.initial_shape[0]} x {stats.initial_shape[1]}"
    )
    lines.append(f"  necessary triplets       : {stats.n_essential}")
    reduced = (
        "empty (closed by reduction)"
        if stats.closed_by_reduction
        else f"{stats.reduced_shape[0]} x {stats.reduced_shape[1]}"
    )
    lines.append(f"  matrix after reduction   : {reduced}")
    lines.append(
        f"  solver ({stats.solver:>6})         : {stats.n_solver_selected} triplets"
        f"{' (optimal)' if stats.optimal else ''}"
    )
    lines.append(f"  reduction iterations     : {stats.reduction_iterations}")
    lines.append("")
    lines.append("ATPG substrate:")
    lines.append(
        f"  |ATPGTS| = {result.atpg.test_length}, |F| = {total_faults}, "
        f"untestable = {len(result.atpg.untestable)}, "
        f"aborted = {len(result.atpg.aborted)}"
    )
    lines.append("Stage timings (s): " + ", ".join(
        f"{stage}={seconds:.2f}" for stage, seconds in result.timings.items()
    ))
    return "\n".join(lines)
