"""End-to-end flows: the Figure-1 pipeline and the Figure-2 trade-off
explorer."""

from repro.flow.pipeline import PipelineConfig, PipelineResult, ReseedingPipeline
from repro.flow.tradeoff import TradeoffPoint, explore_tradeoff

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "ReseedingPipeline",
    "TradeoffPoint",
    "explore_tradeoff",
]
