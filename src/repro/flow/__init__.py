"""The composable flow layer: sessions, stages, sweeps.

Three concepts compose the paper's Figure-1 computation:

* :class:`~repro.flow.session.Session` owns circuit-level artefacts
  (loaded circuit, compiled fault simulator, ATPG result) with an
  optional content-keyed on-disk :class:`~repro.flow.session.ArtifactCache`;
* :class:`~repro.flow.stages.Stage` objects (ATPG, Detection Matrix,
  set covering, trimming) run over a shared
  :class:`~repro.flow.stages.StageContext`, emit progress events, and
  are registered in :data:`~repro.flow.stages.STAGE_REGISTRY`;
* :func:`~repro.flow.sweep.sweep` orchestrates circuits x TPGs x
  configs over shared sessions, optionally across a process pool.

:class:`~repro.flow.pipeline.ReseedingPipeline` remains the one-shot
convenience wrapper, and :func:`~repro.flow.tradeoff.explore_tradeoff`
the Figure-2 curve generator; both are thin clients of the machinery
above.
"""

from repro.flow.pipeline import PipelineConfig, PipelineResult, ReseedingPipeline
from repro.flow.session import ArtifactCache, RunInfo, Session
from repro.flow.stages import (
    DEFAULT_STAGES,
    STAGE_REGISTRY,
    AtpgStage,
    CoverStage,
    DiagnosisStage,
    MatrixStage,
    Stage,
    StageContext,
    StageEvent,
    TrimStage,
    make_stage,
    run_flow,
    stage_names,
)
from repro.flow.sweep import SweepOutcome, SweepResult, sweep
from repro.flow.tradeoff import TradeoffPoint, explore_tradeoff

__all__ = [
    "ArtifactCache",
    "AtpgStage",
    "CoverStage",
    "DEFAULT_STAGES",
    "DiagnosisStage",
    "MatrixStage",
    "PipelineConfig",
    "PipelineResult",
    "ReseedingPipeline",
    "RunInfo",
    "STAGE_REGISTRY",
    "Session",
    "Stage",
    "StageContext",
    "StageEvent",
    "SweepOutcome",
    "SweepResult",
    "TradeoffPoint",
    "TrimStage",
    "explore_tradeoff",
    "make_stage",
    "run_flow",
    "stage_names",
    "sweep",
]
