"""Sessions: circuit-level artefact ownership + on-disk artifact cache.

A :class:`Session` owns everything that is per-circuit rather than
per-run — the loaded :class:`~repro.circuit.netlist.Circuit`, the
compiled :class:`~repro.sim.fault.FaultSimulator`, and the (expensive)
:class:`~repro.atpg.engine.AtpgResult` — so any number of TPG flows,
trade-off sweeps and baselines share them, exactly as the paper's flow
shares TestGen output across generators.  It replaces (and absorbs) the
old ``experiments.common.CircuitWorkspace``.

An optional :class:`ArtifactCache` adds content-keyed on-disk
persistence: artefacts are stored as schema-versioned JSON under a key
derived from circuit name + scale + seed + a hash of the relevant
config knobs, so repeated runs and resumed sweeps skip ATPG and
Detection Matrix construction entirely.  Cache hits and misses are
counted per artefact kind (``cache.hits_for("atpg_result")`` ...), and
schema or key mismatches degrade to recomputation, never wrong answers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.atpg.engine import AtpgResult
from repro.circuit.netlist import Circuit
from repro.circuits import load_circuit
from repro.flow.pipeline import PipelineConfig, PipelineResult
from repro.flow.serialize import (
    SchemaMismatchError,
    atpg_result_from_dict,
    atpg_result_to_dict,
)
from repro.flow.stages import ProgressHook, StageContext, StageEvent, run_flow
from repro.obs import NULL_TELEMETRY, Telemetry, stage_hook
from repro.sim.fault import FaultSimulator
from repro.sim.threeval import XFaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.tpg.registry import make_tpg


#: Process-global temp-file sequence: cache *instances* in one process
#: share a pid, so per-instance counters would collide on the same name.
_TMP_SEQ = itertools.count()


class ArtifactCache:
    """A content-keyed, schema-versioned, on-disk artefact store.

    Entries are JSON files named by the SHA-256 of their canonicalised
    key fields.  ``get`` returns ``None`` (and counts a miss) for
    absent, unreadable, or schema-mismatched entries, so a stale cache
    directory is always safe to keep around.  Undecodable entries — a
    reader racing a writer's atomic replace, a killed process, disk
    corruption — additionally count as *corrupt* (``stats()["corrupt"]``)
    so operators can tell schema skew from rot.

    Writes are atomic (unique temp file + ``os.replace``); a failed
    write removes its temp file, and any stale ``*.tmp`` debris left by
    killed processes is swept when the cache is opened.
    """

    #: ``*.tmp`` files older than this (seconds) are removed at open —
    #: young ones may belong to a live writer on another worker.
    STALE_TMP_AGE_S = 3600.0

    def __init__(
        self, root: str | Path, *, stale_tmp_age: float | None = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._by_kind: dict[str, dict[str, int]] = {}
        self._metrics = None
        self.stale_tmp_age = (
            self.STALE_TMP_AGE_S if stale_tmp_age is None else stale_tmp_age
        )
        self.swept_tmp = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Remove orphaned ``*.tmp`` files (crashed/killed writers)."""
        swept = 0
        now = time.time()
        for tmp in self.root.glob("**/*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= self.stale_tmp_age:
                    tmp.unlink()
                    swept += 1
            except OSError:
                continue  # another sweeper won the race
        return swept

    @staticmethod
    def key(kind: str, **fields: Any) -> str:
        """A deterministic cache key from the artefact kind + fields."""
        canonical = json.dumps(
            {"kind": kind, **fields}, sort_keys=True, default=str
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def attach_metrics(self, metrics) -> None:
        """Mirror this cache's counters into ``metrics`` (a
        :class:`repro.obs.MetricsRegistry`) as
        ``repro_cache_{hits,misses,corrupt}_total{kind=...}``.

        Counts recorded *before* attachment are folded in once, so a
        scrape always agrees with :meth:`stats` no matter when the
        registry arrived.  Re-attaching the same registry is a no-op.
        """
        if metrics is None or not getattr(metrics, "enabled", False):
            return
        if self._metrics is metrics:
            return
        first = self._metrics is None
        self._metrics = metrics
        if first:
            for kind, bucket in self._by_kind.items():
                for outcome in ("hits", "misses", "corrupt"):
                    if bucket.get(outcome):
                        self._mirror(kind, outcome, bucket[outcome])
            if self.swept_tmp:
                metrics.counter(
                    "repro_cache_swept_tmp_total",
                    help="Stale *.tmp files swept at cache open.",
                ).inc(self.swept_tmp)

    _MIRROR_HELP = {
        "hits": "Artifact cache hits by kind.",
        "misses": "Artifact cache misses by kind.",
        "corrupt": "Undecodable artifact cache entries by kind.",
    }

    def _mirror(self, kind: str, outcome: str, amount: int) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                f"repro_cache_{outcome}_total",
                help=self._MIRROR_HELP[outcome],
                kind=kind,
            ).inc(amount)

    def _count(self, kind: str, hit: bool, corrupt: bool = False) -> None:
        bucket = self._by_kind.setdefault(
            kind, {"hits": 0, "misses": 0, "corrupt": 0}
        )
        bucket.setdefault("corrupt", 0)
        if hit:
            self.hits += 1
            bucket["hits"] += 1
            self._mirror(kind, "hits", 1)
        else:
            self.misses += 1
            bucket["misses"] += 1
            self._mirror(kind, "misses", 1)
            if corrupt:
                self.corrupt += 1
                bucket["corrupt"] += 1
                self._mirror(kind, "corrupt", 1)

    def get(self, key: str, kind: str) -> dict[str, Any] | None:
        """The payload stored under ``key``, or ``None`` on any miss.

        An entry that exists but cannot be decoded as a JSON object —
        truncated by a killed writer, garbled on disk, or a non-dict
        document — is a *corrupt* miss: counted separately, never an
        exception, so one bad entry cannot take down a reader.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self._count(kind, hit=False)
            return None
        except OSError:
            self._count(kind, hit=False, corrupt=True)
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._count(kind, hit=False, corrupt=True)
            return None
        if not isinstance(payload, dict):
            self._count(kind, hit=False, corrupt=True)
            return None
        from repro.flow.serialize import check_schema

        try:
            check_schema(payload, kind)
        except SchemaMismatchError:
            self._count(kind, hit=False)
            return None
        self._count(kind, hit=True)
        return payload

    def _tmp_path(self, path: Path) -> Path:
        """A writer-unique temp name next to ``path`` (same filesystem,
        so the final ``replace`` stays atomic; unique per process and
        per write, so concurrent writers never clobber each other)."""
        return path.with_name(
            f"{path.name}.{os.getpid()}-{next(_TMP_SEQ)}.tmp"
        )

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Persist ``payload`` (already schema-stamped) under ``key``.

        Readers never observe a partial entry: the payload lands in a
        unique temp file first and is renamed into place atomically.
        If anything fails between write and rename, the temp file is
        removed instead of orphaned.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_path(path)
        try:
            tmp.write_text(json.dumps(payload))
            tmp.replace(path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def record(self, kind: str, hit: bool) -> None:
        """Fold an externally-observed hit/miss into the counters (used
        by the process-pool sweep path, where workers consult their own
        per-process cache objects on the shared directory)."""
        self._count(kind, hit)

    def hits_for(self, kind: str) -> int:
        """Cache hits recorded for one artefact kind."""
        return self._by_kind.get(kind, {}).get("hits", 0)

    def misses_for(self, kind: str) -> int:
        """Cache misses recorded for one artefact kind."""
        return self._by_kind.get(kind, {}).get("misses", 0)

    def corrupt_for(self, kind: str) -> int:
        """Corrupt (undecodable) entries encountered for one kind."""
        return self._by_kind.get(kind, {}).get("corrupt", 0)

    def stats(self) -> dict[str, Any]:
        """Counters summary: totals plus a per-kind breakdown."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "swept_tmp": self.swept_tmp,
            "by_kind": {k: dict(v) for k, v in self._by_kind.items()},
        }


@dataclass(frozen=True)
class RunInfo:
    """One ``Session.run_info`` outcome: the result plus provenance."""

    result: PipelineResult
    from_cache: bool
    seconds: float


class Session:
    """Per-circuit artefact owner and flow runner.

    Construct directly from a loaded circuit, or with
    :meth:`from_name` to also record the catalog ``scale`` in cache
    keys.  ``run`` executes the staged Figure-1 flow for one TPG,
    reusing the session's circuit-level ATPG (and, when a cache is
    attached, skipping any work a previous process already did).

    Example — three TPG flows sharing one ATPG run and one on-disk
    cache, then a diagnosis against the same artefacts::

        from repro import Session

        session = Session.from_name("c880", scale=0.25, cache=".repro-cache")
        for tpg in ("adder", "multiplier", "subtracter"):
            result = session.run(tpg)          # ATPG computed once
            print(result.summary())            # Table-1 vocabulary
        info = session.run_info("adder")       # provenance included
        assert info.from_cache                 # warm: served from disk
        report = session.diagnose(fail_log, method="signature")
    """

    def __init__(
        self,
        circuit: Circuit,
        config: PipelineConfig | None = None,
        simulator: FaultSimulator | None = None,
        cache: ArtifactCache | str | Path | None = None,
        scale: float | None = None,
        progress: ProgressHook | None = None,
        atpg_result: AtpgResult | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.circuit = circuit
        self.name = circuit.name
        self.config = config or PipelineConfig()
        if self.config.values not in (2, 3):
            raise ValueError(
                f"config.values must be 2 or 3, got {self.config.values!r}"
            )
        if simulator is not None:
            self.simulator = simulator
        elif self.config.values == 3:
            # 3-valued engine: X-free patterns give bit-identical results,
            # X-carrying stimuli degrade coverage pessimistically.
            self.simulator = XFaultSimulator(circuit)
        else:
            self.simulator = FaultSimulator(circuit)
        self.cache = (
            ArtifactCache(cache)
            if isinstance(cache, (str, Path))
            else cache
        )
        self.scale = scale
        self.progress = progress
        #: Opt-in :class:`repro.obs.Telemetry` (default: shared no-op
        #: pair).  With metrics enabled, the session's simulator and
        #: cache export their counters through the registry; with
        #: tracing enabled, every stage event becomes a span.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._telemetry_hook = (
            stage_hook(self.telemetry) if self.telemetry.enabled else None
        )
        if self.telemetry.metrics.enabled:
            self.simulator.attach_metrics(self.telemetry.metrics)
            if self.cache is not None:
                self.cache.attach_metrics(self.telemetry.metrics)
        #: ATPG artefacts memoized per knob-set (seed, patterns, backtracks),
        #: so a multi-config sweep never recomputes an identical ATPG run.
        self._atpg_results: dict[tuple, AtpgResult] = {}
        #: Packed seed-bank evolutions memoized per cache key — every
        #: stage of every flow run through this session shares them.
        self._evolutions: dict[str, "PackedPatterns"] = {}
        #: Fault dictionaries memoized per cache key, so a long-lived
        #: session (the serve layer) pays the disk/JSON round trip once.
        self._dictionaries: dict[str, Any] = {}
        #: Fault-free responses memoized per packed-pattern digest —
        #: every diagnosis of the same applied sequence shares them.
        self._golden: dict[str, list] = {}
        if atpg_result is not None:
            self._atpg_results[self._atpg_knobs(self.config)] = atpg_result
        self._atpg_seconds = 0.0
        self._fingerprint: str | None = None

    @classmethod
    def from_name(
        cls,
        name: str,
        scale: float = 1.0,
        config: PipelineConfig | None = None,
        cache: ArtifactCache | str | Path | None = None,
        progress: ProgressHook | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> "Session":
        """Load (or synthesise) a catalog circuit and wrap it."""
        return cls(
            load_circuit(name, scale=scale),
            config=config,
            cache=cache,
            scale=scale,
            progress=progress,
            telemetry=telemetry,
        )

    # -- progress ----------------------------------------------------------

    def _emit(self, event: StageEvent) -> None:
        """Deliver one stage event: telemetry first (spans + stage
        metrics), then the user's progress hook.  ``self.progress`` is
        read live, so post-construction reassignment keeps working."""
        if self._telemetry_hook is not None:
            self._telemetry_hook(event)
        if self.progress is not None:
            self.progress(event)

    # -- cache keys --------------------------------------------------------

    @staticmethod
    def _atpg_knobs(config: PipelineConfig) -> tuple:
        """The config knobs ATPG actually reads (its memoization key)."""
        return (
            config.seed,
            config.max_random_patterns,
            config.backtrack_limit,
            config.atpg_engine,
        )

    @property
    def circuit_fingerprint(self) -> str:
        """A content hash of the netlist, part of every cache key — so
        two different circuits that happen to share a catalog name (e.g.
        the same synthetic circuit at two ``scale`` factors) can never
        serve each other's cached artefacts."""
        if self._fingerprint is None:
            digest = hashlib.sha256(
                json.dumps(
                    {
                        "inputs": list(self.circuit.inputs),
                        "outputs": list(self.circuit.outputs),
                        "gates": sorted(
                            [g.name, g.gtype.name, list(g.fanins)]
                            for g in self.circuit.gates.values()
                        ),
                    }
                ).encode()
            ).hexdigest()
            self._fingerprint = digest[:16]
        return self._fingerprint

    def _atpg_key(self, config: PipelineConfig) -> str:
        """ATPG cache key: only the knobs ATPG actually reads, so matrix
        and covering knobs never invalidate the expensive artefact."""
        return ArtifactCache.key(
            "atpg_result",
            circuit=self.name,
            netlist=self.circuit_fingerprint,
            seed=config.seed,
            max_random_patterns=config.max_random_patterns,
            backtrack_limit=config.backtrack_limit,
            atpg_engine=config.atpg_engine,
        )

    def _result_key(self, tpg_name: str, config: PipelineConfig) -> str:
        config_fields = config.to_dict()
        # Performance-only knob: identical results with any worker count,
        # so it must not invalidate cached artefacts.
        config_fields.pop("matrix_workers", None)
        return ArtifactCache.key(
            "pipeline_result",
            circuit=self.name,
            netlist=self.circuit_fingerprint,
            seed=config.seed,
            tpg=tpg_name,
            config=config_fields,
        )

    # -- artefacts ---------------------------------------------------------

    @property
    def atpg_result(self) -> AtpgResult:
        """The circuit-level ATPG artefact (memory -> cache -> compute)."""
        return self._atpg_for(self.config)

    def atpg_for(self, config: PipelineConfig | None = None) -> AtpgResult:
        """The ATPG artefact for an explicit config (memory -> cache ->
        compute) — the public per-knob-set accessor the serve layer's
        ``POST /atpg`` endpoint drives."""
        return self._atpg_for(config or self.config)

    def has_atpg(self, config: PipelineConfig | None = None) -> bool:
        """True when the ATPG artefact for ``config`` is already
        memoized in this session (no cache or compute needed)."""
        return self._atpg_knobs(config or self.config) in self._atpg_results

    def _atpg_for(self, config: PipelineConfig) -> AtpgResult:
        knobs = self._atpg_knobs(config)
        if knobs not in self._atpg_results:
            self._atpg_results[knobs] = self._load_or_run_atpg(config)
        return self._atpg_results[knobs]

    def _load_or_run_atpg(self, config: PipelineConfig) -> AtpgResult:
        self._atpg_seconds = 0.0
        if self.cache is not None:
            key = self._atpg_key(config)
            payload = self.cache.get(key, "atpg_result")
            if payload is not None:
                self._emit(StageEvent("atpg", "cache-hit"))
                return atpg_result_from_dict(payload)
        from repro.atpg.engine import AtpgEngine

        start = time.perf_counter()
        engine = AtpgEngine(
            self.circuit,
            seed=config.seed,
            max_random_patterns=config.max_random_patterns,
            backtrack_limit=config.backtrack_limit,
            simulator=self.simulator,
            engine=config.atpg_engine,
            telemetry=self.telemetry.metrics,
        )
        result = engine.run()
        self._atpg_seconds = time.perf_counter() - start
        self._emit(StageEvent("atpg", "done", self._atpg_seconds))
        if self.cache is not None:
            self.cache.put(self._atpg_key(config), atpg_result_to_dict(result))
        return result

    # -- flows -------------------------------------------------------------

    def run_info(
        self,
        tpg: TestPatternGenerator | str,
        config: PipelineConfig | None = None,
        use_cache: bool = True,
    ) -> RunInfo:
        """Run the staged flow for one TPG; report cache provenance."""
        config = config or self.config
        tpg_instance = (
            make_tpg(tpg, self.circuit.n_inputs) if isinstance(tpg, str) else tpg
        )
        start = time.perf_counter()
        if self.cache is not None and use_cache:
            key = self._result_key(tpg_instance.name, config)
            payload = self.cache.get(key, "pipeline_result")
            if payload is not None:
                self._emit(StageEvent("pipeline", "cache-hit"))
                result = PipelineResult.from_dict(payload)
                return RunInfo(result, True, time.perf_counter() - start)
        atpg_was_ready = self._atpg_knobs(config) in self._atpg_results
        atpg = self._atpg_for(config)
        ctx = StageContext(
            circuit=self.circuit,
            tpg=tpg_instance,
            config=config,
            simulator=self.simulator,
            progress=self._emit,
            evolution_cache=self.packed_evolution,
            telemetry=self.telemetry,
        )
        ctx.artifacts["atpg"] = atpg
        result = run_flow(ctx)
        if not atpg_was_ready:
            # This run paid for ATPG (session-level, outside the skipped
            # AtpgStage): attribute the cost to its timings line.
            result.timings["atpg"] += self._atpg_seconds
        if self.cache is not None and use_cache:
            self.cache.put(
                self._result_key(tpg_instance.name, config), result.to_dict()
            )
        return RunInfo(result, False, time.perf_counter() - start)

    def run(
        self,
        tpg: TestPatternGenerator | str,
        config: PipelineConfig | None = None,
        use_cache: bool = True,
    ) -> PipelineResult:
        """The staged Figure-1 flow for one TPG, with shared artefacts."""
        return self.run_info(tpg, config, use_cache=use_cache).result

    # -- packed patterns ---------------------------------------------------

    @staticmethod
    def _packed_digest(packed) -> str:
        """Content hash of a packed pattern sequence — hashes the raw
        word buffer (C-level), not per-pattern strings."""
        import numpy as np

        digest = hashlib.sha256()
        digest.update(f"{packed.width}:{packed.n_patterns}:".encode())
        digest.update(np.ascontiguousarray(packed.words).tobytes())
        return digest.hexdigest()

    @staticmethod
    def _seed_bank_digest(vectors) -> str:
        """Content hash of a BitVector bank (little-endian value bytes)."""
        digest = hashlib.sha256()
        for vector in vectors:
            digest.update(
                vector.value.to_bytes((vector.width + 7) // 8, "little")
            )
        return digest.hexdigest()

    def _evolution_key(self, tpg, deltas, sigmas, length: int) -> str:
        """Packed-evolution cache key: the TPG's identity token plus the
        exact (delta, sigma) bank and shared length."""
        return ArtifactCache.key(
            "packed_evolution",
            tpg=tpg.cache_token(),
            length=length,
            deltas=self._seed_bank_digest(deltas),
            sigmas=self._seed_bank_digest(sigmas),
        )

    def packed_evolution(self, tpg, deltas, sigmas, length: int):
        """Batch-evolve a seed bank, memoized (memory -> cache -> compute).

        Semantically identical to ``tpg.evolve_batch(deltas, sigmas,
        length)`` — this is the session's
        :data:`~repro.reseeding.triplet.EvolveBatch` provider, wired
        into every flow run's
        :class:`~repro.flow.stages.StageContext` so Detection Matrix
        construction and trimming share evolutions across TPG runs and
        (with a cache attached) across processes.  Keys cover the TPG's
        :meth:`~repro.tpg.base.TestPatternGenerator.cache_token`, the
        exact seed/sigma bank and the shared length, so distinct
        generators can never serve each other's sequences.

        Example::

            session = Session.from_name("c880", scale=0.25, cache=".cache")
            bank = session.packed_evolution(tpg, deltas, sigmas, 32)
            # warm processes load the packed words instead of evolving
        """
        from repro.flow.serialize import (
            packed_patterns_from_dict,
            packed_patterns_to_dict,
        )

        key = self._evolution_key(tpg, deltas, sigmas, length)
        packed = self._evolutions.get(key)
        if packed is not None:
            return packed
        if self.cache is not None:
            payload = self.cache.get(key, "packed_evolution")
            if payload is not None:
                packed = packed_patterns_from_dict(payload)
                self._evolutions[key] = packed
                self._emit(StageEvent("evolution", "cache-hit"))
                return packed
        packed = tpg.evolve_batch(deltas, sigmas, length)
        self._evolutions[key] = packed
        if self.cache is not None:
            self.cache.put(key, packed_patterns_to_dict(packed))
        return packed

    def packed_patterns(self, patterns) -> "PackedPatterns":
        """Coerce ``patterns`` to the word-parallel packed form the
        simulators consume (already-packed input passes through).

        Callers that reuse one sequence across calls hold on to the
        result — that is the "pack once per session" contract
        (:meth:`~repro.diagnosis.inject.FailLog.packed` does exactly
        this for every diagnosis engine consuming a fail log).
        """
        from repro.utils.bitvec import as_packed

        return as_packed(patterns, self.circuit.n_inputs)

    # -- diagnosis ---------------------------------------------------------

    def _dictionary_key(self, packed, faults) -> str:
        """Dictionary cache key: the exact (packed) pattern sequence
        and fault list on this exact netlist."""
        return ArtifactCache.key(
            "fault_dictionary",
            circuit=self.name,
            netlist=self.circuit_fingerprint,
            patterns=self._packed_digest(packed),
            faults=hashlib.sha256(
                "\n".join(str(f) for f in faults).encode()
            ).hexdigest(),
        )

    def fault_dictionary(self, patterns, faults=None):
        """The pass/fail :class:`~repro.diagnosis.dictionary.
        FaultDictionary` for a pattern sequence (cache -> compute).

        With a cache attached, warm diagnosis runs load the bit-packed
        dictionary instead of re-simulating patterns x faults.
        """
        from repro.diagnosis.dictionary import FaultDictionary
        from repro.flow.serialize import fault_dictionary_from_dict
        from repro.faults.collapse import collapse_faults

        packed = self.packed_patterns(patterns)
        faults = list(faults) if faults is not None else collapse_faults(self.circuit)
        key = self._dictionary_key(packed, faults)
        memoized = self._dictionaries.get(key)
        if memoized is not None:
            if self.cache is not None:
                # The memo is the in-process face of the same cache;
                # reflect the hit so operators see warm traffic.
                self.cache.record("fault_dictionary", hit=True)
            self._emit(StageEvent("dictionary", "cache-hit"))
            return memoized
        if self.cache is not None:
            payload = self.cache.get(key, "fault_dictionary")
            if payload is not None:
                self._emit(StageEvent("dictionary", "cache-hit"))
                dictionary = fault_dictionary_from_dict(payload)
                self._dictionaries[key] = dictionary
                return dictionary
        start = time.perf_counter()
        dictionary = FaultDictionary.build(
            self.circuit, packed, faults, simulator=self.simulator
        )
        self._emit(
            StageEvent("dictionary", "done", time.perf_counter() - start)
        )
        self._dictionaries[key] = dictionary
        if self.cache is not None:
            self.cache.put(key, dictionary.to_dict())
        return dictionary

    def golden_responses(self, patterns) -> list:
        """Fault-free primary-output responses for a pattern sequence,
        memoized per packed digest — every diagnosis of the same applied
        sequence (the serve layer's common case) shares one simulation."""
        packed = self.packed_patterns(patterns)
        key = self._packed_digest(packed)
        golden = self._golden.get(key)
        if golden is None:
            golden = self.simulator.compiled.simulate_patterns(packed)
            self._golden[key] = golden
        return golden

    def diagnose(
        self,
        fail_log,
        *,
        method: str = "effect_cause",
        faults=None,
        top_k: int = 10,
        min_window: int | None = None,
        oracle=None,
    ):
        """Diagnose a fail log with the session's shared simulator.

        ``method`` is ``"effect_cause"`` (full-log tracing + ranking),
        ``"dictionary"`` (lookup in the cached
        :meth:`fault_dictionary`), ``"signature"`` (MISR bisection,
        optionally against a caller-supplied tester ``oracle``), or
        ``"multiplet"`` (greedy multiple-fault cover).
        Effect-cause and signature route through the registered
        :class:`~repro.flow.stages.DiagnosisStage`, so progress hooks
        and timings behave like any other stage.
        """
        from repro.diagnosis.effect_cause import observed_fail_flags
        from repro.faults.collapse import collapse_faults

        if method == "dictionary":
            faults = (
                list(faults)
                if faults is not None
                else collapse_faults(self.circuit)
            )
            packed = fail_log.packed(self.circuit.n_inputs)
            dictionary = self.fault_dictionary(packed, faults)
            golden = self.golden_responses(packed)
            flags = observed_fail_flags(golden, fail_log.responses)
            return dictionary.diagnose(flags, top_k=top_k)
        from repro.flow.stages import DiagnosisStage, StageContext

        ctx = StageContext(
            circuit=self.circuit,
            tpg=None,
            config=self.config,
            simulator=self.simulator,
            progress=self._emit,
            telemetry=self.telemetry,
        )
        ctx.artifacts["fail_log"] = fail_log
        stage = DiagnosisStage(
            top_k=top_k,
            method=method,
            min_window=min_window,
            oracle=oracle,
            faults=faults,
        )
        stage.execute(ctx)
        result = ctx.artifacts["diagnosis"]
        result.timings.setdefault("stage", ctx.timings.get("diagnosis", 0.0))
        return result

    def diagnose_batch(
        self,
        fail_logs,
        *,
        method: str = "dictionary",
        faults=None,
        top_k: "int | list[int]" = 10,
    ) -> list:
        """Diagnose many fail logs in one pass — the serve layer's
        request-batching primitive.

        Logs applying the same pattern sequence (the tester-farm common
        case: one BIST program, many failing dies) share one packed
        form, one fault-free simulation and one
        :class:`~repro.diagnosis.dictionary.FaultDictionary`, and their
        fail flags are scored in a single vectorised lookup pass
        (:meth:`~repro.diagnosis.dictionary.FaultDictionary.
        diagnose_many`) instead of N serial ones.  Results are
        per-log **identical** to :meth:`diagnose` — batching is a
        throughput trick, never a semantics change.  Non-dictionary
        methods degrade to per-log :meth:`diagnose` calls.

        ``top_k`` may be one int for the whole batch or one per log.
        """
        import numpy as np

        from repro.diagnosis.effect_cause import observed_fail_flags
        from repro.faults.collapse import collapse_faults

        fail_logs = list(fail_logs)
        top_ks = (
            list(top_k)
            if isinstance(top_k, (list, tuple))
            else [top_k] * len(fail_logs)
        )
        if len(top_ks) != len(fail_logs):
            raise ValueError(
                f"{len(top_ks)} top_k values for {len(fail_logs)} fail logs"
            )
        if method != "dictionary":
            return [
                self.diagnose(log, method=method, faults=faults, top_k=k)
                for log, k in zip(fail_logs, top_ks)
            ]
        faults = (
            list(faults) if faults is not None else collapse_faults(self.circuit)
        )
        # Group logs by their packed-pattern digest; each group pays for
        # packing, golden simulation and the dictionary exactly once.
        groups: dict[str, list[int]] = {}
        digests: list[str] = []
        for index, log in enumerate(fail_logs):
            packed = log.packed(self.circuit.n_inputs)
            digest = self._packed_digest(packed)
            digests.append(digest)
            groups.setdefault(digest, []).append(index)
        results: list = [None] * len(fail_logs)
        for digest, members in groups.items():
            packed = fail_logs[members[0]].packed(self.circuit.n_inputs)
            dictionary = self.fault_dictionary(packed, faults)
            golden = self._golden.get(digest)
            if golden is None:
                golden = self.simulator.compiled.simulate_patterns(packed)
                self._golden[digest] = golden
            flags = np.stack(
                [
                    observed_fail_flags(golden, fail_logs[i].responses)
                    for i in members
                ],
                axis=1,
            )
            ranked = dictionary.diagnose_many(
                flags, top_k=[top_ks[i] for i in members]
            )
            for i, result in zip(members, ranked):
                results[i] = result
        return results
