"""The reseeding computation flow (paper Figure 1).

::

    ATPG (TestGen stand-in) --ATPGTS, F--> Initial Reseeding Builder
        --Detection Matrix--> Matrix Reducer (essentiality + dominance)
        --reduced matrix--> exact solver (LINGO stand-in)
        --necessary + minimal triplets--> trimming --> final reseeding N

The flow itself now lives in :mod:`repro.flow.stages` as first-class
``Stage`` objects over a shared ``StageContext``;
:class:`ReseedingPipeline` survives as the stable convenience wrapper
that executes the default stage chain for one circuit and one TPG and
returns every intermediate artefact (the experiments need them all:
Table 1 reads the final solution, Table 2 the matrix/reduction
statistics).  For circuit-level artefact sharing and on-disk caching
use :class:`repro.flow.session.Session`; for batch grids use
:func:`repro.flow.sweep.sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.engine import AtpgResult
from repro.circuit.netlist import Circuit
from repro.flow.stages import ProgressHook, StageContext, run_flow
from repro.reseeding.detection_matrix import DetectionMatrix
from repro.reseeding.initial import InitialReseeding
from repro.reseeding.triplet import Triplet
from repro.reseeding.trim import TrimmedSolution
from repro.setcover.solve import CoverSolution
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.tpg.registry import make_tpg


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs for one pipeline run.

    ``evolution_length`` is the paper's experimentally tuned T, equal
    for all candidate triplets (Section 3.1).  ``matrix_workers`` opts in
    to row-parallel Detection Matrix construction over a process pool
    (``None``/1 = serial, identical results either way).
    """

    seed: int = 2001
    evolution_length: int = 64
    cover_method: str = "auto"
    max_random_patterns: int = 4096
    backtrack_limit: int = 250
    #: Deterministic top-off engine: ``"batch"`` (fault-parallel PODEM
    #: on the compiled plan) or ``"recursive"`` (the scalar oracle,
    #: which reproduces the historical pattern sequence bit for bit).
    atpg_engine: str = "batch"
    grasp_iterations: int = 30
    matrix_workers: int | None = None
    #: Logic value system: ``2`` (the paper's fully scanned, fully
    #: deterministic setup) or ``3`` (0/1/X planes — fault detection is
    #: pessimistic and MISR signatures are X-masked).
    values: int = 2

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-compatible)."""
        from repro.flow.serialize import pipeline_config_to_dict

        return pipeline_config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Inverse of :meth:`to_dict`."""
        from repro.flow.serialize import pipeline_config_from_dict

        return pipeline_config_from_dict(data)


@dataclass
class PipelineResult:
    """Everything the flow produced, plus stage timings (seconds)."""

    circuit_name: str
    tpg_name: str
    config: PipelineConfig
    atpg: AtpgResult
    initial: InitialReseeding
    cover: CoverSolution
    selected_triplets: list[Triplet]
    trimmed: TrimmedSolution
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def n_triplets(self) -> int:
        """|N| — Table 1's '#Triplets'."""
        return self.trimmed.n_triplets

    @property
    def test_length(self) -> int:
        """Global test length after trimming — Table 1's 'Test Length'."""
        return self.trimmed.test_length

    @property
    def detection_matrix(self) -> DetectionMatrix:
        """The initial Detection Matrix."""
        return self.initial.detection_matrix

    @property
    def n_necessary(self) -> int:
        """Necessary (essential) triplets — Table 2's 'Necessary'."""
        return self.cover.stats.n_essential

    @property
    def n_from_solver(self) -> int:
        """Triplets chosen by the exact solver — Table 2's 'LINGO'."""
        return self.cover.stats.n_solver_selected

    @property
    def reduced_shape(self) -> tuple[int, int]:
        """Matrix size after reduction — Table 2's 'After Reduction'."""
        return self.cover.stats.reduced_shape

    def summary(self) -> str:
        """One-line digest in Table-1 vocabulary."""
        return (
            f"{self.circuit_name}/{self.tpg_name}: #Triplets={self.n_triplets} "
            f"TestLength={self.test_length} "
            f"(necessary={self.n_necessary}, solver={self.n_from_solver}, "
            f"reduced={self.reduced_shape[0]}x{self.reduced_shape[1]})"
        )

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form — the artifact-cache entry
        format, lossless for every downstream consumer."""
        from repro.flow.serialize import pipeline_result_to_dict

        return pipeline_result_to_dict(self)

    def to_json(self, indent: int | None = None) -> str:
        """:meth:`to_dict` rendered as JSON text (CLI ``--json``)."""
        from repro.flow.serialize import to_json

        return to_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineResult":
        """Inverse of :meth:`to_dict`; raises
        :class:`~repro.flow.serialize.SchemaMismatchError` on version skew."""
        from repro.flow.serialize import pipeline_result_from_dict

        return pipeline_result_from_dict(data)


class ReseedingPipeline:
    """Figure 1, as a reusable object.

    ``atpg_result`` and ``simulator`` can be shared across pipelines for
    the same circuit (Table 1 runs three TPGs per circuit; ATPG and the
    compiled fault simulator are circuit-level artefacts).  ``run()`` is
    a thin wrapper over the :mod:`repro.flow.stages` machinery and
    produces results bit-identical to the pre-stage implementation.
    """

    def __init__(
        self,
        circuit: Circuit,
        tpg: TestPatternGenerator | str,
        config: PipelineConfig | None = None,
        atpg_result: AtpgResult | None = None,
        simulator: FaultSimulator | None = None,
    ) -> None:
        self.circuit = circuit
        self.config = config or PipelineConfig()
        if self.config.values not in (2, 3):
            raise ValueError(
                f"config.values must be 2 or 3, got {self.config.values!r}"
            )
        self.tpg = (
            make_tpg(tpg, circuit.n_inputs) if isinstance(tpg, str) else tpg
        )
        if simulator is not None:
            self.simulator = simulator
        elif self.config.values == 3:
            from repro.sim.threeval import XFaultSimulator

            self.simulator = XFaultSimulator(circuit)
        else:
            self.simulator = FaultSimulator(circuit)
        self._atpg_result = atpg_result

    def run(self, progress: ProgressHook | None = None) -> PipelineResult:
        """Execute ATPG -> matrix -> reduction -> exact cover -> trim."""
        ctx = StageContext(
            circuit=self.circuit,
            tpg=self.tpg,
            config=self.config,
            simulator=self.simulator,
            progress=progress,
        )
        if self._atpg_result is not None:
            ctx.artifacts["atpg"] = self._atpg_result
        return run_flow(ctx)
