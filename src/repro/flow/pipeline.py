"""The reseeding computation flow (paper Figure 1).

::

    ATPG (TestGen stand-in) --ATPGTS, F--> Initial Reseeding Builder
        --Detection Matrix--> Matrix Reducer (essentiality + dominance)
        --reduced matrix--> exact solver (LINGO stand-in)
        --necessary + minimal triplets--> trimming --> final reseeding N

``ReseedingPipeline.run()`` executes the whole chain for one circuit and
one TPG, and returns every intermediate artefact (the experiments need
them all: Table 1 reads the final solution, Table 2 the matrix/reduction
statistics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.atpg.engine import AtpgEngine, AtpgResult
from repro.circuit.netlist import Circuit
from repro.reseeding.detection_matrix import DetectionMatrix
from repro.reseeding.initial import InitialReseeding, InitialReseedingBuilder
from repro.reseeding.triplet import ReseedingSolution, Triplet
from repro.reseeding.trim import TrimmedSolution, trim_solution
from repro.setcover.matrix import CoverMatrix
from repro.setcover.solve import CoverSolution, solve_cover
from repro.sim.fault import FaultSimulator
from repro.tpg.base import TestPatternGenerator
from repro.tpg.registry import make_tpg


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs for one pipeline run.

    ``evolution_length`` is the paper's experimentally tuned T, equal
    for all candidate triplets (Section 3.1).  ``matrix_workers`` opts in
    to row-parallel Detection Matrix construction over a process pool
    (``None``/1 = serial, identical results either way).
    """

    seed: int = 2001
    evolution_length: int = 64
    cover_method: str = "auto"
    max_random_patterns: int = 4096
    backtrack_limit: int = 250
    grasp_iterations: int = 30
    matrix_workers: int | None = None


@dataclass
class PipelineResult:
    """Everything the flow produced, plus stage timings (seconds)."""

    circuit_name: str
    tpg_name: str
    config: PipelineConfig
    atpg: AtpgResult
    initial: InitialReseeding
    cover: CoverSolution
    selected_triplets: list[Triplet]
    trimmed: TrimmedSolution
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def n_triplets(self) -> int:
        """|N| — Table 1's '#Triplets'."""
        return self.trimmed.n_triplets

    @property
    def test_length(self) -> int:
        """Global test length after trimming — Table 1's 'Test Length'."""
        return self.trimmed.test_length

    @property
    def detection_matrix(self) -> DetectionMatrix:
        """The initial Detection Matrix."""
        return self.initial.detection_matrix

    @property
    def n_necessary(self) -> int:
        """Necessary (essential) triplets — Table 2's 'Necessary'."""
        return self.cover.stats.n_essential

    @property
    def n_from_solver(self) -> int:
        """Triplets chosen by the exact solver — Table 2's 'LINGO'."""
        return self.cover.stats.n_solver_selected

    @property
    def reduced_shape(self) -> tuple[int, int]:
        """Matrix size after reduction — Table 2's 'After Reduction'."""
        return self.cover.stats.reduced_shape

    def summary(self) -> str:
        """One-line digest in Table-1 vocabulary."""
        return (
            f"{self.circuit_name}/{self.tpg_name}: #Triplets={self.n_triplets} "
            f"TestLength={self.test_length} "
            f"(necessary={self.n_necessary}, solver={self.n_from_solver}, "
            f"reduced={self.reduced_shape[0]}x{self.reduced_shape[1]})"
        )


class ReseedingPipeline:
    """Figure 1, as a reusable object.

    ``atpg_result`` and ``simulator`` can be shared across pipelines for
    the same circuit (Table 1 runs three TPGs per circuit; ATPG and the
    compiled fault simulator are circuit-level artefacts).
    """

    def __init__(
        self,
        circuit: Circuit,
        tpg: TestPatternGenerator | str,
        config: PipelineConfig | None = None,
        atpg_result: AtpgResult | None = None,
        simulator: FaultSimulator | None = None,
    ) -> None:
        self.circuit = circuit
        self.config = config or PipelineConfig()
        self.tpg = (
            make_tpg(tpg, circuit.n_inputs) if isinstance(tpg, str) else tpg
        )
        self.simulator = simulator or FaultSimulator(circuit)
        self._atpg_result = atpg_result

    def run(self) -> PipelineResult:
        """Execute ATPG -> matrix -> reduction -> exact cover -> trim."""
        config = self.config
        timings: dict[str, float] = {}

        start = time.perf_counter()
        atpg_result = self._atpg_result
        if atpg_result is None:
            engine = AtpgEngine(
                self.circuit,
                seed=config.seed,
                max_random_patterns=config.max_random_patterns,
                backtrack_limit=config.backtrack_limit,
                simulator=self.simulator,
            )
            atpg_result = engine.run()
        timings["atpg"] = time.perf_counter() - start

        start = time.perf_counter()
        builder = InitialReseedingBuilder(
            self.circuit, self.tpg, seed=config.seed, simulator=self.simulator
        )
        initial = builder.build_from_atpg(
            atpg_result,
            evolution_length=config.evolution_length,
            workers=config.matrix_workers,
        )
        timings["detection_matrix"] = time.perf_counter() - start

        start = time.perf_counter()
        cover_matrix = CoverMatrix.from_bool_array(initial.detection_matrix.matrix)
        cover = solve_cover(
            cover_matrix,
            method=config.cover_method,
            seed=config.seed,
            grasp_iterations=config.grasp_iterations,
        )
        timings["set_cover"] = time.perf_counter() - start

        start = time.perf_counter()
        selected_triplets = [initial.triplets[row] for row in cover.selected]
        trimmed = trim_solution(
            self.circuit,
            self.tpg,
            selected_triplets,
            atpg_result.target_faults,
            simulator=self.simulator,
        )
        if trimmed.undetected:
            raise AssertionError(
                f"final reseeding misses {len(trimmed.undetected)} faults; "
                "the covering solution should be complete"
            )
        timings["trim"] = time.perf_counter() - start

        return PipelineResult(
            circuit_name=self.circuit.name,
            tpg_name=self.tpg.name,
            config=config,
            atpg=atpg_result,
            initial=initial,
            cover=cover,
            selected_triplets=selected_triplets,
            trimmed=trimmed,
            timings=timings,
        )
