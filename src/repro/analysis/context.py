"""Shared file-discovery and parse cache for one analysis run.

Every rule receives the same :class:`AnalysisContext`: it walks the
tree once, parses each Python file once (``ast.parse`` results are
cached), and hands out repo-relative POSIX paths so findings render
identically on every platform.  Rules never touch the filesystem
directly — that keeps them trivially testable against synthetic
fixture trees (``tests/test_analysis.py`` builds throwaway roots).
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = ["AnalysisContext"]

#: Top-level directories scanned for Python sources.
SOURCE_DIRS = ("src", "tests", "tools", "benchmarks", "examples")

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


class AnalysisContext:
    """One run's view of the repository: files, sources, ASTs."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).resolve()
        self._sources: dict[Path, str] = {}
        self._lines: dict[Path, list[str]] = {}
        self._trees: dict[Path, ast.Module | None] = {}
        self._python_files: list[Path] | None = None

    # -- discovery -----------------------------------------------------

    def python_files(self) -> list[Path]:
        """Every ``.py`` file under the source directories, sorted."""
        if self._python_files is None:
            files: list[Path] = []
            for top in SOURCE_DIRS:
                base = self.root / top
                if not base.is_dir():
                    continue
                files.extend(
                    p
                    for p in base.rglob("*.py")
                    if not _SKIP_DIRS.intersection(p.parts)
                )
            self._python_files = sorted(files)
        return self._python_files

    def src_files(self) -> list[Path]:
        """The library sources only (``src/repro/**``)."""
        prefix = self.root / "src" / "repro"
        return [p for p in self.python_files() if prefix in p.parents]

    def markdown_files(self) -> list[Path]:
        """The documentation set the link checker covers: the README
        plus the whole ``docs/`` tree (mirrors the historical
        ``tools/check_links.py README.md docs`` invocation)."""
        files: list[Path] = []
        readme = self.root / "README.md"
        if readme.is_file():
            files.append(readme)
        docs = self.root / "docs"
        if docs.is_dir():
            files.extend(sorted(docs.rglob("*.md")))
        return files

    # -- cached content ------------------------------------------------

    def rel(self, path: Path) -> str:
        """``path`` relative to the repo root, POSIX separators."""
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def source(self, path: Path) -> str:
        if path not in self._sources:
            self._sources[path] = path.read_text(encoding="utf-8")
        return self._sources[path]

    def lines(self, path: Path) -> list[str]:
        if path not in self._lines:
            self._lines[path] = self.source(path).splitlines()
        return self._lines[path]

    def line_text(self, path: Path, line: int) -> str:
        lines = self.lines(path)
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    def tree(self, path: Path) -> ast.Module | None:
        """The parsed AST, or ``None`` when the file does not parse
        (the engine reports unparsable files once, as findings)."""
        if path not in self._trees:
            try:
                self._trees[path] = ast.parse(
                    self.source(path), filename=str(path)
                )
            except SyntaxError:
                self._trees[path] = None
        return self._trees[path]
