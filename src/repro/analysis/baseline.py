"""The committed findings baseline for gradual rule adoption.

``repro check --update-baseline`` records every *current* finding in
``.repro-baseline.json``; subsequent runs subtract baselined findings
from the failure set, so a new rule can land enforcing-new-code-only
while its backlog is burned down.  Entries match on content
fingerprints (:func:`repro.analysis.findings.fingerprint`) rather than
line numbers, so unrelated edits do not resurrect baselined findings.

This repo ships an **empty** baseline on purpose: every true violation
the shipped rules found was fixed (or carries a justified
``# repro: allow[...]``) rather than baselined — the file exists so
the workflow is exercised and the CI contract ("fails on any
non-baselined finding") is explicit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

__all__ = ["BASELINE_NAME", "load_baseline", "save_baseline"]

BASELINE_NAME = ".repro-baseline.json"
_BASELINE_KIND = "check_baseline"
_BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> set[tuple[str, str, str]]:
    """The baselined ``(rule, path, fingerprint)`` triples, or an empty
    set when no baseline file exists."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("kind") != _BASELINE_KIND:
        raise ValueError(f"{path} is not a check baseline")
    if payload.get("schema_version") != _BASELINE_SCHEMA:
        raise ValueError(
            f"{path} has baseline schema {payload.get('schema_version')}, "
            f"expected {_BASELINE_SCHEMA}"
        )
    return {
        (entry["rule"], entry["path"], entry["fingerprint"])
        for entry in payload.get("entries", ())
    }


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = sorted(
        {
            (finding.rule, finding.path, finding.fingerprint)
            for finding in findings
        }
    )
    payload = {
        "schema_version": _BASELINE_SCHEMA,
        "kind": _BASELINE_KIND,
        "entries": [
            {"rule": rule, "path": rel_path, "fingerprint": fp}
            for rule, rel_path, fp in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
