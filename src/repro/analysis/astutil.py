"""Small AST helpers shared by the analysis rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "parent_map",
    "ancestors",
    "dotted_name",
    "is_kernel_function",
    "kernel_functions",
]


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for every node under ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> Iterator[ast.AST]:
    """The chain of enclosing nodes, innermost first."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_kernel_function(node: ast.FunctionDef) -> bool:
    """Does ``node`` carry the ``@kernel`` decorator (syntactically)?"""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name == "kernel" or name.endswith(".kernel"):
            return True
    return False


def kernel_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Every ``@kernel``-decorated function in a module (any nesting)."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and is_kernel_function(node)
    ]
