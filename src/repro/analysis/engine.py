"""The ``repro check`` driver: run rules, apply suppressions, baseline.

:func:`run_check` is the whole pipeline —

1. resolve the requested rule set against the registry (unknown rule
   ids get the standard "did you mean" error);
2. run each rule over one shared :class:`AnalysisContext`;
3. validate every ``# repro: allow[...]`` comment (unknown rule ids
   and missing justifications are findings of the built-in
   ``bad-suppression`` pseudo-rule, and cannot themselves be
   suppressed);
4. drop findings covered by an allow on their line or the line above;
5. fingerprint what remains and subtract the committed baseline.

The returned :class:`CheckReport` carries the surviving findings (the
failure set), plus the suppressed/baselined buckets for the ``--json``
view, and renders both the human and the machine form.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.baseline import BASELINE_NAME, load_baseline
from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding, fingerprint
from repro.analysis.rules import RULES
from repro.analysis.suppress import find_allows

__all__ = ["CheckReport", "run_check", "BAD_SUPPRESSION"]

#: Pseudo-rule id for malformed suppression comments.
BAD_SUPPRESSION = "bad-suppression"

REPORT_SCHEMA = 1


@dataclass
class CheckReport:
    """One ``repro check`` outcome."""

    root: str
    rules: list[str]
    findings: list[Finding]  # the failure set (not suppressed/baselined)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA,
            "kind": "check_report",
            "root": self.root,
            "rules": list(self.rules),
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "seconds": round(self.seconds, 3),
        }

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        counts = Counter(finding.rule for finding in self.findings)
        summary = (
            "repro check: OK"
            if self.ok
            else "repro check: "
            + ", ".join(f"{n}x {rule}" for rule, n in sorted(counts.items()))
        )
        tail = (
            f"({len(self.rules)} rules, {len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined, {self.seconds:.2f}s)"
        )
        return "\n".join([*lines, f"{summary} {tail}"])


def _assign_fingerprints(
    findings: Sequence[Finding], ctx: AnalysisContext
) -> list[Finding]:
    """Fill content fingerprints, disambiguating identical lines."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        path = ctx.root / finding.path
        text = (
            ctx.line_text(path, finding.line) if path.is_file() else ""
        )
        key = (finding.rule, finding.path, text.strip())
        occurrence = seen[key]
        seen[key] += 1
        out.append(
            Finding(
                finding.rule,
                finding.path,
                finding.line,
                finding.message,
                fingerprint(finding.rule, finding.path, text, occurrence),
            )
        )
    return out


def run_check(
    root: Path | str,
    rules: Sequence[str] | None = None,
    baseline_path: Path | str | None = None,
) -> CheckReport:
    """Run the analysis pass and return the report.

    ``rules`` selects a subset by id (default: every registered rule);
    ``baseline_path`` points at a committed baseline (default:
    ``<root>/.repro-baseline.json`` — silently empty when absent).
    """
    started = time.perf_counter()
    ctx = AnalysisContext(root)
    rule_ids = list(rules) if rules else RULES.names()
    specs = [RULES.get(rule_id) for rule_id in rule_ids]

    raw: list[Finding] = []
    for spec in specs:
        raw.extend(spec.check(ctx))

    # Unparsable files are reported once, whichever rules ran.
    for path in ctx.python_files():
        if ctx.tree(path) is None:
            raw.append(
                Finding(
                    BAD_SUPPRESSION,
                    ctx.rel(path),
                    1,
                    "file does not parse; fix the syntax error first",
                )
            )

    # Validate every suppression comment in the scanned tree.
    known = set(RULES.names()) | {BAD_SUPPRESSION}
    allow_maps: dict[str, dict[int, Any]] = {}
    for path in ctx.python_files():
        rel = ctx.rel(path)
        allows = find_allows(ctx.source(path))
        if allows:
            allow_maps[rel] = {a.line: a for a in allows}
        for allow in allows:
            if not allow.justification:
                raw.append(
                    Finding(
                        BAD_SUPPRESSION,
                        rel,
                        allow.line,
                        "suppression without justification; write "
                        "'# repro: allow[rule-id] <why>'",
                    )
                )
            for rule_id in allow.rules:
                if rule_id not in known:
                    raw.append(
                        Finding(
                            BAD_SUPPRESSION,
                            rel,
                            allow.line,
                            f"suppression names unknown rule '{rule_id}'",
                        )
                    )

    # Apply suppressions: an allow covers its own line and the next.
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        allows = allow_maps.get(finding.path, {})
        allow = allows.get(finding.line) or allows.get(finding.line - 1)
        if (
            finding.rule != BAD_SUPPRESSION
            and allow is not None
            and allow.covers(finding.rule)
            and allow.justification
        ):
            suppressed.append(finding)
        else:
            active.append(finding)

    active = _assign_fingerprints(active, ctx)
    baseline_file = (
        Path(baseline_path)
        if baseline_path is not None
        else ctx.root / BASELINE_NAME
    )
    baseline = load_baseline(baseline_file)
    failures: list[Finding] = []
    baselined: list[Finding] = []
    for finding in active:
        if (finding.rule, finding.path, finding.fingerprint) in baseline:
            baselined.append(finding)
        else:
            failures.append(finding)

    return CheckReport(
        root=str(ctx.root),
        rules=rule_ids,
        findings=failures,
        suppressed=suppressed,
        baselined=baselined,
        seconds=time.perf_counter() - started,
    )
