"""Rule ``kernel-purity`` — registered hot paths stay word-parallel.

A function decorated ``@kernel`` (:mod:`repro.utils.kernels`) promises
to be pure packed numpy: whole-array calls over ``uint64`` planes, 64
patterns per instruction.  This rule rejects the constructs that break
that promise —

* Python-level ``for`` / ``while`` loops and comprehensions (one
  iteration per element is a 64x+ slowdown on the packed layout);
* ``int(...)`` / ``float(...)`` scalarization of array data and
  ``.tolist()`` / ``.item()`` materialisation;

with two deliberate escape hatches:

* *error paths*: conversions inside a ``raise`` or inside an ``if``
  block that raises are diagnostics, not hot-path work;
* *metadata*: ``int(len(x))``, ``int(x.size)``, ``int(x.shape[0])``
  and friends scalarize shape bookkeeping, not per-element data.

Functions whose names mark them as scalar oracles (``*_scalar``) must
**not** be registered — the differential suites need them slow and
obvious — and each known hot module must register at least one kernel
so the rule cannot be dodged by simply never decorating anything.
Structural walks that are intentionally O(depth) or O(pieces) (never
O(patterns)) carry a function-level ``# repro: allow[kernel-purity]``
on their ``def`` line with a one-line justification.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import (
    ancestors,
    dotted_name,
    is_kernel_function,
    parent_map,
)
from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule
from repro.analysis.suppress import allow_index

RULE = "kernel-purity"

#: Modules that carry the packed hot paths; each must register at
#: least one kernel (checked only when the file exists, so fixture
#: trees stay small).
HOT_MODULES = (
    "src/repro/sim/batch.py",
    "src/repro/sim/threeval.py",
    "src/repro/atpg/values5.py",
    "src/repro/atpg/batch_podem.py",
    "src/repro/utils/bitvec.py",
    "src/repro/circuit/gates.py",
    "src/repro/tpg/lfsr.py",
    "src/repro/tpg/accumulator.py",
)

_LOOP_NODES = (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_MATERIALIZE_ATTRS = {"tolist", "item"}
_SCALARIZE_NAMES = {"int", "float"}
#: Attribute reads whose int() conversion is shape/metadata bookkeeping.
_METADATA_ATTRS = {"size", "ndim", "nbytes", "n_patterns", "n_words", "width", "shape"}


def _is_metadata_arg(arg: ast.expr) -> bool:
    """Is this ``int(...)`` argument metadata rather than array data?"""
    if isinstance(arg, ast.Call) and dotted_name(arg.func) == "len":
        return True
    if isinstance(arg, ast.Attribute) and arg.attr in _METADATA_ATTRS:
        return True
    if isinstance(arg, ast.Subscript):
        value = arg.value
        if isinstance(value, ast.Attribute) and value.attr == "shape":
            return True
    return False


def _on_error_path(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """Inside a ``raise`` (or an ``if`` whose subtree raises)?"""
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.Raise):
            return True
        if isinstance(ancestor, ast.If) and any(
            isinstance(sub, ast.Raise) for sub in ast.walk(ancestor)
        ):
            return True
        if isinstance(ancestor, ast.FunctionDef):
            break
    return False


def _function_allowed(
    func: ast.FunctionDef, allows: dict[int, "object"]
) -> bool:
    """A ``# repro: allow[kernel-purity]`` on the def line, a decorator
    line, or the line directly above the function suppresses the whole
    body."""
    lines = {func.lineno}
    lines.update(d.lineno for d in func.decorator_list)
    lines.add(min(lines) - 1)
    for line in lines:
        allow = allows.get(line)
        if allow is not None and allow.covers(RULE) and allow.justification:
            return True
    return False


@register_rule(
    RULE,
    "registered @kernel hot paths must stay word-parallel "
    "(no Python loops, int() scalarization, or .tolist())",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for path in ctx.src_files():
        tree = ctx.tree(path)
        if tree is None:
            continue
        rel = ctx.rel(path)
        kernels = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef) and is_kernel_function(node)
        ]
        if rel in HOT_MODULES and not kernels:
            findings.append(
                Finding(
                    RULE,
                    rel,
                    1,
                    "hot module registers no @kernel functions; decorate its "
                    "packed fast paths (see repro.utils.kernels)",
                )
            )
        if not kernels:
            continue
        allows = allow_index(ctx.source(path))
        for func in kernels:
            if "scalar" in func.name:
                findings.append(
                    Finding(
                        RULE,
                        rel,
                        func.lineno,
                        f"'{func.name}' is a scalar oracle by naming convention "
                        "and must not be registered as a @kernel",
                    )
                )
                continue
            if _function_allowed(func, allows):
                continue
            parents = parent_map(func)
            for node in ast.walk(func):
                if node is func:
                    continue
                if isinstance(node, ast.FunctionDef):
                    # Nested defs are their own kernels only if decorated.
                    continue
                if isinstance(node, _LOOP_NODES):
                    kind = (
                        "while loop"
                        if isinstance(node, ast.While)
                        else "for loop"
                        if isinstance(node, ast.For)
                        else "comprehension"
                    )
                    findings.append(
                        Finding(
                            RULE,
                            rel,
                            node.lineno,
                            f"Python-level {kind} in @kernel '{func.name}'; "
                            "hot paths must be whole-array numpy calls",
                        )
                    )
                elif isinstance(node, ast.Call):
                    func_name = dotted_name(node.func)
                    if (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MATERIALIZE_ATTRS
                    ):
                        findings.append(
                            Finding(
                                RULE,
                                rel,
                                node.lineno,
                                f".{node.func.attr}() materialises Python objects "
                                f"in @kernel '{func.name}'",
                            )
                        )
                    elif func_name in _SCALARIZE_NAMES and node.args:
                        if _is_metadata_arg(node.args[0]):
                            continue
                        if _on_error_path(node, parents):
                            continue
                        findings.append(
                            Finding(
                                RULE,
                                rel,
                                node.lineno,
                                f"{func_name}() scalarizes array data in @kernel "
                                f"'{func.name}' (metadata like int(x.size) and "
                                "raise-path diagnostics are exempt)",
                            )
                        )
    return findings
