"""Rule ``asyncio-hygiene`` — serve coroutines must not block the loop.

``repro serve`` runs all compute on one ``ThreadPoolExecutor(1)``
thread; the event loop only parses, batches and writes.  Anything that
blocks a coroutine — ``time.sleep``, file I/O, ``subprocess``, a
direct ``Session`` compute call, or a :class:`SharedArtifactStore`
disk hit — stalls *every* in-flight connection at once.  The PR 8
near-miss (a copy-pasted blocking timing call in a handler) is exactly
the regression class this rule pins down.

Scope: every ``async def`` in ``src/repro/serve/``, plus one level of
propagation — a sync method of the same class invoked as
``self.method(...)`` from a coroutine is scanned too, with the finding
naming the async caller.  Routing the work through
``loop.run_in_executor(self._executor, fn, ...)`` is clean by
construction: the callable is passed as a reference, not called, so
nothing here fires on it.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_name
from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule

RULE = "asyncio-hygiene"

#: Call attribute names that hit the filesystem.
_FILE_IO_ATTRS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "unlink",
    "mkdir",
    "rmdir",
    "replace",
    "rename",
}
#: Session compute entry points that must stay on the compute thread.
_COMPUTE_ATTRS = {"diagnose", "diagnose_batch", "atpg_for", "run_info"}


def _blocking_reason(node: ast.Call) -> str | None:
    """Why this call must not run on the event loop (None = clean)."""
    name = dotted_name(node.func)
    if name == "time.sleep":
        return "time.sleep blocks the event loop; use asyncio.sleep"
    if name.startswith("subprocess.") or name in ("os.system", "os.popen"):
        return f"{name} blocks the event loop; move it to the executor"
    if name == "open":
        return "open() is blocking file I/O on the event loop"
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _FILE_IO_ATTRS:
            return f".{attr}() is blocking file I/O on the event loop"
        value = node.func.value
        store_base = (
            isinstance(value, ast.Attribute) and value.attr == "store"
        ) or (isinstance(value, ast.Name) and value.id == "store")
        if store_base and attr in ("put", "get", "attach"):
            return (
                f"store.{attr}() hits the shared artifact store (disk) on "
                "the event loop; route it through the compute executor"
            )
        if attr in _COMPUTE_ATTRS:
            return (
                f".{attr}() is Session compute; it must run on the "
                "compute-thread executor, not the event loop"
            )
        if attr == "_session" or name.endswith("._session"):
            return (
                "_session() loads netlists (real work); compute-thread only"
            )
    if isinstance(node.func, ast.Name) and node.func.id == "_session":
        return "_session() loads netlists (real work); compute-thread only"
    return None


def _scan_body(
    func: ast.AST, rel: str, label: str, findings: list[Finding]
) -> set[str]:
    """Flag blocking calls in one function body; returns the names of
    ``self.<method>(...)`` sync calls for one-level propagation."""
    called: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        reason = _blocking_reason(node)
        if reason is not None:
            findings.append(Finding(RULE, rel, node.lineno, f"{reason} ({label})"))
            continue
        target = node.func
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            called.add(target.attr)
    return called


@register_rule(
    RULE,
    "async def bodies in src/repro/serve/ must not sleep, do file I/O, "
    "spawn subprocesses, or call Session compute directly",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    serve_prefix = ctx.root / "src" / "repro" / "serve"
    for path in ctx.src_files():
        if serve_prefix not in path.parents:
            continue
        tree = ctx.tree(path)
        if tree is None:
            continue
        rel = ctx.rel(path)
        # Module-level coroutines.
        for node in tree.body:
            if isinstance(node, ast.AsyncFunctionDef):
                _scan_body(node, rel, f"in async {node.name}", findings)
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            sync_methods = {
                m.name: m for m in cls.body if isinstance(m, ast.FunctionDef)
            }
            scanned: set[str] = set()
            for method in cls.body:
                if not isinstance(method, ast.AsyncFunctionDef):
                    continue
                called = _scan_body(
                    method, rel, f"in async {method.name}", findings
                )
                # One-level propagation into same-class sync helpers.
                for name in sorted(called):
                    target = sync_methods.get(name)
                    if target is None or name in scanned:
                        continue
                    scanned.add(name)
                    _scan_body(
                        target,
                        rel,
                        f"in {name}, called from async {method.name}",
                        findings,
                    )
            # Nested async defs inside sync methods (e.g. bootstrap.run's
            # inner main()) are coroutines too.
            for method in cls.body:
                if isinstance(method, ast.FunctionDef):
                    for sub in ast.walk(method):
                        if isinstance(sub, ast.AsyncFunctionDef):
                            _scan_body(
                                sub, rel, f"in async {sub.name}", findings
                            )
        # Async defs nested in module-level sync functions.
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.AsyncFunctionDef):
                        _scan_body(sub, rel, f"in async {sub.name}", findings)
    return findings
