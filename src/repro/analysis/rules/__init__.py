"""The analysis rule registry.

Each rule module registers one :class:`RuleSpec` — an id, a one-line
description, and a ``check(ctx) -> list[Finding]`` callable — into
:data:`RULES`, the same :class:`~repro.utils.registry.Registry` the
TPG/solver/stage families use, so ``repro check --rule no-such-rule``
gets the standard "did you mean" error for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.utils.registry import Registry

__all__ = ["RULES", "RuleSpec", "register_rule"]

CheckFn = Callable[[AnalysisContext], List[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered rule: identity plus its check entry point."""

    id: str
    description: str
    check: CheckFn


RULES: Registry[RuleSpec] = Registry("analysis rule")


def register_rule(rule_id: str, description: str) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register ``check`` under ``rule_id``."""

    def decorator(check: CheckFn) -> CheckFn:
        RULES.register(rule_id, RuleSpec(rule_id, description, check))
        return check

    return decorator


# Importing the rule modules populates the registry (kept at the bottom
# so they can import register_rule from this partially-initialised
# package without a cycle).
from repro.analysis.rules import (  # noqa: E402  (registration imports)
    asyncio_hygiene,
    docs_links,
    dtype_discipline,
    kernel_purity,
    public_api,
    schema_kinds,
    telemetry,
)

_ = (
    kernel_purity,
    dtype_discipline,
    asyncio_hygiene,
    telemetry,
    schema_kinds,
    public_api,
    docs_links,
)
