"""Rule ``schema-kinds`` — every serialize kind has round-trip coverage.

``flow/serialize.py`` stamps each document with a ``"kind"`` literal
and validates it on the way back in (``check_schema(payload, kind)``).
A kind without a round-trip test is a schema that can drift silently —
the serve protocol and the artifact store both ride on these
envelopes.  This rule collects every kind the module stamps or checks
and requires each to appear as a string literal somewhere under
``tests/`` (the round-trip suites parametrize over kind names, so the
literal is the reliable signal; a missing literal means no test ever
names that schema).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_name
from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule

RULE = "schema-kinds"

_SERIALIZE = "src/repro/flow/serialize.py"


def _kinds_in_serialize(tree: ast.Module) -> dict[str, int]:
    """kind -> first line it is stamped or checked."""
    kinds: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "kind"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    kinds.setdefault(value.value, value.lineno)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name.split(".")[-1] == "check_schema" and len(node.args) >= 2:
                arg = node.args[1]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    kinds.setdefault(arg.value, arg.lineno)
    return kinds


@register_rule(
    RULE,
    "every serialize kind in flow/serialize.py appears in a round-trip "
    "test under tests/",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    serialize_path = ctx.root / _SERIALIZE
    if not serialize_path.is_file():
        return []
    tree = ctx.tree(serialize_path)
    if tree is None:
        return []
    kinds = _kinds_in_serialize(tree)
    if not kinds:
        return []
    test_literals: set[str] = set()
    tests_dir = ctx.root / "tests"
    for path in ctx.python_files():
        if tests_dir not in path.parents:
            continue
        test_tree = ctx.tree(path)
        if test_tree is None:
            continue
        for node in ast.walk(test_tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                test_literals.add(node.value)
    rel = ctx.rel(serialize_path)
    return [
        Finding(
            RULE,
            rel,
            line,
            f"serialize kind '{kind}' never appears in tests/; add a "
            "round-trip test that names it",
        )
        for kind, line in sorted(kinds.items(), key=lambda item: item[1])
        if kind not in test_literals
    ]
