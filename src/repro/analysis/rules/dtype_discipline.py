"""Rule ``dtype-discipline`` — keep ``uint64`` planes in uint64.

numpy's value-based promotion quietly turns ``uint64`` bit-planes into
``int64`` (or ``float64``) when a bare Python int sneaks into an
expression — ``words >> 3`` promotes, ``words >> np.uint64(3)`` does
not — and a promoted plane corrupts every packed kernel downstream.
This repo's convention (see ``docs/internals-bitpacking.md``) is to
wrap shift amounts and masks in ``np.uint64(...)`` and to pass an
explicit ``dtype=`` to every array constructor on a packed path.

Scope: ``@kernel``-decorated functions (the same set as
``kernel-purity``).  Two statically-decidable checks:

* ``np.zeros/empty/ones/full/arange`` without an explicit ``dtype=``;
* a shift (``<<`` / ``>>``) whose right operand is a bare integer
  literal, unless the whole expression is already inside an
  ``np.uint64(...)``-style scalar wrapper (Python-int math that gets
  converted before it ever meets an array).
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import (
    ancestors,
    dotted_name,
    is_kernel_function,
    parent_map,
)
from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule

RULE = "dtype-discipline"

_CONSTRUCTORS = {"zeros", "empty", "ones", "full", "arange"}
#: Calls that convert to a scalar dtype: bare-int math inside them is
#: Python-int math, converted before touching any array.
_SCALAR_WRAPPERS = {
    "int",
    "np.uint64",
    "np.int64",
    "np.uint8",
    "np.uint32",
    "np.int32",
    "numpy.uint64",
    "numpy.int64",
}


def _inside_scalar_wrapper(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> bool:
    for ancestor in ancestors(node, parents):
        if (
            isinstance(ancestor, ast.Call)
            and dotted_name(ancestor.func) in _SCALAR_WRAPPERS
        ):
            return True
        if isinstance(ancestor, ast.FunctionDef):
            break
    return False


@register_rule(
    RULE,
    "uint64 plane expressions must not mix in bare-int shifts or "
    "dtype-less array constructors (silent int64/float64 promotion)",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for path in ctx.src_files():
        tree = ctx.tree(path)
        if tree is None:
            continue
        rel = ctx.rel(path)
        for func in ast.walk(tree):
            if not isinstance(func, ast.FunctionDef) or not is_kernel_function(func):
                continue
            parents = parent_map(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if (
                        name.split(".")[-1] in _CONSTRUCTORS
                        and name.startswith(("np.", "numpy."))
                        and not any(kw.arg == "dtype" for kw in node.keywords)
                    ):
                        findings.append(
                            Finding(
                                RULE,
                                rel,
                                node.lineno,
                                f"{name}(...) without dtype= in @kernel "
                                f"'{func.name}'; packed buffers must pin uint64",
                            )
                        )
                elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.LShift, ast.RShift)
                ):
                    right = node.right
                    if (
                        isinstance(right, ast.Constant)
                        and isinstance(right.value, int)
                        and not _inside_scalar_wrapper(node, parents)
                    ):
                        findings.append(
                            Finding(
                                RULE,
                                rel,
                                node.lineno,
                                f"bare-int shift amount {right.value} in @kernel "
                                f"'{func.name}' promotes uint64 planes; wrap it "
                                "in np.uint64(...)",
                            )
                        )
    return findings
