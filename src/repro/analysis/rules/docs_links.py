"""Rule ``docs-links`` — every local markdown link resolves.

The engine-resident successor of ``tools/check_links.py`` (the tool
survives as a thin shim over this module): inline links/images and
reference definitions in the README and the ``docs/`` tree must point
at files that exist, and ``file.md#anchor`` targets must name a real
ATX heading by GitHub's slug rules.  External ``http(s)``/``mailto``
links are skipped — CI must not flake on the network.  Fenced code
blocks are masked (newline-preserving, so findings keep real line
numbers).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule

RULE = "docs-links"

__all__ = [
    "RULE",
    "github_slug",
    "heading_slugs",
    "iter_links",
    "check_file",
    "check_paths",
]

#: Inline [text](target) — target up to the first unescaped ')'; also
#: matches images (the leading '!' is irrelevant to target checking).
_INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference definitions: [label]: target
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for an ATX heading."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _mask_fences(markdown: str) -> str:
    """Blank out fenced code, keeping every line number stable."""
    return _CODE_FENCE.sub(
        lambda m: "\n" * m.group(0).count("\n"), markdown
    )


def heading_slugs(markdown: str) -> set[str]:
    """All anchor slugs a markdown document defines."""
    return {
        github_slug(match)
        for match in _HEADING.findall(_mask_fences(markdown))
    }


def iter_links(markdown: str):
    """Every ``(target, line)`` pair in a document (inline links plus
    reference definitions), fenced code masked out."""
    stripped = _mask_fences(markdown)
    for pattern in (_INLINE, _REFDEF):
        for match in pattern.finditer(stripped):
            line = stripped.count("\n", 0, match.start()) + 1
            yield match.group(1), line


def check_file(path: Path) -> list[tuple[int, str]]:
    """Broken-link ``(line, message)`` pairs for one markdown file."""
    markdown = path.read_text(encoding="utf-8")
    errors: list[tuple[int, str]] = []
    for target, line in iter_links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        if not base:  # pure in-page anchor
            if anchor and github_slug(anchor) not in heading_slugs(markdown):
                errors.append((line, f"missing in-page anchor #{anchor}"))
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append((line, f"broken link -> {target}"))
            continue
        if anchor and resolved.suffix == ".md":
            slugs = heading_slugs(resolved.read_text(encoding="utf-8"))
            if github_slug(anchor) not in slugs:
                errors.append((line, f"missing anchor -> {target}"))
    return errors


def check_paths(paths: list[str]) -> list[str]:
    """Flat error strings for files and (recursively) directories of
    markdown — the historical ``tools/check_links.py`` surface."""
    errors: list[str] = []
    for entry in paths:
        path = Path(entry)
        files = sorted(path.rglob("*.md")) if path.is_dir() else [path]
        for markdown_file in files:
            errors.extend(
                f"{markdown_file}: {message}"
                for _line, message in check_file(markdown_file)
            )
    return errors


@register_rule(
    RULE,
    "local markdown links in README.md and docs/ resolve (files exist, "
    "anchors name real headings)",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for path in ctx.markdown_files():
        rel = ctx.rel(path)
        findings.extend(
            Finding(RULE, rel, line, message)
            for line, message in check_file(path)
        )
    return findings
