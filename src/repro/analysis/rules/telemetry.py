"""Rule ``telemetry`` — metric names are valid, documented, mirrored.

Three contracts from PR 8's observability work, machine-checked:

* **naming** — every metric name in ``src/repro`` (a string literal
  fully matching ``repro_...``, or an f-string with a ``repro_``
  literal prefix, e.g. ``f"repro_cache_{outcome}_total"``) must match
  ``repro_[a-z_]+``;
* **documentation** — every concrete name must be covered by the
  glossary in ``docs/observability.md`` (f-strings count as covered
  when at least one documented name matches their pattern), and every
  documented name must correspond to something the code can emit (the
  reverse direction catches doc rot and typos on both sides);
* **/stats mirroring** — ``GET /stats`` and ``GET /metrics`` are two
  views of the same counters: every key the serve layer exposes in
  ``/stats`` (the batcher's ``as_dict`` and the server's ``stats()``)
  must map to a mirrored metric series, per the table below.  A new
  stats key without a mirror entry is a finding at its definition.

The glossary grammar understood here: backticked tokens, optional
trailing ``{label=}`` spec (stripped), inner ``{a,b,c}`` alternation
(expanded — ``repro_cache_{hits,misses,corrupt}_total`` is three
names), and ``repro_xxx_*`` prefix wildcards (cover code names but are
not required to be emitted literally).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule
from repro.analysis.rules.docs_links import _mask_fences

RULE = "telemetry"

_NAME_RE = re.compile(r"repro_[a-z_]+")
_COLLECT_RE = re.compile(r"repro_[a-z0-9_]+")
_CODE_SPAN = re.compile(r"`([^`]+)`")

#: /stats key -> the metric series that mirrors it.  ``None`` marks
#: keys that are derived views of an already-mirrored series (e.g.
#: occupancy aggregates of the occupancy histogram) or inherently
#: stats-only structure (nested documents with their own mirrors).
STATS_MIRRORS: dict[str, str | None] = {
    # MicroBatcher.stats.as_dict()
    "submitted": "repro_serve_submitted_total",
    "batches": "repro_serve_batches_total",
    "batched_requests": "repro_serve_batched_requests_total",
    "avg_occupancy": "repro_serve_batch_occupancy",
    "max_occupancy": "repro_serve_batch_occupancy",
    "expired": "repro_serve_deadline_expired_total",
    "shed": "repro_serve_shed_total",
    "depth_high_water": "repro_serve_queue_depth",
    # ReproServer.stats()
    "server": "repro_serve_uptime_seconds",
    "requests": "repro_serve_requests_total",
    "responses": "repro_serve_responses_total",
    "batcher": None,  # nested: each key mirrored individually above
    "sessions": "repro_serve_sessions",
    "pattern_sets": "repro_serve_pattern_sets",
    "store": "repro_cache_hits_total",  # ArtifactCache counters
}


def _doc_names(text: str) -> tuple[set[str], list[str], dict[str, int]]:
    """Concrete names, wildcard prefixes, and name -> doc line."""
    names: set[str] = set()
    wildcards: list[str] = []
    lines: dict[str, int] = {}
    # Fenced code blocks desync backtick pairing (``` is an odd run of
    # backticks as far as the inline-span regex is concerned); mask them
    # newline-preservingly so spans and line numbers both stay honest.
    text = _mask_fences(text)
    for match in _CODE_SPAN.finditer(text):
        token = match.group(1)
        if not token.startswith("repro_"):
            continue
        line = text.count("\n", 0, match.start()) + 1
        if token.endswith("*"):
            wildcards.append(token.rstrip("*"))
            continue
        # Strip a trailing {label=...} spec.
        token = re.sub(r"\{[^{}]*=[^{}]*\}$", "", token)
        # Expand one inner {a,b,c} alternation.
        alt = re.match(r"^([a-z_]*)\{([a-z_,]+)\}([a-z_]*)$", token)
        expanded = (
            [f"{alt.group(1)}{part}{alt.group(3)}" for part in alt.group(2).split(",")]
            if alt
            else [token]
        )
        for name in expanded:
            if _COLLECT_RE.fullmatch(name):
                names.add(name)
                lines.setdefault(name, line)
    return names, wildcards, lines


def _code_metric_names(
    ctx: AnalysisContext,
) -> tuple[list[tuple[str, str, int]], list[tuple[re.Pattern, str, int]]]:
    """(literal, file, line) names and (regex, file, line) f-string
    patterns found anywhere under ``src/repro``."""
    literals: list[tuple[str, str, int]] = []
    patterns: list[tuple[re.Pattern, str, int]] = []
    for path in ctx.src_files():
        tree = ctx.tree(path)
        if tree is None:
            continue
        rel = ctx.rel(path)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _COLLECT_RE.fullmatch(node.value)
            ):
                literals.append((node.value, rel, node.lineno))
            elif isinstance(node, ast.JoinedStr):
                parts = node.values
                if not parts or not isinstance(parts[0], ast.Constant):
                    continue
                first = parts[0].value
                if not isinstance(first, str) or not first.startswith("repro_"):
                    continue
                regex = "".join(
                    re.escape(p.value)
                    if isinstance(p, ast.Constant)
                    else "[a-z0-9_]+"
                    for p in parts
                )
                patterns.append((re.compile(regex), rel, node.lineno))
    return literals, patterns


def _check_stats_mirrors(
    ctx: AnalysisContext, emitted: set[str], findings: list[Finding]
) -> None:
    """Every dict key returned by the serve stats surfaces must have a
    mirror mapping whose metric the code actually emits."""
    for rel_path, funcs in (
        ("src/repro/serve/batcher.py", ("as_dict",)),
        ("src/repro/serve/server.py", ("stats",)),
    ):
        path = ctx.root / rel_path
        if not path.is_file():
            continue
        tree = ctx.tree(path)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef) or node.name not in funcs:
                continue
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or not isinstance(
                    ret.value, ast.Dict
                ):
                    continue
                for key in ret.value.keys:
                    if not isinstance(key, ast.Constant) or not isinstance(
                        key.value, str
                    ):
                        continue
                    name = key.value
                    if name not in STATS_MIRRORS:
                        findings.append(
                            Finding(
                                RULE,
                                ctx.rel(path),
                                key.lineno,
                                f"/stats key '{name}' has no mirrored metric "
                                "series; add the series and map it in "
                                "repro.analysis.rules.telemetry.STATS_MIRRORS",
                            )
                        )
                        continue
                    mirror = STATS_MIRRORS[name]
                    if mirror is not None and mirror not in emitted:
                        findings.append(
                            Finding(
                                RULE,
                                ctx.rel(path),
                                key.lineno,
                                f"/stats key '{name}' maps to metric "
                                f"'{mirror}' which the code never emits",
                            )
                        )


@register_rule(
    RULE,
    "metric names match repro_[a-z_]+, are documented in "
    "docs/observability.md, and every /stats key has a mirrored series",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    literals, patterns = _code_metric_names(ctx)
    doc_path = ctx.root / "docs" / "observability.md"
    if doc_path.is_file():
        doc_names, wildcards, doc_lines = _doc_names(
            doc_path.read_text(encoding="utf-8")
        )
    else:
        doc_names, wildcards, doc_lines = set(), [], {}
    have_docs = doc_path.is_file()

    emitted: set[str] = set()
    for name, rel, line in literals:
        emitted.add(name)
        if not _NAME_RE.fullmatch(name):
            findings.append(
                Finding(
                    RULE,
                    rel,
                    line,
                    f"metric name '{name}' does not match repro_[a-z_]+",
                )
            )
            continue
        if have_docs and name not in doc_names and not any(
            name.startswith(w) for w in wildcards
        ):
            findings.append(
                Finding(
                    RULE,
                    rel,
                    line,
                    f"metric '{name}' is not documented in "
                    "docs/observability.md",
                )
            )
    for regex, rel, line in patterns:
        matched = {name for name in doc_names if regex.fullmatch(name)}
        emitted.update(matched)
        if have_docs and not matched:
            findings.append(
                Finding(
                    RULE,
                    rel,
                    line,
                    f"metric name pattern '{regex.pattern}' matches no "
                    "documented series in docs/observability.md",
                )
            )
    if have_docs:
        doc_rel = ctx.rel(doc_path)
        literal_names = {name for name, _, _ in literals}
        for name in sorted(doc_names):
            if name in literal_names:
                continue
            if any(regex.fullmatch(name) for regex, _, _ in patterns):
                continue
            findings.append(
                Finding(
                    RULE,
                    doc_rel,
                    doc_lines.get(name, 1),
                    f"documented metric '{name}' is never emitted by the code",
                )
            )
    _check_stats_mirrors(ctx, emitted, findings)
    return findings
