"""Rule ``public-api`` — packages export deliberately, privates stay private.

Two drift guards over the library surface:

* every package ``__init__.py`` under ``src/repro`` must define
  ``__all__`` (the public surface is pinned by
  ``tests/test_public_api.py``; a package without ``__all__`` silently
  re-exports whatever it happens to import);
* no module imports another subpackage's ``_``-prefixed internals —
  ``from repro.obs.metrics import _render_one`` from the serve layer
  would couple it to observability internals that are free to change.
  Private names are fair game *within* their own subpackage.
"""

from __future__ import annotations

import ast

from repro.analysis.context import AnalysisContext
from repro.analysis.findings import Finding
from repro.analysis.rules import register_rule

RULE = "public-api"


def _own_package(rel: str) -> str:
    """The repro subpackage a source file belongs to ('' for root)."""
    parts = rel.split("/")
    # rel looks like src/repro/<pkg>/... or src/repro/<module>.py
    if len(parts) >= 4 and parts[0] == "src" and parts[1] == "repro":
        return parts[2]
    return ""


def _has_dunder_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                return True
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return True
    return False


@register_rule(
    RULE,
    "package __init__ files define __all__ and no module imports "
    "another subpackage's _-prefixed internals",
)
def check(ctx: AnalysisContext) -> list[Finding]:
    findings: list[Finding] = []
    for path in ctx.src_files():
        tree = ctx.tree(path)
        if tree is None:
            continue
        rel = ctx.rel(path)
        if path.name == "__init__.py" and not _has_dunder_all(tree):
            findings.append(
                Finding(
                    RULE,
                    rel,
                    1,
                    "package __init__ does not define __all__; pin the "
                    "public surface explicitly",
                )
            )
        own = _own_package(rel)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            module = node.module or ""
            if module != "repro" and not module.startswith("repro."):
                continue
            parts = module.split(".")
            target = parts[1] if len(parts) > 1 else ""
            if target == own:
                continue
            private_module = next(
                (p for p in parts[2:] if p.startswith("_")), None
            )
            if private_module is not None:
                findings.append(
                    Finding(
                        RULE,
                        rel,
                        node.lineno,
                        f"imports private module 'repro.{target}.{private_module}' "
                        "from another subpackage",
                    )
                )
                continue
            for alias in node.names:
                if alias.name.startswith("_"):
                    findings.append(
                        Finding(
                            RULE,
                            rel,
                            node.lineno,
                            f"imports private name '{alias.name}' from "
                            f"'{module}' outside its subpackage",
                        )
                    )
    return findings
