"""``repro.analysis`` — the repo-aware static-analysis pass.

An AST-based rule engine that machine-checks the conventions the
codebase rests on: packed kernels stay word-parallel, serve coroutines
never block the event loop, every metric is documented and mirrored,
every serialize kind has round-trip coverage, the public API surface
is pinned, and the docs' links resolve.  Surfaced as ``repro check``;
rules, suppression grammar and the baseline workflow are documented in
``docs/static-analysis.md``.
"""

from repro.analysis.baseline import BASELINE_NAME, load_baseline, save_baseline
from repro.analysis.context import AnalysisContext
from repro.analysis.engine import BAD_SUPPRESSION, CheckReport, run_check
from repro.analysis.findings import Finding, fingerprint
from repro.analysis.rules import RULES, RuleSpec, register_rule

__all__ = [
    "AnalysisContext",
    "BAD_SUPPRESSION",
    "BASELINE_NAME",
    "CheckReport",
    "Finding",
    "RULES",
    "RuleSpec",
    "fingerprint",
    "load_baseline",
    "register_rule",
    "run_check",
    "save_baseline",
]
