"""The findings model shared by every analysis rule.

A :class:`Finding` is one diagnostic anchored to a repo-relative file
and line, carrying the rule id that produced it — rendered in the
classic ``file:line:rule-id message`` form so editors and CI log
scrapers can jump to it.  Fingerprints (:func:`fingerprint`) are
content-based — a hash of the rule, the file and the *text* of the
anchor line plus an occurrence counter — so baseline entries survive
unrelated edits that only shift line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding", "fingerprint"]


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:rule`` plus a human message."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int  # 1-based; 0 for whole-file findings
    message: str
    #: Content fingerprint for baseline matching; filled by the engine.
    fingerprint: str = field(default="", compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    """Line-number-independent identity for one finding.

    ``occurrence`` disambiguates identical anchor lines in one file
    (the n-th finding of ``rule`` on that exact stripped text).
    """
    digest = hashlib.sha256(
        f"{rule}|{path}|{line_text.strip()}|{occurrence}".encode()
    ).hexdigest()
    return digest[:16]
