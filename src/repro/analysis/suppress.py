"""``# repro: allow[rule-id]`` suppression comments.

The suppression grammar is deliberately strict::

    packed = words << shift  # repro: allow[kernel-purity] scalar tail, O(1) words

* the bracket carries one or more comma-separated rule ids;
* the text after the bracket is the **justification** and is
  mandatory — an empty justification is itself reported (rule id
  ``bad-suppression``), as is a rule id the engine does not know;
* an allow suppresses matching findings on its own line or on the
  line directly below it (comment-above-statement style); the
  ``kernel-purity`` rule additionally honours allows on a ``def`` /
  decorator line for the whole function body (structural walks like
  the LFSR clock loop are per-function decisions, not per-line ones).

Only real ``#`` comments count: the scanner tokenizes the source, so
the grammar showing up in a docstring or an error-message string (this
module included) is not a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Allow", "find_allows", "allow_index"]

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass(frozen=True)
class Allow:
    """One parsed suppression comment."""

    line: int  # 1-based
    rules: tuple[str, ...]
    justification: str

    def covers(self, rule: str) -> bool:
        return rule in self.rules


def find_allows(source: str) -> list[Allow]:
    """Every suppression comment in a file's source text."""
    allows: list[Allow] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return allows
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        allows.append(Allow(token.start[0], rules, match.group(2).strip()))
    return allows


def allow_index(source: str) -> dict[int, Allow]:
    """Line -> allow map for suppression lookups."""
    return {allow.line: allow for allow in find_allows(source)}
