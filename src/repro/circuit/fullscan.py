"""Full-scan transformation: sequential circuit -> combinational view.

The paper tests "the full-scan version of ISCAS'89 benchmark circuits":
with full scan, every flip-flop is directly controllable and observable
through the scan chain, so for test generation the circuit behaves as a
combinational block whose inputs are PI + flip-flop outputs
(pseudo-primary inputs, PPI) and whose outputs are PO + flip-flop data
inputs (pseudo-primary outputs, PPO).
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate

#: Suffix appended to a DFF's data-input net when exposed as a PPO.
PPO_SUFFIX = "_ppo"


def full_scan_view(circuit: Circuit, name: str | None = None) -> Circuit:
    """The combinational full-scan view of ``circuit``.

    Every ``DFF`` gate is removed; its output net becomes a pseudo-primary
    input, and its data-input net is exposed as a pseudo-primary output
    (via a BUF named ``<dff>_ppo`` so PPO names never collide with
    existing nets).  Combinational circuits are returned as a plain copy.
    """
    if not circuit.is_sequential():
        return circuit.copy(name or circuit.name)
    inputs = list(circuit.inputs)
    outputs = list(circuit.outputs)
    gates: list[Gate] = []
    for gate in circuit.gates.values():
        if gate.gtype is GateType.DFF:
            inputs.append(gate.name)
            ppo_net = f"{gate.name}{PPO_SUFFIX}"
            gates.append(Gate(ppo_net, GateType.BUF, (gate.fanins[0],)))
            outputs.append(ppo_net)
        else:
            gates.append(gate)
    scan_name = name or f"{circuit.name}_scan"
    result = Circuit(scan_name, inputs, outputs, gates)
    if result.is_sequential():
        raise AssertionError("full-scan view still contains DFFs")
    return result


def scan_chain_length(circuit: Circuit) -> int:
    """Number of flip-flops in a sequential circuit (0 if combinational)."""
    return sum(1 for g in circuit.gates.values() if g.gtype is GateType.DFF)
