"""Full-scan transformation: sequential circuit -> combinational view.

The paper tests "the full-scan version of ISCAS'89 benchmark circuits":
with full scan, every flip-flop is directly controllable and observable
through the scan chain, so for test generation the circuit behaves as a
combinational block whose inputs are PI + flip-flop outputs
(pseudo-primary inputs, PPI) and whose outputs are PO + flip-flop data
inputs (pseudo-primary outputs, PPO).
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate

#: Suffix appended to a DFF's data-input net when exposed as a PPO.
PPO_SUFFIX = "_ppo"


def full_scan_view(circuit: Circuit, name: str | None = None) -> Circuit:
    """The combinational full-scan view of ``circuit``.

    Every ``DFF`` gate is removed; its output net becomes a pseudo-primary
    input, and its data-input net is exposed as a pseudo-primary output
    (via a BUF named ``<dff>_ppo`` so PPO names never collide with
    existing nets).  Combinational circuits are returned as a plain copy.
    """
    if not circuit.is_sequential():
        return circuit.copy(name or circuit.name)
    inputs = list(circuit.inputs)
    outputs = list(circuit.outputs)
    gates: list[Gate] = []
    for gate in circuit.gates.values():
        if gate.gtype is GateType.DFF:
            inputs.append(gate.name)
            ppo_net = f"{gate.name}{PPO_SUFFIX}"
            gates.append(Gate(ppo_net, GateType.BUF, (gate.fanins[0],)))
            outputs.append(ppo_net)
        else:
            gates.append(gate)
    scan_name = name or f"{circuit.name}_scan"
    result = Circuit(scan_name, inputs, outputs, gates)
    if result.is_sequential():
        raise AssertionError("full-scan view still contains DFFs")
    return result


def partial_scan_view(
    circuit: Circuit,
    scanned: Sequence[str] | set[str],
    name: str | None = None,
) -> tuple[Circuit, list[str]]:
    """The combinational view of ``circuit`` with only ``scanned`` DFFs
    on the scan chain.

    Scanned flip-flops transform exactly as in :func:`full_scan_view`
    (output -> PPI, data input -> ``_ppo`` PPO).  *Unscanned* flip-flops
    are also removed, but their outputs become plain primary inputs
    whose power-up state is **unknown**: the returned ``x_inputs`` lists
    them, and callers must drive them with X (three-valued simulation)
    — their data inputs are not observable, so no PPO is created.

    Returns ``(view, x_inputs)``; ``x_inputs`` is empty for a
    combinational circuit or when every flip-flop is scanned (then the
    view equals :func:`full_scan_view`).
    """
    scanned_set = set(scanned)
    dff_names = {
        g.name for g in circuit.gates.values() if g.gtype is GateType.DFF
    }
    unknown = scanned_set - dff_names
    if unknown:
        raise ValueError(
            f"scanned nets are not flip-flops of {circuit.name!r}: "
            f"{sorted(unknown)}"
        )
    if not circuit.is_sequential():
        return circuit.copy(name or circuit.name), []
    inputs = list(circuit.inputs)
    outputs = list(circuit.outputs)
    gates: list[Gate] = []
    x_inputs: list[str] = []
    for gate in circuit.gates.values():
        if gate.gtype is GateType.DFF:
            inputs.append(gate.name)
            if gate.name in scanned_set:
                ppo_net = f"{gate.name}{PPO_SUFFIX}"
                gates.append(Gate(ppo_net, GateType.BUF, (gate.fanins[0],)))
                outputs.append(ppo_net)
            else:
                x_inputs.append(gate.name)
        else:
            gates.append(gate)
    view_name = name or f"{circuit.name}_pscan"
    result = Circuit(view_name, inputs, outputs, gates)
    if result.is_sequential():
        raise AssertionError("partial-scan view still contains DFFs")
    return result, x_inputs


def scan_chain_length(circuit: Circuit) -> int:
    """Number of flip-flops in a sequential circuit (0 if combinational)."""
    return sum(1 for g in circuit.gates.values() if g.gtype is GateType.DFF)
