"""Gate-level combinational circuit model and I/O.

The circuit model is the substrate everything else stands on: the fault
model enumerates its nodes, the simulators evaluate it, the ATPG searches
it, and the reseeding flow tests it.  Circuits are combinational; the
sequential ISCAS'89 benchmarks enter the flow through the full-scan
transformation (:mod:`repro.circuit.fullscan`), exactly as in the paper
("the full-scan version of ISCAS'89 benchmark circuits").
"""

from repro.circuit.gates import GateType, eval_gate_bool, eval_gate_words
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.fullscan import full_scan_view, partial_scan_view
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuit.validate import CircuitError, validate_circuit

__all__ = [
    "Circuit",
    "CircuitError",
    "Gate",
    "GateType",
    "GeneratorSpec",
    "eval_gate_bool",
    "eval_gate_words",
    "full_scan_view",
    "generate_circuit",
    "partial_scan_view",
    "parse_bench",
    "parse_bench_file",
    "validate_circuit",
    "write_bench",
]
