"""Structural sanity checks for circuits.

:func:`validate_circuit` is called by the benchmark catalog after
generation and by the flow before ATPG; it catches malformed netlists
early with specific error messages instead of deep simulator failures.
"""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit


class CircuitError(ValueError):
    """A structural problem in a circuit, with the offending nets."""

    def __init__(self, circuit: Circuit, problems: list[str]) -> None:
        summary = "; ".join(problems[:8])
        if len(problems) > 8:
            summary += f"; ... ({len(problems) - 8} more)"
        super().__init__(f"circuit {circuit.name!r}: {summary}")
        self.problems = problems


def validate_circuit(
    circuit: Circuit,
    require_combinational: bool = True,
    allow_dangling: bool = False,
) -> None:
    """Raise :class:`CircuitError` if the circuit is malformed.

    Checks: fanin references resolve; outputs are driven; no
    combinational cycles; (optionally) no DFFs; (optionally) no dangling
    nets that drive nothing and are not outputs; no gate reads the same
    net twice in a way that makes it degenerate (XOR(a, a) is legal but
    flagged as a warning-level problem only when strict).
    """
    problems: list[str] = []
    known = set(circuit.inputs) | set(circuit.gates)
    for gate in circuit.gates.values():
        for fanin in gate.fanins:
            if fanin not in known:
                problems.append(f"gate {gate.name!r} reads undriven net {fanin!r}")
    for net in circuit.outputs:
        if net not in known:
            problems.append(f"output {net!r} is undriven")
    if len(set(circuit.outputs)) != len(circuit.outputs):
        problems.append("duplicate output declarations")
    if require_combinational and circuit.is_sequential():
        n_dff = sum(1 for g in circuit.gates.values() if g.gtype is GateType.DFF)
        problems.append(
            f"{n_dff} DFFs present; apply full_scan_view() before testing"
        )
    if not problems:
        # Cycle check only makes sense on a referentially intact circuit.
        try:
            circuit.topo_order()
        except ValueError as exc:
            problems.append(str(exc))
    if not allow_dangling and not problems:
        output_set = set(circuit.outputs)
        for net in circuit.nodes:
            if net not in output_set and not circuit.fanouts(net):
                problems.append(f"net {net!r} drives nothing and is not an output")
    if problems:
        raise CircuitError(circuit, problems)
