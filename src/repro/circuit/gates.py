"""Gate types and their evaluation semantics.

Three evaluation flavours are provided:

* :func:`eval_gate_bool` — scalar 0/1 evaluation, used by the
  event-driven reference simulator and the ATPG's forward implication;
* :func:`eval_gate_words` — bit-parallel evaluation over ``uint64``
  words (64 patterns at once), used by the packed simulators;
* the **plane algebra** (:func:`eval_gate_planes` /
  :func:`reduce_gate_planes` / :func:`not_planes`) — three-valued
  (0/1/X) bit-parallel evaluation over paired value/care ``uint64``
  planes (``v`` = value bit, ``c`` = care bit, invariant
  ``v & ~c == 0``; see ``docs/internals-bitpacking.md``), shared by the
  3-valued logic/fault simulators (:mod:`repro.sim.threeval`) and the
  five-valued batch PODEM lanes (:mod:`repro.atpg.values5`).

The scalar three-valued reference :func:`eval_gate_3v_scalar` (codes
0/1/2, 2 = X) is the oracle the plane kernels are differentially
tested against.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from typing import Sequence

import numpy as np

from repro.utils.kernels import kernel

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class GateType(Enum):
    """The gate library: the ISCAS ``.bench`` primitive set plus
    constants and flip-flops (flip-flops only appear in sequential
    netlists, before the full-scan transformation)."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    DFF = "DFF"

    @property
    def min_fanin(self) -> int:
        """Minimum number of fanin nets for this gate type."""
        return _FANIN_RANGE[self][0]

    @property
    def max_fanin(self) -> int | None:
        """Maximum number of fanin nets, or ``None`` for unbounded."""
        return _FANIN_RANGE[self][1]

    @property
    def is_source(self) -> bool:
        """True for nodes with no logic fanin (inputs, constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)


_FANIN_RANGE: dict[GateType, tuple[int, int | None]] = {
    GateType.INPUT: (0, 0),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.AND: (1, None),
    GateType.NAND: (1, None),
    GateType.OR: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.DFF: (1, 1),
}

#: Gate types whose output is a function of present inputs only.
COMBINATIONAL_TYPES = frozenset(
    t for t in GateType if t not in (GateType.DFF, GateType.INPUT)
)


def eval_gate_bool(gtype: GateType, fanin_values: Sequence[int]) -> int:
    """Evaluate a gate on scalar 0/1 fanin values; returns 0 or 1."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if gtype is GateType.AND:
        return int(all(fanin_values))
    if gtype is GateType.NAND:
        return int(not all(fanin_values))
    if gtype is GateType.OR:
        return int(any(fanin_values))
    if gtype is GateType.NOR:
        return int(not any(fanin_values))
    if gtype is GateType.XOR:
        return reduce(lambda a, b: a ^ b, fanin_values)
    if gtype is GateType.XNOR:
        return 1 ^ reduce(lambda a, b: a ^ b, fanin_values)
    if gtype in (GateType.NOT,):
        return 1 - fanin_values[0]
    if gtype is GateType.BUF:
        return fanin_values[0]
    raise ValueError(f"unknown gate type {gtype!r}")


@kernel
def eval_gate_words(gtype: GateType, fanin_words: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate a gate on packed ``uint64`` word arrays (bitwise, so each
    word bit is an independent pattern).  All fanin arrays must share a
    shape; the result has that shape."""
    if gtype is GateType.CONST0:
        raise ValueError("CONST0 has no fanin; materialise zeros at the caller")
    if gtype is GateType.CONST1:
        raise ValueError("CONST1 has no fanin; materialise ones at the caller")
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if gtype is GateType.AND:
        return reduce(np.bitwise_and, fanin_words)
    if gtype is GateType.NAND:
        return reduce(np.bitwise_and, fanin_words) ^ _ALL_ONES
    if gtype is GateType.OR:
        return reduce(np.bitwise_or, fanin_words)
    if gtype is GateType.NOR:
        return reduce(np.bitwise_or, fanin_words) ^ _ALL_ONES
    if gtype is GateType.XOR:
        return reduce(np.bitwise_xor, fanin_words)
    if gtype is GateType.XNOR:
        return reduce(np.bitwise_xor, fanin_words) ^ _ALL_ONES
    if gtype is GateType.NOT:
        return fanin_words[0] ^ _ALL_ONES
    if gtype is GateType.BUF:
        return fanin_words[0].copy()
    raise ValueError(f"unknown gate type {gtype!r}")


@kernel
def reduce_gate_words(
    gtype: GateType, stacked: np.ndarray, axis: int = 1
) -> np.ndarray:
    """Evaluate many same-type gates at once on a stacked fanin array.

    ``stacked`` carries the gathered fanin words of a *group* of gates
    sharing one gate type and fanin arity; ``axis`` is the fanin axis
    (reduced away).  This is the vectorised counterpart of
    :func:`eval_gate_words`: one numpy call evaluates a whole group
    instead of one call per gate.
    """
    if gtype in (GateType.AND, GateType.NAND):
        out = np.bitwise_and.reduce(stacked, axis=axis)
    elif gtype in (GateType.OR, GateType.NOR):
        out = np.bitwise_or.reduce(stacked, axis=axis)
    elif gtype in (GateType.XOR, GateType.XNOR):
        out = np.bitwise_xor.reduce(stacked, axis=axis)
    elif gtype in (GateType.NOT, GateType.BUF):
        out = np.take(stacked, 0, axis=axis)
    else:
        raise ValueError(f"gate type {gtype!r} has no word-reduction form")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
        out = out ^ _ALL_ONES
    return out


#: Three-valued X code used by the scalar oracle and the unpacked
#: (per-pattern / per-lane) views of the plane algebra.
X3 = 2


def eval_gate_3v_scalar(gtype: GateType, fanin_codes: Sequence[int]) -> int:
    """Scalar three-valued gate evaluation on codes 0/1/2 (2 = X).

    The from-the-definition oracle for the plane kernels: a gate output
    is known exactly when the known fanins force it (a known
    controlling value) or every fanin is known.  Deliberately slow and
    obvious — the differential suite pins :func:`eval_gate_planes` and
    :func:`reduce_gate_planes` against this, bit for bit.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if any(code not in (0, 1, X3) for code in fanin_codes):
        raise ValueError(f"three-valued codes must be 0/1/2, got {fanin_codes!r}")
    invert = inversion_parity(gtype)
    if gtype in (GateType.AND, GateType.NAND):
        if any(code == 0 for code in fanin_codes):
            base = 0
        elif all(code == 1 for code in fanin_codes):
            base = 1
        else:
            return X3
    elif gtype in (GateType.OR, GateType.NOR):
        if any(code == 1 for code in fanin_codes):
            base = 1
        elif all(code == 0 for code in fanin_codes):
            base = 0
        else:
            return X3
    elif gtype in (GateType.XOR, GateType.XNOR):
        if any(code == X3 for code in fanin_codes):
            return X3
        base = reduce(lambda a, b: a ^ b, fanin_codes)
    elif gtype in (GateType.NOT, GateType.BUF):
        if fanin_codes[0] == X3:
            return X3
        base = fanin_codes[0]
    else:
        raise ValueError(f"unknown gate type {gtype!r}")
    return base ^ invert


@kernel
def not_planes(v: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Three-valued NOT on packed planes: known lanes flip, X stays X
    (and the ``v & ~c == 0`` invariant is re-established)."""
    return c & ~v, c


# repro: allow[kernel-purity] O(arity) fanin-list walk; every element op is word-parallel
@kernel
def eval_gate_planes(
    gtype: GateType,
    fanin_v: Sequence[np.ndarray],
    fanin_c: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one gate on packed three-valued planes.

    ``fanin_v`` / ``fanin_c`` carry one (value, care) plane pair per
    fanin; the result is the output plane pair — the plane counterpart
    of :func:`eval_gate_words`, with the same X semantics as
    :func:`eval_gate_3v_scalar`:

    * AND — known where all fanins are known or some fanin is a known 0;
    * OR  — known where all fanins are known or some fanin is a known 1;
    * XOR — known only where every fanin is known;
    * inverting types flip the value bit on known lanes.
    """
    if gtype is GateType.CONST0:
        raise ValueError("CONST0 has no fanin; materialise planes at the caller")
    if gtype is GateType.CONST1:
        raise ValueError("CONST1 has no fanin; materialise planes at the caller")
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if gtype in (GateType.AND, GateType.NAND):
        out_v = reduce(np.bitwise_and, fanin_v)
        out_c = reduce(np.bitwise_and, fanin_c) | reduce(
            np.bitwise_or, [c & ~v for v, c in zip(fanin_v, fanin_c)]
        )
    elif gtype in (GateType.OR, GateType.NOR):
        out_v = reduce(np.bitwise_or, fanin_v)
        # v & ~c == 0, so a set value bit is always a *known* 1.
        out_c = reduce(np.bitwise_and, fanin_c) | out_v
    elif gtype in (GateType.XOR, GateType.XNOR):
        out_c = reduce(np.bitwise_and, fanin_c)
        out_v = reduce(np.bitwise_xor, fanin_v) & out_c
    elif gtype in (GateType.NOT, GateType.BUF):
        out_v, out_c = fanin_v[0].copy(), fanin_c[0].copy()
    else:
        raise ValueError(f"gate type {gtype!r} has no plane evaluation form")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
        out_v = out_c & ~out_v
    return out_v, out_c


@kernel
def reduce_gate_planes(
    gtype: GateType, v: np.ndarray, c: np.ndarray, axis: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate many same-type gates over stacked fanin planes.

    ``v`` / ``c`` carry the gathered fanin planes of a group of gates
    sharing one type and arity; ``axis`` is the fanin axis (reduced
    away).  This is the three-valued counterpart of
    :func:`reduce_gate_words` — one call evaluates a whole (level,
    type, arity) group for every packed lane, with the X semantics of
    :func:`eval_gate_planes`.
    """
    if gtype in (GateType.AND, GateType.NAND):
        out_v = np.bitwise_and.reduce(v, axis=axis)
        out_c = np.bitwise_and.reduce(c, axis=axis) | np.bitwise_or.reduce(
            c & ~v, axis=axis
        )
    elif gtype in (GateType.OR, GateType.NOR):
        out_v = np.bitwise_or.reduce(v, axis=axis)
        # v & ~c == 0, so a set value bit is always a *known* 1.
        out_c = np.bitwise_and.reduce(c, axis=axis) | out_v
    elif gtype in (GateType.XOR, GateType.XNOR):
        out_c = np.bitwise_and.reduce(c, axis=axis)
        out_v = np.bitwise_xor.reduce(v, axis=axis) & out_c
    elif gtype in (GateType.NOT, GateType.BUF):
        out_v = np.take(v, 0, axis=axis)
        out_c = np.take(c, 0, axis=axis)
    else:
        raise ValueError(f"gate type {gtype!r} has no plane-reduction form")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
        out_v = out_c & ~out_v
    return out_v, out_c


def controlling_value(gtype: GateType) -> int | None:
    """The controlling input value of a gate, or ``None`` if it has none
    (XOR/XNOR/BUF/NOT).  Used by the PODEM backtrace and the D-frontier
    analysis."""
    if gtype in (GateType.AND, GateType.NAND):
        return 0
    if gtype in (GateType.OR, GateType.NOR):
        return 1
    return None


def inversion_parity(gtype: GateType) -> int:
    """1 if the gate inverts (NAND/NOR/XNOR/NOT), else 0."""
    return 1 if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT) else 0
