"""Gate types and their evaluation semantics.

Two evaluation flavours are provided:

* :func:`eval_gate_bool` — scalar 0/1 evaluation, used by the
  event-driven reference simulator and the ATPG's forward implication;
* :func:`eval_gate_words` — bit-parallel evaluation over ``uint64``
  words (64 patterns at once), used by the packed simulators.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from typing import Sequence

import numpy as np

from repro.utils.kernels import kernel

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class GateType(Enum):
    """The gate library: the ISCAS ``.bench`` primitive set plus
    constants and flip-flops (flip-flops only appear in sequential
    netlists, before the full-scan transformation)."""

    INPUT = "INPUT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    DFF = "DFF"

    @property
    def min_fanin(self) -> int:
        """Minimum number of fanin nets for this gate type."""
        return _FANIN_RANGE[self][0]

    @property
    def max_fanin(self) -> int | None:
        """Maximum number of fanin nets, or ``None`` for unbounded."""
        return _FANIN_RANGE[self][1]

    @property
    def is_source(self) -> bool:
        """True for nodes with no logic fanin (inputs, constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)


_FANIN_RANGE: dict[GateType, tuple[int, int | None]] = {
    GateType.INPUT: (0, 0),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.AND: (1, None),
    GateType.NAND: (1, None),
    GateType.OR: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.DFF: (1, 1),
}

#: Gate types whose output is a function of present inputs only.
COMBINATIONAL_TYPES = frozenset(
    t for t in GateType if t not in (GateType.DFF, GateType.INPUT)
)


def eval_gate_bool(gtype: GateType, fanin_values: Sequence[int]) -> int:
    """Evaluate a gate on scalar 0/1 fanin values; returns 0 or 1."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if gtype is GateType.AND:
        return int(all(fanin_values))
    if gtype is GateType.NAND:
        return int(not all(fanin_values))
    if gtype is GateType.OR:
        return int(any(fanin_values))
    if gtype is GateType.NOR:
        return int(not any(fanin_values))
    if gtype is GateType.XOR:
        return reduce(lambda a, b: a ^ b, fanin_values)
    if gtype is GateType.XNOR:
        return 1 ^ reduce(lambda a, b: a ^ b, fanin_values)
    if gtype in (GateType.NOT,):
        return 1 - fanin_values[0]
    if gtype is GateType.BUF:
        return fanin_values[0]
    raise ValueError(f"unknown gate type {gtype!r}")


@kernel
def eval_gate_words(gtype: GateType, fanin_words: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate a gate on packed ``uint64`` word arrays (bitwise, so each
    word bit is an independent pattern).  All fanin arrays must share a
    shape; the result has that shape."""
    if gtype is GateType.CONST0:
        raise ValueError("CONST0 has no fanin; materialise zeros at the caller")
    if gtype is GateType.CONST1:
        raise ValueError("CONST1 has no fanin; materialise ones at the caller")
    if gtype in (GateType.INPUT, GateType.DFF):
        raise ValueError(f"{gtype.name} nodes are not evaluated; they are sources")
    if gtype is GateType.AND:
        return reduce(np.bitwise_and, fanin_words)
    if gtype is GateType.NAND:
        return reduce(np.bitwise_and, fanin_words) ^ _ALL_ONES
    if gtype is GateType.OR:
        return reduce(np.bitwise_or, fanin_words)
    if gtype is GateType.NOR:
        return reduce(np.bitwise_or, fanin_words) ^ _ALL_ONES
    if gtype is GateType.XOR:
        return reduce(np.bitwise_xor, fanin_words)
    if gtype is GateType.XNOR:
        return reduce(np.bitwise_xor, fanin_words) ^ _ALL_ONES
    if gtype is GateType.NOT:
        return fanin_words[0] ^ _ALL_ONES
    if gtype is GateType.BUF:
        return fanin_words[0].copy()
    raise ValueError(f"unknown gate type {gtype!r}")


@kernel
def reduce_gate_words(
    gtype: GateType, stacked: np.ndarray, axis: int = 1
) -> np.ndarray:
    """Evaluate many same-type gates at once on a stacked fanin array.

    ``stacked`` carries the gathered fanin words of a *group* of gates
    sharing one gate type and fanin arity; ``axis`` is the fanin axis
    (reduced away).  This is the vectorised counterpart of
    :func:`eval_gate_words`: one numpy call evaluates a whole group
    instead of one call per gate.
    """
    if gtype in (GateType.AND, GateType.NAND):
        out = np.bitwise_and.reduce(stacked, axis=axis)
    elif gtype in (GateType.OR, GateType.NOR):
        out = np.bitwise_or.reduce(stacked, axis=axis)
    elif gtype in (GateType.XOR, GateType.XNOR):
        out = np.bitwise_xor.reduce(stacked, axis=axis)
    elif gtype in (GateType.NOT, GateType.BUF):
        out = np.take(stacked, 0, axis=axis)
    else:
        raise ValueError(f"gate type {gtype!r} has no word-reduction form")
    if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
        out = out ^ _ALL_ONES
    return out


def controlling_value(gtype: GateType) -> int | None:
    """The controlling input value of a gate, or ``None`` if it has none
    (XOR/XNOR/BUF/NOT).  Used by the PODEM backtrace and the D-frontier
    analysis."""
    if gtype in (GateType.AND, GateType.NAND):
        return 0
    if gtype in (GateType.OR, GateType.NOR):
        return 1
    return None


def inversion_parity(gtype: GateType) -> int:
    """1 if the gate inverts (NAND/NOR/XNOR/NOT), else 0."""
    return 1 if gtype in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT) else 0
