"""Seeded synthetic combinational/sequential circuit generator.

The paper evaluates on the ISCAS'85 and full-scan ISCAS'89 suites.  The
genuine netlists are not redistributable in this offline environment (we
embed the tiny public ones, c17 and s27, in :mod:`repro.circuits.data`),
so the benchmark catalog (:mod:`repro.circuits`) generates *ISCAS-sized
stand-ins*: random levelized DAGs with the same PI/PO/gate/FF counts as
the circuit they stand in for, deterministically seeded by name.

The generator guarantees structural well-formedness by construction:

* exactly ``n_inputs`` PIs, ``n_outputs`` POs, ``n_gates`` logic gates
  (plus ``n_dffs`` DFFs for sequential specs);
* no combinational cycles (gates only read earlier nets);
* no dangling nets — every net either fans out or is an output
  (dangling candidates are stitched into later gates);
* every PI is read by at least one gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.validate import validate_circuit
from repro.utils.rng import RngStream

#: Default gate-type mix.  Tuned empirically so random logic keeps
#: signal probabilities near 0.5 (XOR/NOT-rich, narrow gates): deep
#: NAND-only random DAGs drift to near-constant nodes and become
#: untestable, unlike real designs.  With this mix the synthetic suite
#: shows 70-90% random-pattern coverage with a deterministic tail —
#: the same "not random testable" profile the paper selects for.
DEFAULT_GATE_WEIGHTS: dict[GateType, float] = {
    GateType.NAND: 0.20,
    GateType.NOR: 0.08,
    GateType.AND: 0.10,
    GateType.OR: 0.08,
    GateType.NOT: 0.20,
    GateType.XOR: 0.18,
    GateType.XNOR: 0.08,
    GateType.BUF: 0.08,
}

#: Multi-fanin types eligible to absorb dangling nets and drive POs.
_WIDE_TYPES = (GateType.NAND, GateType.NOR, GateType.AND, GateType.OR, GateType.XOR)


@dataclass(frozen=True)
class GeneratorSpec:
    """Parameters for one synthetic circuit.

    ``seed`` is combined with the circuit ``name`` so that each catalog
    entry is reproducible in isolation.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    n_dffs: int = 0
    seed: int = 2001
    max_fanin: int = 3
    gate_weights: tuple[tuple[GateType, float], ...] = tuple(
        DEFAULT_GATE_WEIGHTS.items()
    )

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("n_inputs must be >= 1")
        if self.n_outputs < 1:
            raise ValueError("n_outputs must be >= 1")
        if self.n_gates < self.n_outputs:
            raise ValueError("need at least as many gates as outputs")
        if self.max_fanin < 2:
            raise ValueError("max_fanin must be >= 2")


def generate_circuit(spec: GeneratorSpec) -> Circuit:
    """Generate the circuit described by ``spec`` (deterministic)."""
    rng = RngStream(spec.seed, "circuit-gen", spec.name)
    inputs = [f"pi{i}" for i in range(spec.n_inputs)]
    dff_outputs = [f"ff{i}" for i in range(spec.n_dffs)]
    # Pool of nets a new gate may read, in creation order (for recency bias).
    pool: list[str] = inputs + dff_outputs
    gate_list: list[Gate] = []
    weights = list(spec.gate_weights)
    type_choices = [t for t, _ in weights]
    type_weights = [w for _, w in weights]

    n_plain = spec.n_gates - spec.n_outputs
    for index in range(spec.n_gates):
        net = f"g{index}"
        if index >= n_plain:
            # Output-driving gates: force a wide type so they can absorb
            # dangling nets later, and keep POs structurally non-trivial.
            gtype = rng.choice(_WIDE_TYPES)
        else:
            gtype = rng.choices(type_choices, weights=type_weights, k=1)[0]
        if gtype in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        else:
            fanin_count = rng.randint(2, min(spec.max_fanin, max(2, len(pool))))
        fanins = _sample_biased(pool, fanin_count, rng)
        gate_list.append(Gate(net, gtype, tuple(fanins)))
        pool.append(net)

    outputs = [g.name for g in gate_list[n_plain:]]
    gates_by_name = {g.name: g for g in gate_list}

    # DFF data inputs: sample from the generated logic (prefer late nets).
    dff_gates: list[Gate] = []
    for index, dff_net in enumerate(dff_outputs):
        data_net = _sample_biased(pool, 1, rng)[0]
        dff_gates.append(Gate(dff_net, GateType.DFF, (data_net,)))

    # Stitch dangling nets (no fanout, not an output) into later gates.
    gate_index = {g.name: i for i, g in enumerate(gate_list)}
    read_nets: set[str] = set()
    for gate in gate_list:
        read_nets.update(gate.fanins)
    for dff in dff_gates:
        read_nets.update(dff.fanins)
    output_set = set(outputs)
    for net in inputs + dff_outputs + [g.name for g in gate_list]:
        if net in read_nets or net in output_set:
            continue
        candidates_start = gate_index.get(net, -1) + 1
        target = _pick_absorber(gate_list, candidates_start, net, rng)
        absorber = gates_by_name[target]
        widened = Gate(absorber.name, absorber.gtype, absorber.fanins + (net,))
        gates_by_name[target] = widened
        gate_list[gate_index[target]] = widened
        read_nets.add(net)

    all_gates = gate_list + dff_gates
    circuit = Circuit(spec.name, inputs, outputs, all_gates)
    validate_circuit(
        circuit, require_combinational=(spec.n_dffs == 0), allow_dangling=False
    )
    return circuit


def _sample_biased(pool: list[str], count: int, rng: RngStream) -> list[str]:
    """Sample ``count`` distinct nets, biased toward recent pool entries
    (quadratic recency bias keeps circuits 'deep' like real designs
    instead of collapsing to wide shallow fanin from the PIs)."""
    if count >= len(pool):
        return list(pool)
    chosen: list[str] = []
    seen: set[str] = set()
    attempts = 0
    while len(chosen) < count:
        attempts += 1
        if attempts > 50 * count:
            for net in reversed(pool):  # deterministic fallback
                if net not in seen:
                    chosen.append(net)
                    seen.add(net)
                    if len(chosen) == count:
                        break
            break
        position = int(len(pool) * (1.0 - rng.random() ** 2))
        net = pool[min(position, len(pool) - 1)]
        if net not in seen:
            seen.add(net)
            chosen.append(net)
    return chosen


def _pick_absorber(
    gate_list: list[Gate], start: int, net: str, rng: RngStream
) -> str:
    """A gate with index >= start that can take one more fanin.

    Output-driving gates (the tail of ``gate_list``) are always wide
    types, so a candidate always exists for ``start < len(gate_list)``;
    ``start`` can never reach ``len(gate_list)`` because the last gates
    are outputs (never dangling).
    """
    candidates = [
        g.name
        for g in gate_list[start:]
        if g.gtype in _WIDE_TYPES and net not in g.fanins
    ]
    if not candidates:
        raise AssertionError(f"no absorber available for dangling net {net!r}")
    return rng.choice(candidates)
