"""ISCAS ``.bench`` format parser and writer.

The ``.bench`` format is the lingua franca of the ISCAS'85/'89
benchmark suites the paper evaluates on::

    # c17
    INPUT(1)
    INPUT(2)
    ...
    OUTPUT(22)
    OUTPUT(23)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Supported gate keywords: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF,
DFF.  Comments start with ``#``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate

_GATE_ALIASES = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_ASSIGN_RE = re.compile(
    r"^(?P<out>[^\s=]+)\s*=\s*(?P<op>[A-Za-z01]+)\s*\(\s*(?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<net>[^)\s]+)\s*\)\s*$")


class BenchParseError(ValueError):
    """Raised on malformed ``.bench`` input, with a line number."""

    def __init__(self, line_no: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_no}: {reason}: {line.strip()!r}")
        self.line_no = line_no
        self.reason = reason


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`."""
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            net = io_match.group("net")
            if io_match.group("kind") == "INPUT":
                inputs.append(net)
            else:
                outputs.append(net)
            continue
        assign_match = _ASSIGN_RE.match(line)
        if assign_match:
            op_name = assign_match.group("op").upper()
            gtype = _GATE_ALIASES.get(op_name)
            if gtype is None:
                raise BenchParseError(line_no, raw_line, f"unknown gate type {op_name!r}")
            args = [a.strip() for a in assign_match.group("args").split(",") if a.strip()]
            try:
                gates.append(Gate(assign_match.group("out"), gtype, tuple(args)))
            except ValueError as exc:
                raise BenchParseError(line_no, raw_line, str(exc)) from exc
            continue
        raise BenchParseError(line_no, raw_line, "unrecognised statement")
    circuit = Circuit(name, inputs, outputs, gates)
    _check_references(circuit)
    return circuit


def parse_bench_file(path: str | Path, name: str | None = None) -> Circuit:
    """Parse a ``.bench`` file; the circuit name defaults to the stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name or path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialise a :class:`Circuit` back to ``.bench`` text.

    Gates are emitted in topological order, so the output reparses to a
    structurally identical circuit (round-trip property-tested).
    """
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({net})" for net in circuit.inputs)
    lines.extend(f"OUTPUT({net})" for net in circuit.outputs)
    input_set = set(circuit.inputs)
    for net in circuit.topo_order():
        if net in input_set:
            continue
        gate = circuit.gates[net]
        keyword = "BUFF" if gate.gtype is GateType.BUF else gate.gtype.name
        lines.append(f"{net} = {keyword}({', '.join(gate.fanins)})")
    return "\n".join(lines) + "\n"


def _check_references(circuit: Circuit) -> None:
    known = set(circuit.inputs) | set(circuit.gates)
    for gate in circuit.gates.values():
        for fanin in gate.fanins:
            if fanin not in known:
                raise ValueError(
                    f"gate {gate.name!r} references undriven net {fanin!r}"
                )
    for net in circuit.outputs:
        if net not in known:
            raise ValueError(f"output {net!r} is not driven by any net")
