"""The netlist data model: :class:`Gate` and :class:`Circuit`.

A :class:`Circuit` is a named DAG of gates.  Node names are strings (as
in ``.bench`` files); the simulators compile circuits down to integer
arrays once, so the string-keyed model stays convenient without costing
simulation speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.circuit.gates import GateType


@dataclass(frozen=True)
class Gate:
    """A single gate: output net ``name``, driven by ``gtype`` over
    ``fanins`` (names of the fanin nets, in order)."""

    name: str
    gtype: GateType
    fanins: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        n = len(self.fanins)
        lo, hi = self.gtype.min_fanin, self.gtype.max_fanin
        if n < lo or (hi is not None and n > hi):
            bound = f"{lo}" if hi == lo else f"{lo}..{hi if hi is not None else 'inf'}"
            raise ValueError(
                f"gate {self.name!r}: {self.gtype.name} takes {bound} fanins, got {n}"
            )


class Circuit:
    """A combinational (or, pre-scan, sequential) gate-level circuit.

    Parameters
    ----------
    name:
        Circuit identifier (e.g. ``"c880"``).
    inputs:
        Primary input net names, in declaration order.
    outputs:
        Primary output net names.  Outputs may name any net (an input or
        a gate output).
    gates:
        The gates, keyed implicitly by their output net name.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        gates: Iterable[Gate],
    ) -> None:
        self.name = name
        self.inputs: list[str] = list(inputs)
        self.outputs: list[str] = list(outputs)
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self.gates:
                raise ValueError(f"duplicate gate output net {gate.name!r}")
            if gate.gtype is GateType.INPUT:
                raise ValueError(
                    f"gate {gate.name!r}: INPUT nodes belong in `inputs`, not `gates`"
                )
            self.gates[gate.name] = gate
        input_set = set(self.inputs)
        if len(input_set) != len(self.inputs):
            raise ValueError("duplicate primary input names")
        overlap = input_set & self.gates.keys()
        if overlap:
            raise ValueError(f"nets driven both as input and gate output: {sorted(overlap)}")
        self._topo_cache: list[str] | None = None
        self._fanout_cache: dict[str, tuple[str, ...]] | None = None
        self._level_cache: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All net names: inputs first, then gate outputs (insertion order)."""
        return self.inputs + list(self.gates)

    def node_type(self, name: str) -> GateType:
        """The gate type driving net ``name`` (``INPUT`` for PIs)."""
        if name in self.gates:
            return self.gates[name].gtype
        if name in set(self.inputs):
            return GateType.INPUT
        raise KeyError(f"unknown net {name!r} in circuit {self.name!r}")

    def fanins(self, name: str) -> tuple[str, ...]:
        """Fanin nets of ``name`` (empty for PIs and constants)."""
        gate = self.gates.get(name)
        return gate.fanins if gate is not None else ()

    def is_sequential(self) -> bool:
        """True if the circuit contains any DFF."""
        return any(g.gtype is GateType.DFF for g in self.gates.values())

    @property
    def n_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self.outputs)

    @property
    def n_gates(self) -> int:
        """Number of gates (excluding primary inputs)."""
        return len(self.gates)

    # ------------------------------------------------------------------
    # derived structure (cached)
    # ------------------------------------------------------------------

    def topo_order(self) -> list[str]:
        """All nets in topological order (every fanin precedes its gate).

        DFF outputs are treated as sources (their fanin is a *next-state*
        dependency, not a combinational one), so sequential circuits
        still levelize.  Raises :class:`ValueError` on combinational
        cycles.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        order: list[str] = list(self.inputs)
        order.extend(
            g.name
            for g in self.gates.values()
            if g.gtype is GateType.DFF or g.gtype.is_source
        )
        placed = set(order)
        # Kahn's algorithm over the remaining combinational gates.
        remaining: dict[str, set[str]] = {}
        dependents: dict[str, list[str]] = {}
        for gate in self.gates.values():
            if gate.name in placed:
                continue
            pending = {f for f in gate.fanins if f not in placed}
            remaining[gate.name] = pending
            for fanin in pending:
                dependents.setdefault(fanin, []).append(gate.name)
        ready = [name for name, pending in remaining.items() if not pending]
        while ready:
            name = ready.pop()
            order.append(name)
            placed.add(name)
            for dependent in dependents.get(name, ()):
                pending = remaining[dependent]
                pending.discard(name)
                if not pending:
                    ready.append(dependent)
        if len(order) != len(self.inputs) + len(self.gates):
            stuck = sorted(set(self.gates) - placed)
            raise ValueError(
                f"circuit {self.name!r} has a combinational cycle involving {stuck[:5]}"
            )
        self._topo_cache = order
        return order

    def fanouts(self, name: str) -> tuple[str, ...]:
        """Gates that read net ``name``."""
        if self._fanout_cache is None:
            fanout: dict[str, list[str]] = {node: [] for node in self.nodes}
            for gate in self.gates.values():
                for fanin in gate.fanins:
                    fanout[fanin].append(gate.name)
            self._fanout_cache = {k: tuple(v) for k, v in fanout.items()}
        return self._fanout_cache[name]

    def levels(self) -> dict[str, int]:
        """Logic level of every net (PIs/sources at 0)."""
        if self._level_cache is None:
            levels: dict[str, int] = {}
            for node in self.topo_order():
                fanins = self.fanins(node)
                if not fanins or self.node_type(node) is GateType.DFF:
                    levels[node] = 0
                else:
                    levels[node] = 1 + max(levels[f] for f in fanins)
            self._level_cache = levels
        return self._level_cache

    def depth(self) -> int:
        """Maximum logic level in the circuit."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    def output_cone(self, name: str) -> set[str]:
        """Transitive fanout of net ``name`` (including ``name``)."""
        cone = {name}
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for fanout in self.fanouts(node):
                if fanout not in cone:
                    cone.add(fanout)
                    frontier.append(fanout)
        return cone

    def input_cone(self, name: str) -> set[str]:
        """Transitive fanin of net ``name`` (including ``name``)."""
        cone = {name}
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for fanin in self.fanins(node):
                if fanin not in cone:
                    cone.add(fanin)
                    frontier.append(fanin)
        return cone

    def stats(self) -> Mapping[str, int]:
        """Summary statistics (PI/PO/gate counts, depth, per-type counts)."""
        per_type: dict[str, int] = {}
        for gate in self.gates.values():
            per_type[gate.gtype.name] = per_type.get(gate.gtype.name, 0) + 1
        return {
            "inputs": self.n_inputs,
            "outputs": self.n_outputs,
            "gates": self.n_gates,
            "depth": self.depth(),
            **{f"n_{k.lower()}": v for k, v in sorted(per_type.items())},
        }

    def copy(self, name: str | None = None) -> "Circuit":
        """A structural copy (gates are immutable and shared)."""
        return Circuit(
            name or self.name,
            list(self.inputs),
            list(self.outputs),
            list(self.gates.values()),
        )

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, {self.n_inputs} PI, {self.n_outputs} PO, "
            f"{self.n_gates} gates)"
        )
