"""Tests for the PPSFP fault simulator."""

from __future__ import annotations

import pytest

from repro.faults.model import Fault, full_fault_list
from repro.sim.event import ReferenceSimulator
from repro.sim.fault import FaultSimulator, detected_faults
from repro.utils.bitvec import BitVector


class TestDetection:
    def test_and_gate_classic(self, tiny_and):
        simulator = FaultSimulator(tiny_and)
        # pattern a=1,b=1 detects y/SA0; a=1,b=0 detects b/SA1 and y/SA1
        p11 = BitVector.from_bits([1, 1])
        p10 = BitVector.from_bits([1, 0])
        assert simulator.detected([p11], [Fault.stem("y", 0)]) == [True]
        assert simulator.detected([p11], [Fault.stem("y", 1)]) == [False]
        assert simulator.detected([p10], [Fault.stem("b", 1)]) == [True]
        assert simulator.detected([p10], [Fault.stem("a", 0)]) == [False]

    def test_undetectable_without_activation(self, tiny_and):
        simulator = FaultSimulator(tiny_and)
        # a=0,b=0: y is 0 with or without y/SA0
        assert simulator.detected([BitVector.zeros(2)], [Fault.stem("y", 0)]) == [False]

    def test_branch_fault_differs_from_stem(self, c17):
        """Branch 3->11 stuck differs from stem 3 stuck: stem affects both
        NAND(1,3) and NAND(3,6) readers."""
        simulator = FaultSimulator(c17)
        patterns = [BitVector(v, 5) for v in range(32)]
        stem = Fault.stem("3", 0)
        branch = Fault.branch("3", "11", 0, 0)
        stem_sig = simulator.detection_matrix(patterns, [stem])[:, 0]
        branch_sig = simulator.detection_matrix(patterns, [branch])[:, 0]
        assert stem_sig.any()
        assert branch_sig.any()
        assert (stem_sig != branch_sig).any()

    def test_redundant_fault_never_detected(self, redundant_circuit):
        simulator = FaultSimulator(redundant_circuit)
        patterns = [BitVector(v, 2) for v in range(4)]
        # y = a OR (a AND b): t/SA0 is redundant (y == a regardless)
        assert simulator.detected(patterns, [Fault.stem("t", 0)]) == [False]

    def test_detected_faults_helper(self, c17):
        patterns = [BitVector(v, 5) for v in range(32)]
        faults = full_fault_list(c17)
        detected = detected_faults(c17, patterns, faults)
        # c17 has no redundant faults: exhaustive patterns detect everything
        assert detected == set(faults)


class TestAgainstReference:
    @pytest.mark.parametrize("circuit_name", ["c17", "s27_scan", "mux_circuit"])
    def test_matrix_matches_reference(self, circuit_name, request, rng):
        circuit = request.getfixturevalue(circuit_name)
        faults = full_fault_list(circuit)
        patterns = [BitVector.random(circuit.n_inputs, rng) for _ in range(100)]
        fast = FaultSimulator(circuit)
        slow = ReferenceSimulator(circuit)
        matrix = fast.detection_matrix(patterns, faults)
        for fault_index, fault in enumerate(faults):
            for pattern_index, pattern in enumerate(patterns):
                assert matrix[pattern_index, fault_index] == slow.detects(
                    pattern, fault
                ), f"{fault} pattern {pattern_index}"


class TestAggregates:
    def test_matrix_shape(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        patterns = [BitVector(v, 5) for v in range(5)]
        matrix = simulator.detection_matrix(patterns, faults)
        assert matrix.shape == (5, len(faults))

    def test_empty_patterns(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        assert simulator.detection_matrix([], faults).shape == (0, len(faults))
        assert simulator.detected([], faults) == [False] * len(faults)
        assert simulator.first_detection_index([], faults) == [None] * len(faults)

    def test_first_detection_index(self, tiny_and):
        simulator = FaultSimulator(tiny_and)
        patterns = [
            BitVector.from_bits([0, 0]),
            BitVector.from_bits([1, 1]),
            BitVector.from_bits([1, 0]),
        ]
        fault = Fault.stem("y", 0)  # first detected by pattern 1 (a=b=1)
        assert simulator.first_detection_index(patterns, [fault]) == [1]

    def test_first_detection_index_none_when_undetected(self, redundant_circuit):
        simulator = FaultSimulator(redundant_circuit)
        patterns = [BitVector(v, 2) for v in range(4)]
        assert simulator.first_detection_index(patterns, [Fault.stem("t", 0)]) == [None]

    def test_first_detection_beyond_word_boundary(self, tiny_and):
        simulator = FaultSimulator(tiny_and)
        patterns = [BitVector.zeros(2)] * 100 + [BitVector.ones(2)]
        assert simulator.first_detection_index(patterns, [Fault.stem("y", 0)]) == [100]

    def test_fault_coverage_range(self, c17, rng):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        patterns = [BitVector.random(5, rng) for _ in range(8)]
        coverage = simulator.fault_coverage(patterns, faults)
        assert 0.0 < coverage <= 1.0

    def test_fault_coverage_empty_faults(self, c17):
        assert FaultSimulator(c17).fault_coverage([], []) == 1.0

    def test_tail_patterns_not_ghost_detected(self, tiny_and):
        """Pattern slots beyond len(patterns) are zero-filled in the last
        word; y/SA1 IS detected by the all-zero ghost patterns, so an
        unmasked simulator would report a spurious detection here."""
        simulator = FaultSimulator(tiny_and)
        p11 = BitVector.from_bits([1, 1])  # does not detect y/SA1
        assert simulator.detected([p11], [Fault.stem("y", 1)]) == [False]
        assert simulator.first_detection_index([p11], [Fault.stem("y", 1)]) == [None]
