"""The three-valued differential-test lattice.

Every layer of the 0/1/X stack is pinned against something independent:

* **carrier** — :class:`PackedPlanes` round-trips (codes <-> planes,
  X-free planes <-> :class:`PackedPatterns`) over hypothesis-driven
  widths 1..130, plus the scalar packing oracle;
* **gate algebra** — the packed plane kernels vs the scalar
  :func:`eval_gate_3v_scalar` oracle, exhaustively per gate type;
* **simulation** — 3-valued collapses *bit-identically* to the 2-valued
  engine on X-free input (every catalog circuit), matches the scalar 3V
  oracle with X, and is X-monotone: forcing inputs to X never flips a
  known output, it can only widen the unknown set;
* **fault simulation** — :class:`XFaultSimulator` vs
  :class:`FaultSimulator` on X-free patterns (coverage, matrix, first
  detection, streamed rows), pessimism under X;
* **MISR** — X-masked signatures equal plain signatures on X-free
  streams at the 63/64/65 word boundaries, and masking is deterministic
  (same X-bank -> same signature) where unmasked X would corrupt.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import full_scan_view, partial_scan_view
from repro.circuit.gates import (
    X3,
    GateType,
    eval_gate_3v_scalar,
    eval_gate_planes,
    reduce_gate_planes,
)
from repro.circuits import load_circuit
from repro.circuits.catalog import catalog_names
from repro.faults import collapse_faults
from repro.sim import (
    CompiledCircuit,
    FaultSimulator,
    Misr,
    XFaultSimulator,
    golden_signature,
    logic_sim_3v,
    logic_sim_3v_scalar,
    x_masked_signature,
)
from repro.utils.bitvec import (
    X_CODE,
    PackedPatterns,
    PackedPlanes,
    as_planes,
    planes_from_codes_scalar,
    unpack_words,
)

#: Gate types with a plane-algebra form (everything combinational).
PLANE_GATES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
)


def _random_codes(n_rows: int, n_patterns: int, seed: int, x_fraction: float = 0.3):
    gen = np.random.default_rng(seed)
    codes = gen.integers(0, 2, size=(n_rows, n_patterns)).astype(np.uint8)
    codes[gen.random(size=codes.shape) < x_fraction] = X_CODE
    return codes


# --------------------------------------------------------------------------
# carrier: PackedPlanes round-trips
# --------------------------------------------------------------------------


class TestPackedPlanes:
    @given(
        width=st.integers(min_value=1, max_value=9),
        n_patterns=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_codes_round_trip(self, width, n_patterns, seed):
        codes = _random_codes(width, n_patterns, seed)
        planes = PackedPlanes.from_codes(codes)
        assert planes.width == width
        assert planes.n_patterns == n_patterns
        assert np.array_equal(planes.to_codes(), codes)

    @given(
        width=st.integers(min_value=1, max_value=9),
        n_patterns=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_packed_round_trip_lossless_for_x_free(self, width, n_patterns, seed):
        gen = np.random.default_rng(seed)
        n_words = (n_patterns + 63) // 64
        words = gen.integers(0, 2**63, size=(width, n_words), dtype=np.uint64)
        packed = PackedPatterns(words, n_patterns)
        planes = PackedPlanes.from_packed(packed)
        assert planes.x_count() == 0
        back = planes.to_packed()
        mask = packed.tail_mask()
        assert np.array_equal(back.words & mask, packed.words & mask)
        assert back.n_patterns == n_patterns

    def test_to_packed_rejects_x(self):
        codes = np.array([[0, 1, X_CODE]], dtype=np.uint8)
        planes = PackedPlanes.from_codes(codes)
        assert planes.x_count() == 1
        with pytest.raises(ValueError, match="X lanes present"):
            planes.to_packed()

    def test_invariant_enforced(self):
        value = np.array([[np.uint64(1)]], dtype=np.uint64)
        care = np.array([[np.uint64(0)]], dtype=np.uint64)
        with pytest.raises(ValueError, match="invariant"):
            PackedPlanes(value, care, 1)

    @given(
        width=st.integers(min_value=1, max_value=6),
        n_patterns=st.integers(min_value=1, max_value=70),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_from_codes_matches_scalar_packer(self, width, n_patterns, seed):
        codes = _random_codes(width, n_patterns, seed)
        planes = PackedPlanes.from_codes(codes)
        reference = planes_from_codes_scalar(codes)
        assert np.array_equal(planes.value, reference.value)
        assert np.array_equal(planes.care, reference.care)

    def test_as_planes_lifts_packed_to_all_care(self):
        words = np.array([[np.uint64(0b1011)]], dtype=np.uint64)
        planes = as_planes(PackedPatterns(words, 4), 1)
        assert planes.x_count() == 0
        assert np.array_equal(planes.to_codes(), [[1, 1, 0, 1]])


# --------------------------------------------------------------------------
# gate algebra: packed kernels vs the scalar oracle
# --------------------------------------------------------------------------


class TestPlaneAlgebra:
    @pytest.mark.parametrize("gtype", PLANE_GATES)
    @pytest.mark.parametrize("arity", [1, 2, 3])
    def test_eval_gate_planes_matches_scalar(self, gtype, arity):
        if gtype in (GateType.NOT, GateType.BUF) and arity != 1:
            pytest.skip("single-fanin gate")
        # Exhaustive over all 3^arity fanin code combinations.
        combos = np.indices((3,) * arity).reshape(arity, -1).astype(np.uint8)
        planes = PackedPlanes.from_codes(combos)
        fanin_v = [planes.value[i] for i in range(arity)]
        fanin_c = [planes.care[i] for i in range(arity)]
        out_v, out_c = eval_gate_planes(gtype, fanin_v, fanin_c)
        got = PackedPlanes(
            out_v[None, :] & planes.tail_mask(),
            out_c[None, :] & planes.tail_mask(),
            planes.n_patterns,
        ).to_codes()[0]
        want = [
            eval_gate_3v_scalar(gtype, list(combos[:, k]))
            for k in range(combos.shape[1])
        ]
        assert list(got) == want

    @pytest.mark.parametrize("gtype", PLANE_GATES)
    def test_reduce_matches_eval(self, gtype):
        arity = 1 if gtype in (GateType.NOT, GateType.BUF) else 3
        codes = _random_codes(arity, 130, seed=7)
        planes = PackedPlanes.from_codes(codes)
        # Stacked-fanin form: one "gate" whose fanin axis is axis 0.
        rv, rc = reduce_gate_planes(
            gtype, planes.value[:, None, :], planes.care[:, None, :], axis=0
        )
        ev, ec = eval_gate_planes(
            gtype,
            [planes.value[i] for i in range(arity)],
            [planes.care[i] for i in range(arity)],
        )
        assert np.array_equal(rv[0], ev)
        assert np.array_equal(rc[0], ec)

    def test_invariant_preserved(self):
        codes = _random_codes(3, 200, seed=11)
        planes = PackedPlanes.from_codes(codes)
        for gtype in PLANE_GATES:
            arity = 1 if gtype in (GateType.NOT, GateType.BUF) else 3
            out_v, out_c = eval_gate_planes(
                gtype,
                [planes.value[i] for i in range(arity)],
                [planes.care[i] for i in range(arity)],
            )
            assert not np.any(out_v & ~out_c), gtype

    def test_scalar_oracle_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            eval_gate_3v_scalar(GateType.AND, [0, 3])


# --------------------------------------------------------------------------
# simulation: collapse, oracle, monotonicity
# --------------------------------------------------------------------------


class TestThreeValuedSimulation:
    @pytest.mark.parametrize("name", catalog_names())
    def test_collapses_to_two_valued_on_x_free_input(self, name):
        circuit = load_circuit(name, scale=0.15)
        compiled = CompiledCircuit(circuit)
        gen = np.random.default_rng(2001)
        n_patterns = 96
        n_words = (n_patterns + 63) // 64
        words = gen.integers(
            0, 2**63, size=(circuit.n_inputs, n_words), dtype=np.uint64
        )
        packed = PackedPatterns(words, n_patterns)
        mask = packed.tail_mask()
        good2 = compiled.simulate_words(packed.words)
        planes = as_planes(packed, circuit.n_inputs)
        v, c = compiled.simulate_planes(planes.value, planes.care)
        assert np.array_equal(v & mask, good2 & mask)
        assert np.all((c & mask) == mask)

    @given(
        n_patterns=st.integers(min_value=1, max_value=130),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_oracle_with_x(self, n_patterns, seed):
        circuit = load_circuit("c17")
        codes = _random_codes(circuit.n_inputs, n_patterns, seed)
        packed_out = logic_sim_3v(circuit, PackedPlanes.from_codes(codes))
        scalar_out = logic_sim_3v_scalar(circuit, codes)
        assert np.array_equal(packed_out.to_codes(), scalar_out)

    def test_matches_scalar_oracle_on_s420(self):
        circuit = load_circuit("s420")
        codes = _random_codes(circuit.n_inputs, 65, seed=3)
        packed_out = logic_sim_3v(circuit, PackedPlanes.from_codes(codes))
        assert np.array_equal(
            packed_out.to_codes(), logic_sim_3v_scalar(circuit, codes)
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_patterns=st.integers(min_value=1, max_value=70),
    )
    @settings(max_examples=25, deadline=None)
    def test_x_monotonicity(self, seed, n_patterns):
        """Forcing inputs to X never flips a known output bit — the
        3-valued result stays consistent with (is a widening of) the
        fully specified one."""
        circuit = load_circuit("c880", scale=0.15)
        gen = np.random.default_rng(seed)
        base = gen.integers(0, 2, size=(circuit.n_inputs, n_patterns)).astype(
            np.uint8
        )
        widened = base.copy()
        widened[gen.random(size=base.shape) < 0.25] = X_CODE
        out_base = logic_sim_3v(circuit, PackedPlanes.from_codes(base)).to_codes()
        out_wide = logic_sim_3v(
            circuit, PackedPlanes.from_codes(widened)
        ).to_codes()
        known = out_wide != X_CODE
        # Wherever the widened sim still claims a value, it must be the
        # value the fully specified sim computed.
        assert np.array_equal(out_wide[known], out_base[known])

    def test_partial_scan_unscanned_flops_as_x(self, partial_scan_s420):
        view, x_inputs = partial_scan_s420
        assert x_inputs, "expected unscanned flops"
        gen = np.random.default_rng(5)
        codes = gen.integers(0, 2, size=(view.n_inputs, 40)).astype(np.uint8)
        for name in x_inputs:
            codes[view.inputs.index(name), :] = X_CODE
        out = logic_sim_3v(view, PackedPlanes.from_codes(codes)).to_codes()
        # X power-up state must not poison everything: some outputs stay
        # known, and the result is the scalar oracle's.
        assert np.any(out != X_CODE)
        assert np.array_equal(out, logic_sim_3v_scalar(view, codes))

    def test_partial_scan_full_chain_equals_full_scan(self):
        seq = load_circuit("s420", full_scan=False)
        dffs = sorted(
            g.name for g in seq.gates.values() if g.gtype is GateType.DFF
        )
        view, x_inputs = partial_scan_view(seq, dffs)
        full = full_scan_view(seq)
        assert x_inputs == []
        assert set(view.inputs) == set(full.inputs)
        assert set(view.outputs) == set(full.outputs)

    def test_partial_scan_rejects_non_flop_names(self):
        seq = load_circuit("s420", full_scan=False)
        with pytest.raises(ValueError, match="not flip-flops"):
            partial_scan_view(seq, ["definitely_not_a_dff"])


# --------------------------------------------------------------------------
# fault simulation: XFaultSimulator vs FaultSimulator
# --------------------------------------------------------------------------


class TestXFaultSimulator:
    @pytest.fixture(scope="class")
    def setup(self):
        circuit = load_circuit("c880", scale=0.2)
        faults = collapse_faults(circuit)
        gen = np.random.default_rng(99)
        n_patterns = 130
        words = gen.integers(
            0, 2**63, size=(circuit.n_inputs, 3), dtype=np.uint64
        )
        packed = PackedPatterns(words, n_patterns)
        return circuit, faults, packed

    def test_x_free_identity(self, setup):
        """On X-free patterns every query matches the 2-valued engine."""
        circuit, faults, packed = setup
        sim2 = FaultSimulator(circuit)
        sim3 = XFaultSimulator(circuit)
        assert sim2.detected(packed, faults) == sim3.detected(packed, faults)
        assert sim2.first_detection_index(
            packed, faults
        ) == sim3.first_detection_index(packed, faults)
        assert sim2.fault_coverage(packed, faults) == sim3.fault_coverage(
            packed, faults
        )
        assert np.array_equal(
            sim2.detection_matrix(packed, faults),
            sim3.detection_matrix(packed, faults),
        )

    def test_x_free_identity_streamed_rows(self, setup):
        circuit, faults, packed = setup
        sim2 = FaultSimulator(circuit)
        sim3 = XFaultSimulator(circuit)
        sets = [packed, packed, packed]
        rows2 = list(sim2.detection_matrix_rows(sets, faults))
        rows3 = list(sim3.detection_matrix_rows(sets, faults))
        assert len(rows2) == len(rows3) == 3
        for a, b in zip(rows2, rows3):
            assert np.array_equal(a, b)

    def test_x_pessimism(self, setup):
        """X in the stimulus can only lose detections, never gain them,
        and coverage shrinks monotonically with the X fraction."""
        circuit, faults, packed = setup
        sim3 = XFaultSimulator(circuit)
        full = sim3.detection_matrix(packed, faults)
        codes = np.stack(
            [
                np.unpackbits(
                    np.ascontiguousarray(packed.words[i]).view(np.uint8),
                    bitorder="little",
                )[: packed.n_patterns]
                for i in range(circuit.n_inputs)
            ]
        ).astype(np.uint8)
        gen = np.random.default_rng(17)
        coverages = []
        for x_fraction in (0.0, 0.1, 0.3):
            widened = codes.copy()
            widened[gen.random(size=codes.shape) < x_fraction] = X_CODE
            planes = PackedPlanes.from_codes(widened)
            matrix = sim3.detection_matrix(planes, faults)
            assert not np.any(matrix & ~full), "X created a detection"
            coverages.append(sim3.fault_coverage(planes, faults))
        assert coverages[0] >= coverages[1] >= coverages[2]

    def test_x_detection_requires_both_machines_known(self, tiny_and):
        """An output that is X in the good machine never detects, even
        if the faulty machine drives a known value there."""
        from repro.faults.model import full_fault_list

        sim3 = XFaultSimulator(tiny_and)
        faults = full_fault_list(tiny_and)
        codes = np.array([[X_CODE], [1]], dtype=np.uint8)  # a=X, b=1
        matrix = sim3.detection_matrix(PackedPlanes.from_codes(codes), faults)
        # Good output is X (X AND 1), so nothing is ever detected.
        assert not matrix.any()


# --------------------------------------------------------------------------
# MISR: X-masked signatures at word boundaries
# --------------------------------------------------------------------------


class TestXMaskedMisr:
    @pytest.mark.parametrize("n_patterns", [63, 64, 65])
    def test_x_free_masked_equals_plain(self, n_patterns):
        circuit = load_circuit("c499", scale=0.2)
        gen = np.random.default_rng(n_patterns)
        n_words = (n_patterns + 63) // 64
        words = gen.integers(
            0, 2**63, size=(circuit.n_inputs, n_words), dtype=np.uint64
        )
        packed = PackedPatterns(words, n_patterns)
        plain = golden_signature(circuit, unpack_words(packed.words, n_patterns))
        masked, n_masked = x_masked_signature(
            circuit, as_planes(packed, circuit.n_inputs)
        )
        assert n_masked == 0
        assert masked == plain

    @pytest.mark.parametrize("n_patterns", [63, 64, 65])
    def test_x_masked_signature_deterministic(self, n_patterns, x_bank):
        circuit = load_circuit("c499", scale=0.2)
        bank = x_bank(circuit.n_inputs, n_patterns, 0.25, 7, "misr")
        sig_a, masked_a = x_masked_signature(circuit, bank)
        sig_b, masked_b = x_masked_signature(circuit, bank)
        assert masked_a == masked_b > 0
        assert sig_a == sig_b

    def test_masked_step_forces_x_to_zero(self):
        from repro.utils.bitvec import BitVector

        misr = Misr(4, taps=(0, 3))
        state = BitVector(0b1010, 4)
        value = BitVector(0b1111, 4)
        care = BitVector(0b0110, 4)
        assert misr.masked_step(state, value, care) == misr.step(
            state, BitVector(0b0110, 4)
        )

    def test_masked_signature_counts_x_bits(self):
        from repro.utils.bitvec import BitVector

        misr = Misr(4, taps=(0, 3))
        responses = [
            (BitVector(0b1010, 4), BitVector(0b1111, 4)),  # no X
            (BitVector(0b0010, 4), BitVector(0b0011, 4)),  # two X bits
            (BitVector(0b0000, 4), BitVector(0b0000, 4)),  # all X
        ]
        _, n_masked = misr.masked_signature(responses)
        assert n_masked == 0 + 2 + 4

    def test_x3_and_x_code_agree(self):
        # One X encoding across the ATPG planes and the sim planes.
        assert X3 == X_CODE == 2
