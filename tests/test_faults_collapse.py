"""Tests for structural equivalence fault collapsing."""

from __future__ import annotations

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.faults.collapse import collapse_faults, equivalence_classes
from repro.faults.model import Fault, full_fault_list
from repro.sim.event import ReferenceSimulator
from repro.utils.bitvec import BitVector


class TestGateLocalRules:
    def test_and_gate_sa0_class(self):
        circuit = Circuit(
            "and2", ["a", "b"], ["y"], [Gate("y", GateType.AND, ("a", "b"))]
        )
        classes = equivalence_classes(circuit)
        # a/SA0 ~ b/SA0 ~ y/SA0 form one class of 3
        rep = next(r for r, members in classes.items() if Fault.stem("y", 0) in members)
        assert set(classes[rep]) == {
            Fault.stem("a", 0),
            Fault.stem("b", 0),
            Fault.stem("y", 0),
        }

    def test_nand_gate_mixed_class(self):
        circuit = Circuit(
            "nand2", ["a", "b"], ["y"], [Gate("y", GateType.NAND, ("a", "b"))]
        )
        classes = equivalence_classes(circuit)
        rep = next(r for r, members in classes.items() if Fault.stem("y", 1) in members)
        assert set(classes[rep]) == {
            Fault.stem("a", 0),
            Fault.stem("b", 0),
            Fault.stem("y", 1),
        }

    def test_inverter_chain_collapses_fully(self):
        circuit = Circuit(
            "chain",
            ["a"],
            ["y"],
            [Gate("m", GateType.NOT, ("a",)), Gate("y", GateType.NOT, ("m",))],
        )
        collapsed = collapse_faults(circuit)
        # 6 faults fall into 2 classes (one per polarity along the chain)
        assert len(collapsed) == 2

    def test_xor_gate_no_collapse(self):
        circuit = Circuit(
            "xor2", ["a", "b"], ["y"], [Gate("y", GateType.XOR, ("a", "b"))]
        )
        assert len(collapse_faults(circuit)) == 6

    def test_c17_collapses_to_known_count(self, c17):
        # c17's textbook collapsed fault count under stem+branch modelling
        assert len(collapse_faults(c17)) == 22

    def test_po_that_is_also_fanin_not_collapsed_into_gate(self):
        """Regression (found by hypothesis): a net that is both a primary
        output and a gate fanin is directly observable, so its stem
        fault must NOT be identified with the gate's input-pin fault —
        g4/SA0 here is detectable at the PO even though the AND output
        g5/SA0 masks it."""
        circuit = Circuit(
            "po_fanin",
            ["a", "b"],
            ["m", "y"],  # m is a PO *and* feeds y
            [
                Gate("m", GateType.OR, ("a", "b")),
                Gate("y", GateType.AND, ("m", "a")),
            ],
        )
        classes = equivalence_classes(circuit)
        stem_class = next(
            members
            for members in classes.values()
            if Fault.stem("m", 0) in members
        )
        assert Fault.stem("y", 0) not in stem_class
        # the pin fault exists as a separate branch fault in the universe
        assert Fault.branch("m", "y", 0, 0) in full_fault_list(circuit)


class TestCollapseProperties:
    def test_representatives_partition_universe(self, mux_circuit):
        universe = set(full_fault_list(mux_circuit))
        classes = equivalence_classes(mux_circuit)
        members = [f for cls in classes.values() for f in cls]
        assert len(members) == len(universe)
        assert set(members) == universe

    def test_representative_is_class_minimum(self, c17):
        for rep, members in equivalence_classes(c17).items():
            assert rep == min(members)

    def test_collapse_subset_of_universe(self, c17):
        universe = set(full_fault_list(c17))
        assert set(collapse_faults(c17)) <= universe

    def test_explicit_fault_list_respected(self, c17):
        subset = [Fault.stem("22", 0), Fault.stem("22", 1)]
        collapsed = collapse_faults(c17, subset)
        assert set(collapsed) == set(subset)

    def test_equivalence_is_semantic(self, c17):
        """Every pair in a class is detected by exactly the same patterns
        (exhaustive check over all 32 c17 input patterns)."""
        simulator = ReferenceSimulator(c17)
        patterns = [BitVector(v, 5) for v in range(32)]
        for members in equivalence_classes(c17).values():
            signatures = []
            for fault in members:
                signatures.append(
                    tuple(simulator.detects(p, fault) for p in patterns)
                )
            assert all(s == signatures[0] for s in signatures), members
