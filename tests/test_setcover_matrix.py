"""Tests for the CoverMatrix structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.setcover.matrix import CoverMatrix


def _simple():
    # rows: 0 covers {0,1}, 1 covers {1,2}, 2 covers {2}
    return CoverMatrix.from_row_sets({0: {0, 1}, 1: {1, 2}, 2: {2}})


class TestConstruction:
    def test_from_bool_array(self):
        array = np.array([[True, False], [True, True]])
        matrix = CoverMatrix.from_bool_array(array)
        assert matrix.rows == {0: {0}, 1: {0, 1}}
        assert matrix.columns == {0: {0, 1}, 1: {1}}

    def test_from_bool_array_rejects_1d(self):
        with pytest.raises(ValueError):
            CoverMatrix.from_bool_array(np.array([True, False]))

    def test_from_row_sets_with_explicit_columns(self):
        matrix = CoverMatrix.from_row_sets({0: {0}}, n_columns=3)
        assert matrix.n_columns == 3
        assert not matrix.is_feasible()
        assert matrix.uncoverable_columns() == [1, 2]

    def test_views_consistent(self):
        matrix = _simple()
        for row_id, cols in matrix.rows.items():
            for column_id in cols:
                assert row_id in matrix.columns[column_id]
        for column_id, rows in matrix.columns.items():
            for row_id in rows:
                assert column_id in matrix.rows[row_id]


class TestQueries:
    def test_shape(self):
        assert _simple().shape == (3, 3)

    def test_is_empty(self):
        assert CoverMatrix({}, {}).is_empty()
        assert not _simple().is_empty()

    def test_validate_solution(self):
        matrix = _simple()
        assert matrix.validate_solution([0, 1])
        assert matrix.validate_solution([0, 2])
        assert not matrix.validate_solution([0])
        assert not matrix.validate_solution([99])

    def test_copy_independent(self):
        matrix = _simple()
        clone = matrix.copy()
        clone.remove_row(0)
        assert 0 in matrix.rows


class TestMutation:
    def test_remove_row_updates_columns(self):
        matrix = _simple()
        matrix.remove_row(1)
        assert 1 not in matrix.rows
        assert matrix.columns[1] == {0}
        assert matrix.columns[2] == {2}

    def test_remove_column_updates_rows(self):
        matrix = _simple()
        matrix.remove_column(1)
        assert matrix.rows[0] == {0}
        assert matrix.rows[1] == {2}

    def test_select_row_removes_covered_columns(self):
        matrix = _simple()
        covered = matrix.select_row(0)
        assert covered == {0, 1}
        assert 0 not in matrix.rows
        assert set(matrix.columns) == {2}
        assert matrix.rows[1] == {2}
