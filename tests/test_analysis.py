"""The static-analysis engine (``repro check``) and its rules.

Each rule is pinned against positive *and* negative fixture snippets in
throwaway synthetic roots (the :class:`repro.analysis.AnalysisContext`
never needs the real tree), plus the engine-level semantics: allow
suppressions, ``bad-suppression`` validation, baseline round-trips,
the ``--json`` schema, and the whole-repo run staying clean and fast.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    BAD_SUPPRESSION,
    BASELINE_NAME,
    RULES,
    load_baseline,
    run_check,
    save_baseline,
)
from repro.cli import main as cli_main
from repro.utils.registry import UnknownComponentError

REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECTED_RULES = {
    "kernel-purity",
    "dtype-discipline",
    "asyncio-hygiene",
    "telemetry",
    "schema-kinds",
    "public-api",
    "docs-links",
}


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def findings_for(report, rule: str):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_all_rules_registered():
    assert EXPECTED_RULES <= set(RULES.names())


def test_unknown_rule_suggests():
    with pytest.raises(UnknownComponentError, match="kernel-purity"):
        run_check(REPO_ROOT, rules=["kernel-purty"])


# ---------------------------------------------------------------------------
# kernel-purity
# ---------------------------------------------------------------------------


def test_kernel_purity_flags_loops_and_scalarization(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        from repro.utils.kernels import kernel

        @kernel
        def bad(words):
            total = 0
            for w in words.tolist():
                total += int(w)
            return [w for w in words]
        """,
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    messages = [f.message for f in findings_for(report, "kernel-purity")]
    assert any("for loop" in m for m in messages)
    assert any(".tolist()" in m for m in messages)
    assert any("int() scalarizes" in m for m in messages)
    assert any("comprehension" in m for m in messages)


def test_kernel_purity_exemptions(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        import numpy as np
        from repro.utils.kernels import kernel

        @kernel
        def clean(words):
            n = int(words.size)          # metadata
            m = int(words.shape[0])      # metadata
            k = int(len(words))          # metadata
            if n != m:
                raise ValueError(int(words[0]))  # raise path
            return words & np.uint64(1)

        def unregistered(words):
            return [int(w) for w in words]  # not a kernel: ignored
        """,
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert not findings_for(report, "kernel-purity")


def test_kernel_purity_scalar_oracle_must_not_register(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        from repro.utils.kernels import kernel

        @kernel
        def detect_scalar(words):
            return words
        """,
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert any(
        "scalar oracle" in f.message
        for f in findings_for(report, "kernel-purity")
    )


def test_kernel_purity_function_level_allow(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        from repro.utils.kernels import kernel

        # repro: allow[kernel-purity] O(depth) level walk, word-parallel per level
        @kernel
        def structural(levels):
            for level in levels:
                level.sum()
            return levels
        """,
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert not report.findings


def test_kernel_purity_hot_module_must_register(tmp_path):
    write(tmp_path, "src/repro/sim/batch.py", "X = 1\n")
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert any(
        "registers no @kernel" in f.message
        for f in findings_for(report, "kernel-purity")
    )


def test_kernel_purity_threeval_is_a_hot_module(tmp_path):
    """The 3-valued plane module carries packed hot paths and is held to
    the same must-register contract as the 2-valued engines."""
    write(tmp_path, "src/repro/sim/threeval.py", "X = 1\n")
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert any(
        "registers no @kernel" in f.message and "threeval" in str(f.path)
        for f in findings_for(report, "kernel-purity")
    )
    # A registered plane kernel satisfies the contract; the scalar
    # oracle next to it must stay unregistered.
    write(
        tmp_path,
        "src/repro/sim/threeval.py",
        """
        from repro.utils.kernels import kernel

        @kernel
        def eval_gate_planes(v, c):
            return v & c, c

        def logic_sim_3v_scalar(codes):
            return codes
        """,
    )
    assert not run_check(tmp_path, rules=["kernel-purity"]).findings


# ---------------------------------------------------------------------------
# dtype-discipline
# ---------------------------------------------------------------------------


def test_dtype_discipline_flags_promotion_hazards(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        import numpy as np
        from repro.utils.kernels import kernel

        @kernel
        def bad(words):
            buf = np.zeros(words.shape)   # no dtype=
            return (words << 3) | buf     # bare-int shift
        """,
    )
    report = run_check(tmp_path, rules=["dtype-discipline"])
    messages = [f.message for f in findings_for(report, "dtype-discipline")]
    assert any("without dtype=" in m for m in messages)
    assert any("bare-int shift" in m for m in messages)


def test_dtype_discipline_clean_kernel(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        import numpy as np
        from repro.utils.kernels import kernel

        @kernel
        def clean(words, width):
            buf = np.zeros(words.shape, dtype=np.uint64)
            mask = np.uint64((1 << width) - 1)      # wrapped: python-int math
            shifted = words >> np.uint64(3)
            return (shifted & mask) | buf

        def not_a_kernel(words):
            return words << 3  # unregistered functions are out of scope
        """,
    )
    report = run_check(tmp_path, rules=["dtype-discipline"])
    assert not report.findings


def test_dtype_discipline_covers_plane_kernels(tmp_path):
    """A value/care plane kernel is held to the same promotion rules —
    an unwrapped constructor in the care path is a finding, the wrapped
    twin is clean."""
    write(
        tmp_path,
        "src/repro/sim/threeval.py",
        """
        import numpy as np
        from repro.utils.kernels import kernel

        @kernel
        def bad_planes(v, c):
            care = np.ones(c.shape)        # no dtype= -> float64 care plane
            return v & c, care

        @kernel
        def good_planes(v, c):
            care = np.ones(c.shape, dtype=np.uint64)
            return v & c, care
        """,
    )
    report = run_check(tmp_path, rules=["dtype-discipline"])
    messages = [f.message for f in findings_for(report, "dtype-discipline")]
    assert len(messages) == 1
    assert "without dtype=" in messages[0]


# ---------------------------------------------------------------------------
# asyncio-hygiene
# ---------------------------------------------------------------------------


def test_asyncio_hygiene_flags_blocking_calls(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/handlers.py",
        """
        import time

        async def handler(request, store):
            time.sleep(0.1)
            open("dump.json")
            payload = store.get("ref", "pattern_set")
            return payload
        """,
    )
    report = run_check(tmp_path, rules=["asyncio-hygiene"])
    messages = [f.message for f in findings_for(report, "asyncio-hygiene")]
    assert any("time.sleep" in m for m in messages)
    assert any("open()" in m for m in messages)
    assert any("store.get()" in m for m in messages)


def test_asyncio_hygiene_executor_reference_is_clean(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/handlers.py",
        """
        import asyncio

        class Server:
            async def handle(self, ref, payload):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    self._executor, self.store.put, ref, payload
                )
        """,
    )
    report = run_check(tmp_path, rules=["asyncio-hygiene"])
    assert not report.findings


def test_asyncio_hygiene_propagates_into_sync_helper(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/handlers.py",
        """
        class Server:
            async def handle(self, request):
                return self.resolve(request)

            def resolve(self, request):
                return self.store.get(request, "pattern_set")
        """,
    )
    report = run_check(tmp_path, rules=["asyncio-hygiene"])
    found = findings_for(report, "asyncio-hygiene")
    assert len(found) == 1
    assert "called from async handle" in found[0].message


def test_asyncio_hygiene_ignores_code_outside_serve(tmp_path):
    write(
        tmp_path,
        "src/repro/flow/tasks.py",
        """
        import time

        async def not_served():
            time.sleep(1)
        """,
    )
    report = run_check(tmp_path, rules=["asyncio-hygiene"])
    assert not report.findings


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------


def test_telemetry_invalid_name(tmp_path):
    # Digits are collected (so typos are seen) but rejected by the
    # naming contract; version the series name, not the metric.
    write(
        tmp_path,
        "src/repro/obs/emit.py",
        'NAME = "repro_atpg_v2_total"\n',
    )
    report = run_check(tmp_path, rules=["telemetry"])
    assert any(
        "does not match" in f.message for f in findings_for(report, "telemetry")
    )


def test_telemetry_doc_code_cross_check(tmp_path):
    write(
        tmp_path,
        "src/repro/obs/emit.py",
        """
        EMITTED = "repro_undocumented_total"
        PATTERNED = f"repro_cache_{'x'}_total"
        """,
    )
    write(
        tmp_path,
        "docs/observability.md",
        """
        # Metrics

        | series | meaning |
        |---|---|
        | `repro_cache_{hits,misses}_total` | cache outcomes |
        | `repro_ghost_series_total` | documented but never emitted |

        ```
        `repro_fenced_total` is masked out with the code fence
        ```
        """,
    )
    report = run_check(tmp_path, rules=["telemetry"])
    messages = [f.message for f in findings_for(report, "telemetry")]
    assert any(
        "'repro_undocumented_total' is not documented" in m for m in messages
    )
    assert any("'repro_ghost_series_total' is never emitted" in m for m in messages)
    # The f-string matches the expanded {hits,misses} alternation: covered.
    assert not any("pattern" in m and "matches no" in m for m in messages)
    # Fence-masked names must not create "never emitted" findings.
    assert not any("repro_fenced_total" in m for m in messages)


# ---------------------------------------------------------------------------
# schema-kinds
# ---------------------------------------------------------------------------


def test_schema_kinds_requires_test_literal(tmp_path):
    write(
        tmp_path,
        "src/repro/flow/serialize.py",
        """
        def to_dict():
            return {"kind": "tested_doc", "schema_version": 1}

        def check(payload):
            return check_schema(payload, "untested_doc")
        """,
    )
    write(
        tmp_path,
        "tests/test_roundtrip.py",
        'KIND = "tested_doc"\n',
    )
    report = run_check(tmp_path, rules=["schema-kinds"])
    found = findings_for(report, "schema-kinds")
    assert len(found) == 1
    assert "untested_doc" in found[0].message


# ---------------------------------------------------------------------------
# public-api
# ---------------------------------------------------------------------------


def test_public_api_init_needs_dunder_all(tmp_path):
    write(tmp_path, "src/repro/obs/__init__.py", "from x import y\n")
    report = run_check(tmp_path, rules=["public-api"])
    assert any(
        "__all__" in f.message for f in findings_for(report, "public-api")
    )


def test_public_api_flags_cross_package_private_import(tmp_path):
    write(
        tmp_path,
        "src/repro/serve/server.py",
        """
        from repro.obs.metrics import _render_one
        from repro.obs._internal import helper
        from repro.serve.batcher import _same_package_is_fine
        """,
    )
    report = run_check(tmp_path, rules=["public-api"])
    messages = [f.message for f in findings_for(report, "public-api")]
    assert any("private name '_render_one'" in m for m in messages)
    assert any("private module 'repro.obs._internal'" in m for m in messages)
    assert len(messages) == 2  # same-subpackage import is fair game


# ---------------------------------------------------------------------------
# docs-links
# ---------------------------------------------------------------------------


def test_docs_links_reports_broken_targets_with_lines(tmp_path):
    write(
        tmp_path,
        "README.md",
        """
        # Title

        [good](docs/guide.md) and [bad](docs/missing.md)

        ```
        [fenced](docs/never-checked.md)
        ```

        [bad anchor](docs/guide.md#nope)
        """,
    )
    write(tmp_path, "docs/guide.md", "# Guide\n\n## Setup\n")
    report = run_check(tmp_path, rules=["docs-links"])
    found = findings_for(report, "docs-links")
    assert {f.message for f in found} == {
        "broken link -> docs/missing.md",
        "missing anchor -> docs/guide.md#nope",
    }
    broken = next(f for f in found if "missing.md" in f.message)
    assert broken.path == "README.md"
    assert broken.line == 4  # fence masking keeps line numbers honest


# ---------------------------------------------------------------------------
# suppression semantics
# ---------------------------------------------------------------------------

_LOOPY = """
from repro.utils.kernels import kernel

@kernel
def hot(words):
    {line}
    return words
"""


def test_allow_on_own_line_suppresses(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        _LOOPY.format(
            line="x = words.tolist()  "
            "# repro: allow[kernel-purity] debug dump, cold path"
        ),
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert report.ok
    assert len(report.suppressed) == 1


def test_allow_on_line_above_suppresses(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        """
        from repro.utils.kernels import kernel

        @kernel
        def hot(words):
            # repro: allow[kernel-purity] one-off materialisation at the tail
            x = words.tolist()
            return words
        """,
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert report.ok
    assert len(report.suppressed) == 1


def test_allow_without_justification_is_a_finding(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        _LOOPY.format(line="x = words.tolist()  # repro: allow[kernel-purity]"),
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    rules = {f.rule for f in report.findings}
    # The suppression is invalid, so the original finding survives too.
    assert rules == {BAD_SUPPRESSION, "kernel-purity"}


def test_allow_with_unknown_rule_is_a_finding(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/mod.py",
        "X = 1  # repro: allow[no-such-rule] because reasons\n",
    )
    report = run_check(tmp_path, rules=["kernel-purity"])
    assert any(
        "unknown rule 'no-such-rule'" in f.message
        for f in findings_for(report, BAD_SUPPRESSION)
    )


def test_allow_in_docstring_is_not_a_suppression(tmp_path):
    write(
        tmp_path,
        "src/repro/sim/mod.py",
        '''
        def helper():
            """Docs may show `# repro: allow[made-up-rule]` verbatim."""
            return 1
        ''',
    )
    report = run_check(tmp_path)
    assert not findings_for(report, BAD_SUPPRESSION)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def _violating_root(tmp_path: Path) -> Path:
    write(
        tmp_path,
        "src/repro/sim/hot.py",
        _LOOPY.format(line="x = words.tolist()"),
    )
    return tmp_path


def test_baseline_round_trip(tmp_path):
    root = _violating_root(tmp_path)
    report = run_check(root, rules=["kernel-purity"])
    assert not report.ok
    baseline_path = root / BASELINE_NAME
    count = save_baseline(baseline_path, report.findings)
    assert count == 1
    assert len(load_baseline(baseline_path)) == 1

    again = run_check(root, rules=["kernel-purity"])
    assert again.ok
    assert len(again.baselined) == 1


def test_baseline_survives_line_shifts(tmp_path):
    root = _violating_root(tmp_path)
    report = run_check(root, rules=["kernel-purity"])
    save_baseline(root / BASELINE_NAME, report.findings)

    hot = root / "src/repro/sim/hot.py"
    hot.write_text("# a new comment shifts every line\n" + hot.read_text())
    shifted = run_check(root, rules=["kernel-purity"])
    assert shifted.ok, [f.render() for f in shifted.findings]
    assert len(shifted.baselined) == 1


def test_new_findings_are_not_baselined(tmp_path):
    root = _violating_root(tmp_path)
    report = run_check(root, rules=["kernel-purity"])
    save_baseline(root / BASELINE_NAME, report.findings)

    write(
        tmp_path,
        "src/repro/sim/other.py",
        _LOOPY.format(line="y = words.tolist()"),
    )
    again = run_check(root, rules=["kernel-purity"])
    assert not again.ok
    assert len(again.baselined) == 1
    assert len(again.findings) == 1


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_json_schema(tmp_path, capsys):
    root = _violating_root(tmp_path)
    code = cli_main(["check", "--root", str(root), "--json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == 1
    assert document["kind"] == "check_report"
    assert document["ok"] is False
    assert set(EXPECTED_RULES) <= set(document["rules"])
    finding = document["findings"][0]
    assert set(finding) == {"rule", "path", "line", "message", "fingerprint"}
    assert finding["rule"] == "kernel-purity"
    assert finding["fingerprint"]


def test_cli_update_baseline_then_green(tmp_path, capsys):
    root = _violating_root(tmp_path)
    assert cli_main(["check", "--root", str(root)]) == 1
    capsys.readouterr()
    assert cli_main(["check", "--root", str(root), "--update-baseline"]) == 0
    assert cli_main(["check", "--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_rule_selection_and_unknown_rule(tmp_path, capsys):
    root = _violating_root(tmp_path)
    assert cli_main(["check", "--root", str(root), "--rule", "docs-links"]) == 0
    capsys.readouterr()
    assert cli_main(["check", "--root", str(root), "--rule", "nope"]) == 2
    assert "unknown analysis rule" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


def test_repo_is_clean_and_fast():
    report = run_check(REPO_ROOT)
    assert report.ok, "\n" + "\n".join(f.render() for f in report.findings)
    assert report.seconds < 10.0
    # The shipped baseline stays empty: violations get fixed or carry a
    # justified allow, they do not accumulate silently.
    assert load_baseline(REPO_ROOT / BASELINE_NAME) == set()


def test_repo_has_registered_kernels():
    from repro.utils.kernels import KERNELS

    # Importing the hot modules populates the registry.
    import repro.atpg.batch_podem  # noqa: F401
    import repro.atpg.values5  # noqa: F401
    import repro.circuit.gates  # noqa: F401
    import repro.sim.batch  # noqa: F401
    import repro.sim.threeval  # noqa: F401
    import repro.tpg.accumulator  # noqa: F401
    import repro.tpg.lfsr  # noqa: F401
    import repro.utils.bitvec  # noqa: F401

    names = KERNELS.names()
    assert len(names) >= 10
    assert any("eval_gate_words" in name for name in names)
    assert any("_lfsr_walk_values" in name for name in names)
    # The three-valued plane algebra is registered under the same
    # purity contract as the 2-valued kernels.
    assert any("reduce_gate_planes" in name for name in names)
    assert any("detect_planes" in name for name in names)
    assert any("_good_planes" in name for name in names)
    assert any("_pack_bit_rows" in name for name in names)
