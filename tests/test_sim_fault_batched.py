"""Differential tests: the batched engine must match the legacy
per-fault engine bit-for-bit.

:class:`BatchFaultSimulator` re-architects the hottest path in the repo
(shared cone-union schedules, fault-axis stacking, fault dropping), so
every public query is cross-checked against
:class:`SerialFaultSimulator` over random circuits, random batch sizes
(including degenerate ones), branch vs. stem fault sites, and pattern
counts straddling the 64-bit word boundary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.faults.model import Fault, full_fault_list
from repro.sim.batch import BatchFaultSimulator
from repro.sim.fault import FaultSimulator, SerialFaultSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

BATCH_SIZES = (1, 7, 64)


def _random_patterns(circuit, n_patterns: int, seed: int) -> list[BitVector]:
    rng = RngStream(seed, "batched-diff", circuit.name)
    return [BitVector.random(circuit.n_inputs, rng) for _ in range(n_patterns)]


def _assert_engines_match(circuit, patterns, faults, batch_size, drop_window_words=8):
    batched = BatchFaultSimulator(
        circuit, batch_size=batch_size, drop_window_words=drop_window_words
    )
    serial = SerialFaultSimulator(circuit)
    np.testing.assert_array_equal(
        batched.detection_matrix(patterns, faults),
        serial.detection_matrix(patterns, faults),
    )
    assert batched.detected(patterns, faults) == serial.detected(patterns, faults)
    assert batched.first_detection_index(patterns, faults) == (
        serial.first_detection_index(patterns, faults)
    )


@st.composite
def random_circuits(draw):
    seed = draw(st.integers(0, 10_000))
    spec = GeneratorSpec(
        name=f"hyp{seed}",
        n_inputs=draw(st.integers(3, 6)),
        n_outputs=draw(st.integers(1, 3)),
        n_gates=draw(st.integers(4, 18)),
        seed=seed,
    )
    return generate_circuit(spec)


class TestDifferentialFixedCircuits:
    @pytest.mark.parametrize("circuit_name", ["c17", "s27_scan", "mux_circuit"])
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_all_queries_match(self, circuit_name, batch_size, request):
        circuit = request.getfixturevalue(circuit_name)
        faults = full_fault_list(circuit)
        patterns = _random_patterns(circuit, 100, seed=1)
        _assert_engines_match(circuit, patterns, faults, batch_size)

    def test_batch_larger_than_fault_list(self, c17):
        faults = full_fault_list(c17)
        patterns = _random_patterns(c17, 40, seed=2)
        _assert_engines_match(c17, patterns, faults, batch_size=len(faults) + 5)

    def test_branch_vs_stem_sites(self, c17):
        """Net 3 fans out to gates 11 and 16: its stem fault and each
        branch fault must agree with the serial engine individually and
        when mixed in one batch."""
        stem = Fault.stem("3", 0)
        branches = [Fault.branch("3", "11", 0, 0), Fault.branch("3", "16", 1, 0)]
        patterns = [BitVector(v, 5) for v in range(32)]
        for faults in ([stem], branches, [stem, *branches]):
            _assert_engines_match(c17, patterns, faults, batch_size=2)

    def test_input_doubling_as_output(self):
        """A PI that is also a PO has an empty cone but is directly
        observable — the forced site row alone must carry detection."""
        from repro.circuit.gates import GateType
        from repro.circuit.netlist import Circuit, Gate

        circuit = Circuit(
            "pipo", ["a", "b"], ["a", "y"], [Gate("y", GateType.AND, ("a", "b"))]
        )
        faults = full_fault_list(circuit)
        patterns = [BitVector(v, 2) for v in range(4)] * 20
        _assert_engines_match(circuit, patterns, faults, batch_size=3)

    def test_single_word_drop_window(self, s27_scan):
        """drop_window_words=1 forces the fault-dropping scan to cross
        every word boundary; indices must still match exactly."""
        faults = full_fault_list(s27_scan)
        patterns = _random_patterns(s27_scan, 130, seed=3)
        _assert_engines_match(
            s27_scan, patterns, faults, batch_size=5, drop_window_words=1
        )


class TestEdgeCases:
    """0 patterns, 0 faults, and exact word-boundary pattern counts."""

    @pytest.mark.parametrize("engine", [FaultSimulator, SerialFaultSimulator])
    def test_zero_patterns(self, c17, engine):
        simulator = engine(c17)
        faults = full_fault_list(c17)
        assert simulator.detection_matrix([], faults).shape == (0, len(faults))
        assert simulator.detected([], faults) == [False] * len(faults)
        assert simulator.first_detection_index([], faults) == [None] * len(faults)

    @pytest.mark.parametrize("engine", [FaultSimulator, SerialFaultSimulator])
    def test_zero_faults(self, c17, engine):
        simulator = engine(c17)
        patterns = [BitVector(v, 5) for v in range(5)]
        assert simulator.detection_matrix(patterns, []).shape == (5, 0)
        assert simulator.detected(patterns, []) == []
        assert simulator.first_detection_index(patterns, []) == []
        assert simulator.fault_coverage(patterns, []) == 1.0

    def test_zero_patterns_and_zero_faults(self, c17):
        simulator = FaultSimulator(c17)
        assert simulator.detection_matrix([], []).shape == (0, 0)

    @pytest.mark.parametrize("n_patterns", [63, 64, 65, 128, 129])
    def test_word_boundary_pattern_counts(self, c17, n_patterns):
        faults = full_fault_list(c17)
        patterns = _random_patterns(c17, n_patterns, seed=n_patterns)
        _assert_engines_match(c17, patterns, faults, batch_size=8)

    def test_last_pattern_detection_at_boundary(self, tiny_and):
        """Only the final pattern (index 64, first bit of word 2)
        detects: the index must survive the word crossing."""
        patterns = [BitVector.zeros(2)] * 64 + [BitVector.ones(2)]
        fault = Fault.stem("y", 0)
        simulator = BatchFaultSimulator(tiny_and, drop_window_words=1)
        assert simulator.first_detection_index(patterns, [fault]) == [64]


class TestDetectionMatrixRows:
    def test_rows_match_detected(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        pattern_sets = [
            _random_patterns(c17, n, seed=10 + n) for n in (0, 1, 5, 70)
        ]
        rows = list(simulator.detection_matrix_rows(pattern_sets, faults))
        assert len(rows) == len(pattern_sets)
        serial = SerialFaultSimulator(c17)
        for row, patterns in zip(rows, pattern_sets):
            assert row.tolist() == serial.detected(patterns, faults)

    def test_rows_with_no_faults(self, c17):
        simulator = FaultSimulator(c17)
        rows = list(
            simulator.detection_matrix_rows([[BitVector(1, 5)]], [])
        )
        assert len(rows) == 1 and rows[0].shape == (0,)

    def test_parallel_rows_match_serial(self, c17):
        from repro.sim.batch import parallel_detection_rows

        faults = full_fault_list(c17)
        pattern_sets = [_random_patterns(c17, n, seed=n) for n in (3, 0, 9, 17)]
        serial = SerialFaultSimulator(c17)
        expected = np.array(
            [serial.detected(patterns, faults) for patterns in pattern_sets]
        )
        for workers in (1, 2):
            result = parallel_detection_rows(
                c17, pattern_sets, faults, workers=workers
            )
            np.testing.assert_array_equal(result, expected)

    def test_parallel_rows_rejects_bad_worker_count(self, c17):
        from repro.sim.batch import parallel_detection_rows

        with pytest.raises(ValueError, match="workers"):
            parallel_detection_rows(c17, [], full_fault_list(c17), workers=0)


class TestIncrementalPlans:
    """Fault dropping must *subset* compiled plans (index masks), never
    rebuild cone unions, and subset plans must stay bit-identical to
    cold-built plans."""

    def _workload(self, circuit, n_patterns=200, seed=11):
        faults = full_fault_list(circuit)
        patterns = _random_patterns(circuit, n_patterns, seed)
        return faults, patterns

    def test_drop_scan_subsets_instead_of_rebuilding(self, s27_scan):
        faults, patterns = self._workload(s27_scan)
        simulator = BatchFaultSimulator(
            s27_scan, batch_size=8, drop_window_words=1
        )
        flags = simulator.detected(patterns, faults)
        n_initial_batches = -(-len(faults) // 8)
        # Every full construction happened up front (one per initial
        # batch); the scan shrank batches via subsetting only.
        assert simulator.plan_builds == n_initial_batches
        assert simulator.plan_subsets > 0
        builds_before = simulator.plan_builds
        assert simulator.detected(patterns, faults) == flags
        assert simulator.plan_builds == builds_before
        assert flags == SerialFaultSimulator(s27_scan).detected(patterns, faults)

    def test_dropping_never_resurrects_dropped_faults(self, s27_scan):
        """A fault dropped in an early window must not be reported again
        from a later window, and the warm (subset-plan) detection
        indices must match a cold-plan run bit-for-bit."""
        faults, patterns = self._workload(s27_scan, n_patterns=260, seed=21)
        warm = BatchFaultSimulator(s27_scan, batch_size=4, drop_window_words=1)
        seen: dict[int, int] = {}
        for fault_index, position in warm._scan_detections(patterns, faults):
            assert fault_index not in seen, "dropped fault resurfaced"
            seen[fault_index] = position
        cold = BatchFaultSimulator(s27_scan, batch_size=4, drop_window_words=64)
        # One giant window => no dropping => every plan is cold-built.
        assert cold.first_detection_index(patterns, faults) == [
            seen.get(i) for i in range(len(faults))
        ]

    def test_subset_plan_matches_cold_plan(self, c17):
        """detect_words of plan.subset(rows) == detect_words of a plan
        built from scratch for the surviving fault tuple."""
        faults = full_fault_list(c17)
        patterns = _random_patterns(c17, 100, seed=31)
        simulator = BatchFaultSimulator(c17, batch_size=len(faults))
        good = simulator._good_values(patterns)
        full_plan = simulator._plan(tuple(faults))
        rows = [0, 3, 5, len(faults) - 1]
        subset_plan = full_plan.subset(rows)
        cold_plan = simulator._plan(tuple(faults[r] for r in rows))
        mask = _np_tail_mask(len(patterns))
        np.testing.assert_array_equal(
            subset_plan.detect_words(good) & mask,
            cold_plan.detect_words(good) & mask,
        )

    def test_subset_rejects_bad_rows(self, c17):
        faults = full_fault_list(c17)
        simulator = BatchFaultSimulator(c17, batch_size=len(faults))
        plan = simulator._plan(tuple(faults))
        with pytest.raises(ValueError):
            plan.subset([0, 0])
        with pytest.raises(ValueError):
            plan.subset([len(faults)])

    def test_mid_run_drop_matrix_matches_cold(self, mux_circuit):
        """The satellite scenario end-to-end: run a dropping scan (which
        subsets plans mid-run), then build the full detection matrix on
        the same simulator and compare against a cold simulator."""
        faults = full_fault_list(mux_circuit)
        patterns = _random_patterns(mux_circuit, 150, seed=41)
        warm = BatchFaultSimulator(mux_circuit, batch_size=3, drop_window_words=1)
        warm.detected(patterns, faults)  # populates + subsets plans
        cold = BatchFaultSimulator(mux_circuit, batch_size=3)
        np.testing.assert_array_equal(
            warm.detection_matrix(patterns, faults),
            cold.detection_matrix(patterns, faults),
        )


def _np_tail_mask(n_patterns: int) -> np.ndarray:
    from repro.sim.logic import tail_mask

    return tail_mask(n_patterns)


class TestChunkedRows:
    """Row chunking is a pure throughput lever: any chunk budget must
    produce rows identical to per-row simulation."""

    @pytest.mark.parametrize("row_chunk_words", [1, 2, 3, 64])
    def test_chunk_budgets_agree(self, c17, row_chunk_words):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        pattern_sets = [
            _random_patterns(c17, n, seed=50 + n) for n in (0, 1, 40, 0, 65, 129, 7)
        ]
        baseline = [
            row.copy()
            for row in simulator.detection_matrix_rows(
                pattern_sets, faults, row_chunk_words=1
            )
        ]
        chunked = list(
            simulator.detection_matrix_rows(
                pattern_sets, faults, row_chunk_words=row_chunk_words
            )
        )
        assert len(baseline) == len(chunked) == len(pattern_sets)
        for expected, actual in zip(baseline, chunked):
            np.testing.assert_array_equal(expected, actual)

    def test_packed_rows_accepted(self, c17):
        from repro.utils.bitvec import PackedPatterns

        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        pattern_sets = [_random_patterns(c17, n, seed=n) for n in (5, 70, 3)]
        packed_sets = [
            PackedPatterns.from_patterns(patterns, c17.n_inputs)
            for patterns in pattern_sets
        ]
        unpacked_rows = list(
            simulator.detection_matrix_rows(pattern_sets, faults)
        )
        packed_rows = list(
            simulator.detection_matrix_rows(packed_sets, faults)
        )
        for expected, actual in zip(unpacked_rows, packed_rows):
            np.testing.assert_array_equal(expected, actual)

    def test_rejects_bad_budget(self, c17):
        simulator = FaultSimulator(c17)
        with pytest.raises(ValueError):
            list(
                simulator.detection_matrix_rows(
                    [[BitVector(1, 5)]], full_fault_list(c17), row_chunk_words=0
                )
            )


class TestParallelJobPayloads:
    """The ``workers=N`` jobs must reference the shared packed state by
    row index — payload size is O(1) per job, not O(n_patterns)."""

    def test_jobs_cover_rows_in_order(self):
        from repro.sim.batch import _row_jobs

        jobs = _row_jobs(10, workers=2)
        assert jobs[0][0] == 0 and jobs[-1][1] == 10
        flat = [r for start, stop in jobs for r in range(start, stop)]
        assert flat == list(range(10))

    def test_payload_independent_of_pattern_count(self, c17):
        """Satellite regression: the old path re-pickled O(n_patterns)
        pattern values into every job; jobs are now bare row ranges."""
        import pickle

        from repro.sim.batch import _pack_rows, _row_jobs

        small = [_random_patterns(c17, 4, seed=r) for r in range(8)]
        huge = [_random_patterns(c17, 4096, seed=r) for r in range(8)]
        jobs_small = _row_jobs(len(small), workers=2)
        jobs_huge = _row_jobs(len(huge), workers=2)
        payload_small = max(len(pickle.dumps(job)) for job in jobs_small)
        payload_huge = max(len(pickle.dumps(job)) for job in jobs_huge)
        assert payload_huge == payload_small  # O(1), not O(n_patterns)
        assert payload_huge < 128
        # ... while the packed shared state really holds the patterns.
        words_small, *_ = _pack_rows(small, c17.n_inputs)
        words_huge, *_ = _pack_rows(huge, c17.n_inputs)
        assert words_huge.nbytes > words_small.nbytes

    def test_pack_rows_layout(self, c17):
        from repro.sim.batch import _pack_rows
        from repro.utils.bitvec import PackedPatterns

        pattern_sets = [_random_patterns(c17, n, seed=n) for n in (3, 0, 70)]
        words, starts, counts = _pack_rows(pattern_sets, c17.n_inputs)
        assert counts.tolist() == [3, 0, 70]
        assert starts.tolist() == [0, 1, 1, 3]
        for index, patterns in enumerate(pattern_sets):
            row = PackedPatterns(
                words[:, starts[index] : starts[index + 1]], counts[index]
            )
            assert row.unpack() == patterns

    def test_parallel_rows_with_chunked_state(self, s27_scan):
        """End-to-end through the shared-memory path on a bigger circuit
        with uneven row sizes."""
        from repro.sim.batch import parallel_detection_rows

        faults = full_fault_list(s27_scan)
        pattern_sets = [
            _random_patterns(s27_scan, n, seed=60 + n) for n in (9, 0, 130, 64, 1)
        ]
        serial = SerialFaultSimulator(s27_scan)
        expected = np.array(
            [serial.detected(patterns, faults) for patterns in pattern_sets]
        )
        result = parallel_detection_rows(
            s27_scan, pattern_sets, faults, workers=2
        )
        np.testing.assert_array_equal(result, expected)


class TestPropertyDifferential:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        circuit=random_circuits(),
        n_patterns=st.integers(0, 70),
        batch_size=st.sampled_from(BATCH_SIZES),
        seed=st.integers(0, 1000),
    )
    def test_small_random_circuits(self, circuit, n_patterns, batch_size, seed):
        faults = full_fault_list(circuit)
        patterns = _random_patterns(circuit, n_patterns, seed)
        _assert_engines_match(circuit, patterns, faults, batch_size)

    @pytest.mark.slow
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        circuit=random_circuits(),
        n_patterns=st.integers(0, 200),
        batch_size=st.integers(1, 80),
        drop_window_words=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_exhaustive_engine_equivalence(
        self, circuit, n_patterns, batch_size, drop_window_words, seed
    ):
        faults = full_fault_list(circuit)
        patterns = _random_patterns(circuit, n_patterns, seed)
        _assert_engines_match(
            circuit, patterns, faults, batch_size, drop_window_words
        )

    @pytest.mark.slow
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500), n_patterns=st.integers(64, 140))
    def test_larger_generated_circuits(self, seed, n_patterns):
        spec = GeneratorSpec(
            name=f"hypbig{seed}",
            n_inputs=8,
            n_outputs=4,
            n_gates=60,
            seed=seed,
        )
        circuit = generate_circuit(spec)
        faults = full_fault_list(circuit)
        patterns = _random_patterns(circuit, n_patterns, seed)
        _assert_engines_match(circuit, patterns, faults, batch_size=16)
