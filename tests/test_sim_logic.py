"""Tests for the packed true-value logic simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.sim.logic import CompiledCircuit, n_words_for, simulate_patterns, tail_mask
from repro.utils.bitvec import BitVector


class TestCompile:
    def test_sequential_rejected(self):
        circuit = Circuit("seq", ["a"], ["q"], [Gate("q", GateType.DFF, ("a",))])
        with pytest.raises(ValueError, match="sequential"):
            CompiledCircuit(circuit)

    def test_index_covers_all_nodes(self, c17):
        compiled = CompiledCircuit(c17)
        assert set(compiled.index) == set(c17.nodes)
        assert compiled.n_nodes == len(c17.nodes)

    def test_fanout_ids_consistent(self, mux_circuit):
        compiled = CompiledCircuit(mux_circuit)
        s_id = compiled.index["s"]
        fanout_names = {compiled.order[i] for i in compiled.fanout_ids[s_id]}
        assert fanout_names == {"ns", "t1"}


class TestSimulation:
    def test_mux_truth_table(self, mux_circuit):
        compiled = CompiledCircuit(mux_circuit)
        # pattern bits: a=bit0, b=bit1, s=bit2
        for value in range(8):
            pattern = BitVector(value, 3)
            out = compiled.simulate_patterns([pattern])[0]
            a, b, s = pattern.bit(0), pattern.bit(1), pattern.bit(2)
            assert out.bit(0) == (b if s else a), f"pattern {value:03b}"

    def test_c17_known_vector(self, c17):
        # All-ones input: 10 = NAND(1,3) = 0, 11 = NAND(3,6) = 0,
        # 16 = NAND(2,11) = 1, 19 = NAND(11,7) = 1,
        # 22 = NAND(10,16) = 1, 23 = NAND(16,19) = 0.
        out = simulate_patterns(c17, [BitVector.ones(5)])[0]
        assert out == BitVector.from_bits([1, 0])

    def test_xor_tree_parity(self, xor_tree):
        compiled = CompiledCircuit(xor_tree)
        for value in range(16):
            pattern = BitVector(value, 4)
            out = compiled.simulate_patterns([pattern])[0]
            assert out.bit(0) == pattern.popcount() % 2

    def test_constants(self):
        circuit = Circuit(
            "consts",
            ["a"],
            ["y0", "y1"],
            [
                Gate("k0", GateType.CONST0),
                Gate("k1", GateType.CONST1),
                Gate("y0", GateType.AND, ("a", "k0")),
                Gate("y1", GateType.OR, ("a", "k1")),
            ],
        )
        out = simulate_patterns(circuit, [BitVector(0, 1), BitVector(1, 1)])
        assert [o.bit(0) for o in out] == [0, 0]
        assert [o.bit(1) for o in out] == [1, 1]

    def test_many_patterns_cross_word_boundary(self, xor_tree):
        compiled = CompiledCircuit(xor_tree)
        patterns = [BitVector(v % 16, 4) for v in range(200)]
        outs = compiled.simulate_patterns(patterns)
        assert len(outs) == 200
        for pattern, out in zip(patterns, outs):
            assert out.bit(0) == pattern.popcount() % 2

    def test_empty_pattern_list(self, c17):
        assert CompiledCircuit(c17).simulate_patterns([]) == []

    def test_wrong_input_row_count(self, c17):
        compiled = CompiledCircuit(c17)
        with pytest.raises(ValueError, match="input rows"):
            compiled.simulate_words(np.zeros((3, 1), dtype=np.uint64))

    def test_simulate_words_returns_all_nodes(self, c17):
        compiled = CompiledCircuit(c17)
        words = np.zeros((5, 1), dtype=np.uint64)
        values = compiled.simulate_words(words)
        assert values.shape == (compiled.n_nodes, 1)


class TestCones:
    def test_output_cone_ids_sorted_topologically(self, c17):
        compiled = CompiledCircuit(c17)
        node = compiled.index["3"]  # a fanout stem in c17
        cone = compiled.output_cone_ids(node)
        assert cone == sorted(cone)
        assert node not in cone

    def test_po_cone_empty(self, c17):
        compiled = CompiledCircuit(c17)
        assert compiled.output_cone_ids(compiled.index["22"]) == []


class TestHelpers:
    def test_n_words_for(self):
        assert n_words_for(0) == 0
        assert n_words_for(1) == 1
        assert n_words_for(64) == 1
        assert n_words_for(65) == 2

    def test_tail_mask_partial_word(self):
        mask = tail_mask(3)
        assert int(mask[0]) == 0b111

    def test_tail_mask_full_word(self):
        mask = tail_mask(64)
        assert int(mask[0]) == (1 << 64) - 1

    def test_tail_mask_multi_word(self):
        mask = tail_mask(70)
        assert len(mask) == 2
        assert int(mask[1]) == 0b111111

    def test_tail_mask_zero_patterns(self):
        mask = tail_mask(0)
        assert mask.shape == (0,)
        assert mask.dtype == np.uint64

    def test_tail_mask_word_boundaries(self):
        # 64 patterns fill word 0 exactly; 65 spill a single bit into
        # word 1 — the classic off-by-one sites.
        assert int(tail_mask(64)[-1]) == (1 << 64) - 1
        mask65 = tail_mask(65)
        assert len(mask65) == 2
        assert int(mask65[1]) == 1
        assert int(tail_mask(128)[-1]) == (1 << 64) - 1
        assert int(tail_mask(129)[-1]) == 1

    def test_simulate_words_out_buffer_reuse(self, c17):
        compiled = CompiledCircuit(c17)
        words = np.ones((5, 2), dtype=np.uint64)
        buffer = np.zeros((compiled.n_nodes, 2), dtype=np.uint64)
        result = compiled.simulate_words(words, out=buffer)
        assert result is buffer
        np.testing.assert_array_equal(result, compiled.simulate_words(words))

    def test_simulate_words_out_buffer_shape_checked(self, c17):
        compiled = CompiledCircuit(c17)
        words = np.zeros((5, 1), dtype=np.uint64)
        with pytest.raises(ValueError, match="out buffer"):
            compiled.simulate_words(words, out=np.zeros((1, 1), dtype=np.uint64))


class TestLevelization:
    def test_levels_increase_along_fanin(self, c17):
        compiled = CompiledCircuit(c17)
        for node_id, fanins in enumerate(compiled.gate_fanins):
            for fanin_id in fanins:
                assert compiled.node_levels[node_id] > compiled.node_levels[fanin_id]

    def test_sources_at_level_zero(self, c17):
        compiled = CompiledCircuit(c17)
        assert all(compiled.node_levels[i] == 0 for i in compiled.input_ids)

    def test_eval_groups_cover_all_gates(self, mux_circuit):
        compiled = CompiledCircuit(mux_circuit)
        grouped = sorted(
            int(node) for _, out_ids, _ in compiled.eval_groups for node in out_ids
        )
        gates = sorted(
            node_id
            for node_id, gtype in enumerate(compiled.gate_types)
            if gtype not in (GateType.INPUT, GateType.CONST0, GateType.CONST1)
        )
        assert grouped == gates

    def test_eval_groups_level_ordered(self, c17):
        compiled = CompiledCircuit(c17)
        levels = [
            int(compiled.node_levels[out_ids[0]])
            for _, out_ids, _ in compiled.eval_groups
        ]
        assert levels == sorted(levels)
