"""Tests for the GA machinery and the GATSBY baseline."""

from __future__ import annotations

import pytest

from repro.circuits import load_circuit
from repro.atpg.engine import AtpgEngine
from repro.gatsby import GaConfig, GatsbyReseeder, GeneticAlgorithm
from repro.tpg import AdderAccumulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


class TestGaConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GaConfig(population_size=1)
        with pytest.raises(ValueError):
            GaConfig(tournament_size=99)
        with pytest.raises(ValueError):
            GaConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GaConfig(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GaConfig(elitism=16, population_size=16)
        with pytest.raises(ValueError):
            GaConfig(generations=0)


class TestGeneticAlgorithm:
    def _onemax(self, genome: BitVector) -> float:
        return float(genome.popcount())

    def test_maximises_onemax(self):
        rng = RngStream(1, "ga-test")
        ga = GeneticAlgorithm(
            16,
            self._onemax,
            rng,
            GaConfig(population_size=20, generations=25, mutation_rate=0.05),
        )
        best = ga.run()
        assert best.fitness >= 13  # near-optimal on 16 bits

    def test_deterministic_given_stream(self):
        config = GaConfig(population_size=8, generations=5)
        a = GeneticAlgorithm(8, self._onemax, RngStream(2, "d"), config).run()
        b = GeneticAlgorithm(8, self._onemax, RngStream(2, "d"), config).run()
        assert a.genome == b.genome
        assert a.fitness == b.fitness

    def test_seeds_preloaded(self):
        # seeding with the optimum means the optimum is found immediately
        config = GaConfig(population_size=8, generations=1)
        ga = GeneticAlgorithm(8, self._onemax, RngStream(3, "s"), config)
        best = ga.run(seeds=[BitVector.ones(8)])
        assert best.fitness == 8.0

    def test_evaluation_counter(self):
        config = GaConfig(population_size=8, generations=3, elitism=2)
        ga = GeneticAlgorithm(8, self._onemax, RngStream(4, "e"), config)
        ga.run()
        # 8 initial + 3 generations * 6 offspring
        assert ga.evaluations == 8 + 3 * 6

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(0, self._onemax, RngStream(5, "w"))


class TestGatsbyReseeder:
    @pytest.fixture(scope="class")
    def c17_setup(self):
        circuit = load_circuit("c17")
        engine = AtpgEngine(circuit, seed=5)
        atpg = engine.run()
        return circuit, atpg, engine.simulator

    def _reseeder(self, circuit, simulator, **kwargs):
        defaults = dict(
            seed=5,
            evolution_length=8,
            ga_config=GaConfig(population_size=8, generations=4),
            simulator=simulator,
        )
        defaults.update(kwargs)
        return GatsbyReseeder(circuit, AdderAccumulator(circuit.n_inputs), **defaults)

    def test_reaches_full_coverage_on_c17(self, c17_setup):
        circuit, atpg, simulator = c17_setup
        reseeder = self._reseeder(circuit, simulator)
        result = reseeder.run(atpg.target_faults, seed_patterns=atpg.test_set)
        assert result.fault_coverage == 1.0
        assert not result.stalled
        assert result.n_triplets >= 1

    def test_solution_actually_covers(self, c17_setup):
        circuit, atpg, simulator = c17_setup
        reseeder = self._reseeder(circuit, simulator)
        result = reseeder.run(atpg.target_faults, seed_patterns=atpg.test_set)
        tpg = AdderAccumulator(circuit.n_inputs)
        patterns = result.trimmed.solution.patterns(tpg)
        assert simulator.fault_coverage(patterns, atpg.target_faults) == 1.0

    def test_deterministic(self, c17_setup):
        circuit, atpg, simulator = c17_setup
        a = self._reseeder(circuit, simulator).run(atpg.target_faults)
        b = self._reseeder(circuit, simulator).run(atpg.target_faults)
        assert a.solution.triplets == b.solution.triplets

    def test_counts_fault_simulations(self, c17_setup):
        circuit, atpg, simulator = c17_setup
        result = self._reseeder(circuit, simulator).run(atpg.target_faults)
        assert result.fault_simulations > 0

    def test_max_triplets_respected(self, c17_setup):
        circuit, atpg, simulator = c17_setup
        result = self._reseeder(circuit, simulator, max_triplets=1).run(
            atpg.target_faults
        )
        assert result.n_triplets <= 1

    def test_width_mismatch_rejected(self, c17_setup):
        circuit, _, simulator = c17_setup
        with pytest.raises(ValueError, match="width"):
            GatsbyReseeder(circuit, AdderAccumulator(circuit.n_inputs + 2))

    def test_empty_fault_list(self, c17_setup):
        circuit, _, simulator = c17_setup
        result = self._reseeder(circuit, simulator).run([])
        assert result.n_triplets == 0
        assert result.fault_coverage == 1.0
