"""Tests for the gate-level accumulator netlists.

The headline property: the ripple-carry netlists compute exactly the
same next-state function as the behavioural accumulators, exhaustively
for small widths and sampled for larger ones.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.validate import validate_circuit
from repro.tpg.accumulator import AdderAccumulator, SubtracterAccumulator
from repro.tpg.hardware import (
    NetlistTpg,
    adder_accumulator_netlist,
    subtracter_accumulator_netlist,
)
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


class TestNetlistStructure:
    def test_adder_netlist_wellformed(self):
        circuit = adder_accumulator_netlist(8)
        validate_circuit(circuit, allow_dangling=True)
        assert circuit.n_inputs == 16
        assert circuit.n_outputs == 8

    def test_subtracter_netlist_wellformed(self):
        circuit = subtracter_accumulator_netlist(8)
        validate_circuit(circuit, allow_dangling=True)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            adder_accumulator_netlist(0)

    def test_width_one_adder(self):
        # degenerate: next = s0 ^ g0, no carry chain at all
        tpg = NetlistTpg(adder_accumulator_netlist(1), 1)
        assert tpg.next_state(BitVector(1, 1), BitVector(1, 1)).value == 0
        assert tpg.next_state(BitVector(0, 1), BitVector(1, 1)).value == 1


class TestBehaviouralEquivalence:
    def test_adder_exhaustive_width_4(self):
        netlist = NetlistTpg(adder_accumulator_netlist(4), 4)
        behavioural = AdderAccumulator(4)
        for state in range(16):
            for sigma in range(16):
                s, g = BitVector(state, 4), BitVector(sigma, 4)
                assert netlist.next_state(s, g) == behavioural.next_state(s, g), (
                    state,
                    sigma,
                )

    def test_subtracter_exhaustive_width_4(self):
        netlist = NetlistTpg(subtracter_accumulator_netlist(4), 4)
        behavioural = SubtracterAccumulator(4)
        for state in range(16):
            for sigma in range(16):
                s, g = BitVector(state, 4), BitVector(sigma, 4)
                assert netlist.next_state(s, g) == behavioural.next_state(s, g), (
                    state,
                    sigma,
                )

    @settings(max_examples=50, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=24),
        state=st.integers(min_value=0),
        sigma=st.integers(min_value=0),
        subtract=st.booleans(),
    )
    def test_random_widths_and_operands(self, width, state, sigma, subtract):
        if subtract:
            netlist = NetlistTpg(subtracter_accumulator_netlist(width), width)
            behavioural = SubtracterAccumulator(width)
        else:
            netlist = NetlistTpg(adder_accumulator_netlist(width), width)
            behavioural = AdderAccumulator(width)
        s = BitVector(state % (1 << width), width)
        g = BitVector(sigma % (1 << width), width)
        assert netlist.next_state(s, g) == behavioural.next_state(s, g)

    def test_whole_evolutions_match(self, rng):
        width = 10
        netlist = NetlistTpg(adder_accumulator_netlist(width), width)
        behavioural = AdderAccumulator(width)
        delta = BitVector.random(width, rng)
        sigma = behavioural.suggest_sigma(rng)
        assert netlist.evolve(delta, sigma, 30) == behavioural.evolve(delta, sigma, 30)


class TestNetlistTpgInterface:
    def test_rejects_wrong_interface(self, c17):
        with pytest.raises(ValueError, match="convention"):
            NetlistTpg(c17, 5)

    def test_name_mentions_netlist(self):
        tpg = NetlistTpg(adder_accumulator_netlist(4), 4)
        assert tpg.name.startswith("netlist:")

    def test_suggest_sigma_odd(self):
        tpg = NetlistTpg(adder_accumulator_netlist(6), 6)
        stream = RngStream(1, "hw")
        for _ in range(20):
            assert tpg.suggest_sigma(stream).bit(0) == 1

    def test_usable_in_pipeline(self):
        """The gate-level TPG drops into the covering flow unchanged."""
        from repro.circuits import load_circuit
        from repro.flow import PipelineConfig, ReseedingPipeline

        circuit = load_circuit("c17")
        tpg = NetlistTpg(adder_accumulator_netlist(circuit.n_inputs), circuit.n_inputs)
        result = ReseedingPipeline(
            circuit, tpg, PipelineConfig(evolution_length=8)
        ).run()
        assert result.n_triplets >= 1
        assert result.trimmed.undetected == ()

    def test_tpg_netlist_is_itself_testable(self):
        """The Functional BIST premise: the TPG is mission logic, so the
        ATPG substrate can target the TPG's own faults."""
        from repro.atpg.engine import AtpgEngine

        netlist = adder_accumulator_netlist(4)
        result = AtpgEngine(netlist, seed=3).run()
        assert result.test_length > 0
        assert len(result.target_faults) > 0
