"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.utils.tables import AsciiTable, render_series


class TestAsciiTable:
    def test_render_contains_headers_and_cells(self):
        table = AsciiTable(["circuit", "#triplets"])
        table.add_row(["c880", 5])
        text = table.render()
        assert "circuit" in text
        assert "c880" in text
        assert "5" in text

    def test_row_length_mismatch_rejected(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_numeric_columns_right_aligned(self):
        table = AsciiTable(["name", "count"])
        table.add_row(["x", 1])
        table.add_row(["longer", 100])
        lines = table.render().splitlines()
        # the numeric cell of the first data row ends at the column edge
        first_data = [l for l in lines if "| x" in l][0]
        assert first_data.rstrip().endswith("1 |")

    def test_none_renders_empty(self):
        table = AsciiTable(["a"])
        table.add_row([None])
        assert "| " in table.render()

    def test_float_formatting(self):
        table = AsciiTable(["fc"])
        table.add_row([0.98765])
        assert "0.99" in table.render()

    def test_title_line(self):
        table = AsciiTable(["a"], title="Table 1")
        assert table.render().splitlines()[0] == "Table 1"

    def test_csv_output(self):
        table = AsciiTable(["a", "b"])
        table.add_row([1, "x"])
        assert table.render_csv() == "a,b\n1,x"

    def test_rows_accessor_copies(self):
        table = AsciiTable(["a"])
        table.add_row([1])
        table.rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"


class TestRenderSeries:
    def test_plots_all_points(self):
        text = render_series([1, 2, 3], [10, 20, 30], "x", "y")
        assert text.count("*") >= 3 or "*" in text

    def test_empty_series(self):
        assert "empty" in render_series([], [], "x", "y")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_series([1], [1, 2], "x", "y")

    def test_constant_series_does_not_crash(self):
        text = render_series([1, 1], [5, 5], "x", "y")
        assert "*" in text
