"""Tests for the sequential simulator, including the full-scan contract."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench import parse_bench
from repro.circuit.fullscan import PPO_SUFFIX, full_scan_view
from repro.circuit.generate import GeneratorSpec, generate_circuit
from repro.circuits.data import S27_BENCH
from repro.sim.event import ReferenceSimulator
from repro.sim.sequential import SequentialSimulator
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream


def _s27():
    return parse_bench(S27_BENCH, "s27")


class TestBasics:
    def test_initial_state_zero(self):
        simulator = SequentialSimulator(_s27())
        assert all(v == 0 for v in simulator.state.values())

    def test_load_state(self):
        simulator = SequentialSimulator(_s27(), initial_state={"G5": 1})
        assert simulator.state["G5"] == 1

    def test_load_unknown_ff_rejected(self):
        with pytest.raises(KeyError):
            SequentialSimulator(_s27()).load_state({"G0": 1})

    def test_load_bad_value_rejected(self):
        with pytest.raises(ValueError):
            SequentialSimulator(_s27()).load_state({"G5": 2})

    def test_pattern_width_checked(self):
        simulator = SequentialSimulator(_s27())
        with pytest.raises(ValueError, match="width"):
            simulator.step(BitVector(0, 3))

    def test_state_vector(self):
        simulator = SequentialSimulator(_s27(), initial_state={"G5": 1, "G7": 1})
        vector = simulator.state_vector()
        assert vector.width == 3
        assert vector.popcount() == 2

    def test_state_vector_needs_ffs(self, c17):
        with pytest.raises(ValueError):
            SequentialSimulator(c17).state_vector()

    def test_combinational_circuit_steps_are_stateless(self, c17):
        simulator = SequentialSimulator(c17)
        pattern = BitVector.ones(5)
        assert simulator.step(pattern) == simulator.step(pattern)

    def test_run_length(self):
        simulator = SequentialSimulator(_s27())
        outputs = simulator.run([BitVector(0, 4)] * 5)
        assert len(outputs) == 5

    def test_state_actually_evolves(self):
        simulator = SequentialSimulator(_s27())
        states = []
        for value in [0b0000, 0b1111, 0b0101, 0b0011, 0b1000]:
            simulator.step(BitVector(value, 4))
            states.append(tuple(simulator.state.values()))
        assert len(set(states)) > 1


class TestFullScanContract:
    """full_scan_view must be the exact combinational unrolling of one
    clock of the sequential machine."""

    def _check_one_clock(self, sequential, rng):
        scan = full_scan_view(sequential)
        scan_sim = ReferenceSimulator(scan)
        seq_sim = SequentialSimulator(sequential)
        dffs = seq_sim.dff_names
        for _ in range(20):
            # random present state + input
            state = {name: rng.getrandbits(1) for name in dffs}
            seq_sim.load_state(state)
            pi_pattern = BitVector.random(len(sequential.inputs), rng)
            expected_po = seq_sim.step(pi_pattern)
            expected_next = dict(seq_sim.state)
            # the scan view puts PIs first, then DFF outputs as PPIs
            scan_bits = list(pi_pattern.bits())
            for name in scan.inputs[len(sequential.inputs) :]:
                scan_bits.append(state[name])
            values = scan_sim.node_values(BitVector.from_bits(scan_bits))
            for position, po in enumerate(sequential.outputs):
                assert values[po] == expected_po.bit(position), po
            for name in dffs:
                assert values[f"{name}{PPO_SUFFIX}"] == expected_next[name], name

    def test_s27_contract(self, rng):
        self._check_one_clock(_s27(), rng)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_dffs=st.integers(min_value=1, max_value=6),
    )
    def test_random_sequential_circuits_contract(self, seed, n_dffs):
        circuit = generate_circuit(
            GeneratorSpec("seqprop", 5, 3, 25, n_dffs=n_dffs, seed=seed)
        )
        self._check_one_clock(circuit, RngStream(seed, "fullscan-contract"))
