"""Documentation guard rails: examples run, links resolve, docstrings
execute.

Three rot vectors, one test module:

* every ``examples/*.py`` is smoke-run end to end (reduced circuit
  scales keep the whole sweep a few seconds) — a README/docs snippet
  that imports a renamed symbol or drives a changed API fails here;
* the markdown link checker (``tools/check_links.py``) verifies every
  local link and anchor in ``README.md`` and ``docs/`` — the same check
  CI's docs job runs;
* ``python -m doctest`` executes the ``>>>`` docstring examples, so the
  documented behaviour is the actual behaviour.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = REPO_ROOT / "examples"

#: Reduced-scale arguments per example: small enough for the test
#: suite, but every example still exercises its full code path.
EXAMPLE_ARGS: dict[str, list[str]] = {
    "quickstart.py": [],
    "batch_atpg.py": ["--circuit", "s420", "--scale", "0.25"],
    "lfsr_reseeding.py": ["--circuit", "s420", "--scale", "0.15"],
    "custom_tpg.py": ["--circuit", "s420", "--scale", "0.15"],
    "full_bist_session.py": ["--circuit", "s420", "--scale", "0.15"],
    "soc_accumulator_bist.py": ["--scale", "0.1", "--evolution-length", "16"],
    "tradeoff_exploration.py": ["--circuit", "s420", "--scale", "0.15"],
    "diagnose_bist_failure.py": ["--circuit", "c499", "--patterns", "64"],
    "serve_client.py": [
        "--circuit", "c499", "--patterns", "48",
        "--requests", "12", "--clients", "4",
    ],
    "metrics_scrape.py": [
        "--circuit", "c17", "--patterns", "32",
        "--requests", "6", "--clients", "3",
    ],
}

#: Modules whose docstrings carry executable ``>>>`` examples — keep in
#: sync with the CI docs job's doctest step.
DOCTEST_MODULES = [
    "src/repro/utils/bitvec.py",
    "src/repro/tpg/base.py",
]


def _run(command: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        command,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_every_example_has_smoke_args():
    """A new example must register reduced-scale args here (and a row
    in the README's documentation table)."""
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXAMPLE_ARGS)


@pytest.mark.parametrize("name", sorted(EXAMPLE_ARGS))
def test_example_runs(name):
    result = _run(
        [sys.executable, str(EXAMPLES / name), *EXAMPLE_ARGS[name]]
    )
    assert result.returncode == 0, (
        f"{name} failed\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} printed nothing"


def test_markdown_links_resolve():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py"
    )
    check_links = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_links)
    errors = check_links.check_paths(
        [str(REPO_ROOT / "README.md"), str(REPO_ROOT / "docs")]
    )
    assert not errors, "\n".join(errors)


def test_docs_tree_complete():
    """The docs/ tree the README table of contents promises."""
    docs = (
        "architecture.md",
        "internals-bitpacking.md",
        "benchmarks.md",
        "observability.md",
    )
    for name in docs:
        assert (REPO_ROOT / "docs" / name).is_file(), name
    readme = (REPO_ROOT / "README.md").read_text()
    for name in docs:
        assert f"docs/{name}" in readme, f"README TOC missing docs/{name}"
    for example in EXAMPLE_ARGS:
        assert f"examples/{example}" in readme, (
            f"README TOC missing examples/{example}"
        )


def test_doctests_pass():
    result = _run([sys.executable, "-m", "doctest", *DOCTEST_MODULES])
    assert result.returncode == 0, result.stdout + result.stderr
