"""Tests for the five-valued D-algebra."""

from __future__ import annotations

import pytest

from repro.atpg.values import D, DBAR, ONE, X, ZERO, Value, eval_gate_value
from repro.circuit.gates import GateType


class TestValueBasics:
    def test_constants(self):
        assert ZERO.is_known and not ZERO.is_d_or_dbar
        assert ONE.is_known and not ONE.is_d_or_dbar
        assert D.is_d_or_dbar and DBAR.is_d_or_dbar
        assert not X.is_known

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Value(3, 0)

    def test_str(self):
        assert str(D) == "D"
        assert str(DBAR) == "D'"
        assert str(ZERO) == "0"

    def test_good_known(self):
        assert D.good_known
        assert not X.good_known
        assert Value(1, 2).good_known


class TestDAlgebra:
    def test_and_with_d(self):
        assert eval_gate_value(GateType.AND, [D, ONE]) == D
        assert eval_gate_value(GateType.AND, [D, ZERO]) == ZERO
        assert eval_gate_value(GateType.AND, [D, DBAR]) == ZERO

    def test_and_with_x(self):
        # AND(D, X): good = X, faulty = 0
        assert eval_gate_value(GateType.AND, [D, X]) == Value(2, 0)

    def test_or_with_d(self):
        assert eval_gate_value(GateType.OR, [D, ZERO]) == D
        assert eval_gate_value(GateType.OR, [D, ONE]) == ONE
        assert eval_gate_value(GateType.OR, [D, DBAR]) == ONE

    def test_not_flips_d(self):
        assert eval_gate_value(GateType.NOT, [D]) == DBAR
        assert eval_gate_value(GateType.NOT, [DBAR]) == D

    def test_nand_nor(self):
        assert eval_gate_value(GateType.NAND, [D, ONE]) == DBAR
        assert eval_gate_value(GateType.NOR, [D, ZERO]) == DBAR

    def test_xor_propagates_d(self):
        assert eval_gate_value(GateType.XOR, [D, ZERO]) == D
        assert eval_gate_value(GateType.XOR, [D, ONE]) == DBAR
        assert eval_gate_value(GateType.XOR, [D, D]) == ZERO
        assert eval_gate_value(GateType.XOR, [D, DBAR]) == ONE

    def test_xnor(self):
        assert eval_gate_value(GateType.XNOR, [D, ZERO]) == DBAR

    def test_xor_with_x_is_x(self):
        assert eval_gate_value(GateType.XOR, [D, X]) == X

    def test_buf_identity(self):
        assert eval_gate_value(GateType.BUF, [D]) == D

    def test_constants_eval(self):
        assert eval_gate_value(GateType.CONST0, []) == ZERO
        assert eval_gate_value(GateType.CONST1, []) == ONE

    def test_sources_rejected(self):
        with pytest.raises(ValueError):
            eval_gate_value(GateType.INPUT, [])
