"""MISR signature bisection: localisation, budgets, window boundaries.

The oracle in these tests is either the ground-truth
:class:`~repro.diagnosis.inject.SimulatedTester` (fault-injected fail
logs) or a synthetic log with a single hand-corrupted response, which
pins the bisection window exactly: corrupting pattern ``i`` makes the
first divergent prefix length ``i + 1``, so ``i`` must land inside the
reported window whatever ``min_window`` says.
"""

from __future__ import annotations

import math

import pytest

from repro.circuits import load_circuit
from repro.diagnosis import (
    FailLog,
    SignatureBisector,
    SimulatedTester,
    fault_representatives,
    make_fail_log,
)
from repro.faults.collapse import collapse_faults
from repro.sim.batch import BatchFaultSimulator
from repro.sim.logic import CompiledCircuit
from repro.sim.misr import Misr, golden_signature
from repro.utils.bitvec import BitVector
from repro.utils.rng import RngStream

N_PATTERNS = 128


@pytest.fixture(scope="module")
def c499():
    return load_circuit("c499")


@pytest.fixture(scope="module")
def c499_setup(c499):
    rng = RngStream(31, "signature", "c499")
    patterns = [BitVector.random(c499.n_inputs, rng) for _ in range(N_PATTERNS)]
    compiled = CompiledCircuit(c499)
    golden = compiled.simulate_patterns(patterns)
    return patterns, golden


def _corrupted_log(circuit, patterns, golden, index):
    """A fail log whose only wrong response is at pattern ``index``
    (output bit 0 flipped)."""
    responses = list(golden)
    responses[index] = responses[index] ^ BitVector(1, responses[index].width)
    return FailLog(circuit.name, list(patterns), responses)


class TestGoldenSide:
    def test_prefix_states_match_misr_signature(self, c499, c499_setup):
        patterns, golden = c499_setup
        misr = Misr(c499.n_outputs)
        bisector = SignatureBisector(c499, patterns, misr)
        assert bisector.golden_signature == golden_signature(
            c499, patterns, misr
        )
        assert bisector.golden_prefix_states[0] == BitVector.zeros(misr.width)
        for k in (1, 63, 64, N_PATTERNS):
            assert bisector.golden_prefix_states[k] == misr.signature(golden[:k])

    def test_min_window_validated(self, c499, c499_setup):
        patterns, _ = c499_setup
        with pytest.raises(ValueError):
            SignatureBisector(c499, patterns, min_window=0)

    def test_misr_width_validated(self, c499, c499_setup):
        patterns, _ = c499_setup
        with pytest.raises(ValueError):
            SignatureBisector(c499, patterns, Misr(c499.n_outputs + 1))


class TestLocalization:
    def test_clean_device_localizes_nothing(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = FailLog(c499.name, list(patterns), list(golden))
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(c499, patterns)
        assert bisector.localize(tester) is None
        result = bisector.diagnose(tester)
        assert result.n_failing == 0
        assert result.candidates == []
        assert result.patterns_resimulated == 0

    @pytest.mark.parametrize(
        "index", [0, 1, 63, 64, 65, N_PATTERNS // 2, N_PATTERNS - 2, N_PATTERNS - 1]
    )
    def test_window_contains_corrupted_pattern(self, c499, c499_setup, index):
        """Word-boundary and endpoint cases: the reported window always
        brackets the corrupted pattern."""
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, index)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(c499, patterns, min_window=16)
        outcome = bisector.localize(tester)
        assert outcome is not None
        assert outcome.start <= index < outcome.stop
        assert outcome.stop - outcome.start <= 16

    @pytest.mark.parametrize("index", [0, 63, 64, N_PATTERNS - 1])
    def test_min_window_one_pins_the_exact_pattern(
        self, c499, c499_setup, index
    ):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, index)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(c499, patterns, min_window=1)
        outcome = bisector.localize(tester)
        assert (outcome.start, outcome.stop) == (index, index + 1)

    def test_query_budget_is_logarithmic(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, N_PATTERNS // 3)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        min_window = 16
        bisector = SignatureBisector(c499, patterns, min_window=min_window)
        outcome = bisector.localize(tester)
        bound = math.ceil(math.log2(N_PATTERNS / min_window)) + 1
        assert outcome.queries <= bound
        assert tester.prefix_queries == outcome.queries

    def test_oracle_length_mismatch_rejected(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, 5)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(c499, patterns[:-1])
        with pytest.raises(ValueError):
            bisector.localize(tester)


class TestSimulatedTester:
    def test_counters_and_window_capture(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, 10)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        assert tester.n_patterns == N_PATTERNS
        tester.prefix_signature(64)
        assert tester.prefix_queries == 1
        window = tester.window_responses(8, 24)
        assert window == log.responses[8:24]
        assert tester.window_captures == 1
        assert tester.patterns_captured == 16

    def test_range_validation(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, 0)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        with pytest.raises(ValueError):
            tester.prefix_signature(N_PATTERNS + 1)
        with pytest.raises(ValueError):
            tester.window_responses(5, 4)

    def test_final_signature_flags_the_fail(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, 7)
        misr = Misr(c499.n_outputs)
        tester = SimulatedTester(log, misr)
        assert tester.final_signature != golden_signature(c499, patterns, misr)


class TestSignatureDiagnosis:
    def test_injected_fault_diagnosed_within_budget(self, c499, c499_setup):
        """End to end: signature-only diagnosis localises the fail and
        ranks the injected fault first while re-simulating at most 15%
        of the session."""
        patterns, _ = c499_setup
        simulator = BatchFaultSimulator(c499)
        faults = collapse_faults(c499)
        detected = simulator.detected(patterns, faults)
        target = next(f for f, flag in zip(faults, detected) if flag)
        log = make_fail_log(c499, patterns, target, simulator.compiled)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(
            c499, patterns, min_window=16, simulator=simulator
        )
        result = bisector.diagnose(tester, faults=faults, top_k=5)
        assert result.mode == "signature"
        assert result.window is not None
        assert result.n_failing >= 1
        assert result.patterns_resimulated <= 0.15 * N_PATTERNS
        representative = fault_representatives(c499)[target]
        rank = result.rank_of(representative)
        assert rank is not None and rank <= 3

    def test_resimulation_equals_window_size(self, c499, c499_setup):
        patterns, golden = c499_setup
        log = _corrupted_log(c499, patterns, golden, 40)
        tester = SimulatedTester(log, Misr(c499.n_outputs))
        bisector = SignatureBisector(c499, patterns, min_window=8)
        result = bisector.diagnose(tester)
        start, stop = result.window
        assert result.patterns_resimulated == stop - start
        assert tester.patterns_captured == stop - start
        assert start <= 40 < stop
        # A corrupted response matches no stuck-at candidate perfectly,
        # but the report must still carry the localisation evidence.
        assert result.n_failing == 1
