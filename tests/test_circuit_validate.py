"""Tests for structural circuit validation."""

from __future__ import annotations

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.circuit.validate import CircuitError, validate_circuit


def _circuit(inputs, outputs, gates, name="v"):
    return Circuit(name, inputs, outputs, gates)


class TestValidate:
    def test_valid_circuit_passes(self, mux_circuit):
        validate_circuit(mux_circuit)

    def test_sequential_rejected_when_combinational_required(self):
        circuit = _circuit(
            ["a"], ["q"], [Gate("q", GateType.DFF, ("a",))]
        )
        with pytest.raises(CircuitError, match="DFF"):
            validate_circuit(circuit, require_combinational=True)
        validate_circuit(circuit, require_combinational=False)

    def test_dangling_net_detected(self):
        circuit = _circuit(
            ["a", "b"],
            ["y"],
            [
                Gate("y", GateType.BUF, ("a",)),
                Gate("dead", GateType.NOT, ("b",)),
            ],
        )
        with pytest.raises(CircuitError, match="drives nothing"):
            validate_circuit(circuit)
        validate_circuit(circuit, allow_dangling=True)

    def test_unused_input_detected(self):
        circuit = _circuit(
            ["a", "b"], ["y"], [Gate("y", GateType.BUF, ("a",))]
        )
        with pytest.raises(CircuitError, match="drives nothing"):
            validate_circuit(circuit)

    def test_cycle_detected(self):
        circuit = _circuit(
            ["a"],
            ["x"],
            [
                Gate("x", GateType.AND, ("a", "z")),
                Gate("z", GateType.BUF, ("x",)),
            ],
        )
        with pytest.raises(CircuitError, match="cycle"):
            validate_circuit(circuit)

    def test_duplicate_outputs_detected(self):
        circuit = _circuit(["a"], ["y", "y"], [Gate("y", GateType.BUF, ("a",))])
        with pytest.raises(CircuitError, match="duplicate output"):
            validate_circuit(circuit)

    def test_error_lists_problems(self):
        circuit = _circuit(
            ["a", "b", "c"], ["y"], [Gate("y", GateType.BUF, ("a",))]
        )
        with pytest.raises(CircuitError) as excinfo:
            validate_circuit(circuit)
        assert len(excinfo.value.problems) == 2  # b and c dangling

    def test_output_can_be_an_input_net(self):
        # An output directly naming a PI is unusual but legal.
        circuit = _circuit(["a"], ["a", "y"], [Gate("y", GateType.NOT, ("a",))])
        validate_circuit(circuit)
